//! Umbrella crate for the Gen-NeRF reproduction workspace.
//!
//! Re-exports every member crate under one roof so downstream users
//! (and the `examples/` + `tests/` at the workspace root) can depend on
//! a single package. See `README.md` for the quickstart and
//! `ARCHITECTURE.md` for the crate map.

pub use gen_nerf as core;
pub use gen_nerf_accel as accel;
pub use gen_nerf_dram as dram;
pub use gen_nerf_geometry as geometry;
pub use gen_nerf_nn as nn;
pub use gen_nerf_parallel as parallel;
pub use gen_nerf_scene as scene;
