//! Quickstart: build a scene, train a generalizable NeRF, render a
//! novel view with coarse-then-focus sampling, and report quality and
//! cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Writes the rendered view and the ground truth next to each other as
//! PPM files in the working directory.

use gen_nerf::features::prepare_sources;
use gen_nerf::pipeline::Renderer;
use gen_nerf::prelude::*;
use gen_nerf_scene::metrics::{lpips_proxy, psnr};

fn main() {
    // 1. A "new scene the user just captured": the fern analog with 8
    //    source views (ground truth rendered analytically).
    println!("building the fern scene (LLFF analog) ...");
    let dataset = Dataset::build(DatasetKind::Llff, "fern", 0.08, 8, 1, 64, 7);

    // 2. A generalizable model, pretrained on *different* scenes — the
    //    whole point of generalizable NeRFs is no per-scene training.
    println!("pretraining across other scenes ...");
    let training: Vec<Dataset> = ["train-a", "train-b"]
        .iter()
        .map(|n| Dataset::build(DatasetKind::NerfSynthetic, n, 0.08, 6, 1, 48, 99))
        .collect();
    let mut model = GenNerfModel::new(ModelConfig::fast());
    let mut trainer = Trainer::new(TrainConfig::fast());
    let refs: Vec<&Dataset> = training.iter().collect();
    let report = trainer.pretrain(&mut model, &refs);
    println!(
        "  sigma loss {:.4} -> {:.4} over {} steps",
        report.initial_sigma_loss, report.final_sigma_loss, report.steps
    );

    // 3. Render a held-out view of the *new* scene with the paper's
    //    coarse-then-focus sampling (8 coarse / 16 focused).
    println!("rendering a novel view (coarse-then-focus 8/16) ...");
    let sources = prepare_sources(&dataset.source_views);
    let strategy = SamplingStrategy::coarse_then_focus(8, 16);
    let renderer = Renderer::new(
        &model,
        &sources,
        strategy,
        dataset.scene.bounds,
        dataset.scene.background,
    );
    let view = &dataset.eval_views[0];
    let (image, stats) = renderer.render(&view.camera);

    // 4. Quality + cost.
    println!(
        "  PSNR {:.2} dB | LPIPS-proxy {:.4} | {:.3} MFLOPs/pixel | {:.1} pts/ray",
        psnr(&view.image, &image),
        lpips_proxy(&view.image, &image),
        stats.mflops_per_pixel(),
        stats.avg_points_per_ray(),
    );

    // 5. Save for eyeballing.
    std::fs::write("quickstart_render.ppm", image.to_ppm()).expect("write render");
    std::fs::write("quickstart_gt.ppm", view.image.to_ppm()).expect("write gt");
    println!("wrote quickstart_render.ppm and quickstart_gt.ppm");
}
