//! Dataflow explorer: inspect what the workload scheduler does with a
//! frame — how the greedy 3D-point-patch partition slices the workload
//! cube, how much scene-feature traffic each choice implies, and how
//! the feature-storage layout changes DRAM behaviour.
//!
//! ```text
//! cargo run --release --example dataflow_explorer [views]
//! ```

use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::dataflow::DataflowVariant;
use gen_nerf_accel::scheduler::{CameraRig, Scheduler};
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;
use gen_nerf_dram::{Dram, DramConfig, FeatureLayout, FeatureRequest};
use std::collections::HashMap;

fn main() {
    let views: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let (w, h, depth, texel_bytes) = (256u32, 256u32, 64u32, 12u64);
    println!("frame: {w}x{h}, {depth} depth samples, {views} source views\n");

    // 1. Partition the workload cube and summarize the patch queue.
    let rig = CameraRig::orbit(w, h, views);
    let sched = Scheduler::new(64 * 1024);
    for (label, patches) in [
        (
            "greedy 3D-point-patch partition (ours)",
            sched.partition(&rig, w, h, depth, texel_bytes),
        ),
        (
            "fixed {k,k,D} partition (Var-1)",
            sched.partition_fixed(&rig, w, h, depth, texel_bytes),
        ),
    ] {
        let mut shapes: HashMap<(u32, u32, u32), usize> = HashMap::new();
        let mut texels = 0u64;
        let mut points = 0u64;
        for p in &patches {
            *shapes.entry((p.du, p.dv, p.dd)).or_insert(0) += 1;
            texels += p.total_texels();
            points += p.points();
        }
        let mut top: Vec<_> = shapes.into_iter().collect();
        top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        println!("{label}:");
        println!(
            "  {} patches | {:.1} feature bytes per point | {:.1} MB total traffic",
            patches.len(),
            texels as f64 * texel_bytes as f64 / points as f64,
            texels as f64 * texel_bytes as f64 / 1e6,
        );
        print!("  dominant shapes:");
        for ((du, dv, dd), count) in top.iter().take(4) {
            print!(" {du}x{dv}x{dd} (x{count})");
        }
        println!("\n");
    }

    // 2. Feature-storage layouts under a local 2D fetch (Fig. 6).
    println!("storage layouts, fetching a 16x4 local region (Fig. 6):");
    let region: Vec<FeatureRequest> = (0..4)
        .flat_map(|dy| {
            (0..16).map(move |dx| FeatureRequest {
                view: 0,
                x: 40 + dx,
                y: 60 + dy,
                bytes: 64,
            })
        })
        .collect();
    for layout in FeatureLayout::all() {
        let mut dram = Dram::new(DramConfig::lpddr4_2400(), layout);
        let r = dram.serve_batch(&region);
        println!(
            "  {:<20} {:>5} cycles | {:>3} conflicts | {:>4.0}% bandwidth",
            layout.label(),
            r.total_cycles,
            r.bank_conflict_stalls,
            r.bandwidth_utilization * 100.0,
        );
    }

    // 3. End-to-end: the four Fig. 12 variants on this frame.
    println!("\nend-to-end pipeline (Fig. 12 variants):");
    let spec = WorkloadSpec::gen_nerf_default(w, h, views, 64);
    let mut cfg = AcceleratorConfig::paper();
    cfg.prefetch_buffer_kb = 64;
    for variant in DataflowVariant::all() {
        let sim = Simulator::with_variant(cfg, variant);
        let r = sim.simulate(&spec);
        println!(
            "  {:<6} {:>8.2} ms | PE util {:>5.1}% | {}",
            variant.label(),
            r.latency_s * 1e3,
            r.pe_utilization * 100.0,
            if r.memory_bound {
                "memory-bound"
            } else {
                "compute-bound"
            },
        );
    }
}
