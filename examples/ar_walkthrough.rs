//! AR/VR walkthrough: the paper's motivating scenario (Sec. 1).
//!
//! A user wearing an AR headset walks around a freshly captured scene;
//! each head pose needs a novel view *now*. This example simulates a
//! camera trajectory and, per frame,
//!
//! * renders the view with the Gen-NeRF algorithm (coarse-then-focus +
//!   Ray-Mixer) at a preview resolution, and
//! * asks the cycle-level accelerator simulator for the frame latency
//!   the Gen-NeRF ASIC would deliver at the *target* resolution,
//!   comparing it with the GPU baselines.
//!
//! ```text
//! cargo run --release --example ar_walkthrough
//! ```

use gen_nerf::features::prepare_sources;
use gen_nerf::hardware::workload_spec;
use gen_nerf::pipeline::Renderer;
use gen_nerf::prelude::*;
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_geometry::{Camera, Intrinsics, Pose, Vec3};
use gen_nerf_scene::metrics::psnr;
use gen_nerf_scene::renderer::render as render_gt;

fn main() {
    // The captured scene: a DeepVoxels-style object with 6 phone shots.
    println!("capturing scene (6 source views) ...");
    let dataset = Dataset::build(DatasetKind::DeepVoxels, "pedestal", 0.08, 6, 1, 64, 11);
    let sources = prepare_sources(&dataset.source_views);

    println!("pretraining the generalizable model on other scenes ...");
    let training: Vec<Dataset> = ["walk-a", "walk-b"]
        .iter()
        .map(|n| Dataset::build(DatasetKind::DeepVoxels, n, 0.08, 6, 1, 48, 42))
        .collect();
    let mut model = GenNerfModel::new(ModelConfig::fast());
    let refs: Vec<&Dataset> = training.iter().collect();
    Trainer::new(TrainConfig::fast()).pretrain(&mut model, &refs);

    // Hardware: the Gen-NeRF ASIC + GPU baselines costed on the *target*
    // headset resolution.
    let strategy = SamplingStrategy::coarse_then_focus(8, 16);
    let spec = workload_spec(&model.config, &strategy, 512, 512, 6);
    let sim = Simulator::new(AcceleratorConfig::paper());
    let asic = sim.simulate(&spec);
    let rtx = GpuModel::rtx_2080ti().fps(&spec);
    let tx2 = GpuModel::jetson_tx2().fps(&spec);
    println!(
        "target 512x512 frame: ASIC {:.1} FPS | RTX 2080Ti {:.3} FPS | Jetson TX2 {:.4} FPS",
        asic.fps, rtx, tx2
    );
    println!(
        "ASIC pipeline: {:.2} ms/frame, PE utilization {:.0}%, {} point patches",
        asic.latency_s * 1e3,
        asic.pe_utilization * 100.0,
        asic.coarse.patches + asic.focused.patches,
    );

    // Walk an arc around the object, rendering preview frames.
    println!("\nwalkthrough (preview renders at capture resolution):");
    let intr = Intrinsics::from_fov(
        dataset.source_views[0].image.width(),
        dataset.source_views[0].image.height(),
        0.55,
    );
    for step in 0..5 {
        let phi = -0.5 + step as f32 * 0.25;
        let eye = Vec3::new(4.0 * phi.cos(), 1.3, 4.0 * phi.sin());
        let camera = Camera::new(intr, Pose::look_at(eye, Vec3::ZERO, Vec3::Y));
        let renderer = Renderer::new(
            &model,
            &sources,
            strategy,
            dataset.scene.bounds,
            dataset.scene.background,
        );
        let (frame, stats) = renderer.render(&camera);
        // Ground-truth for this pose (the analytic scene lets us check
        // quality at arbitrary poses).
        let gt = render_gt(&dataset.scene, &camera, 64);
        println!(
            "  pose {step}: PSNR {:5.2} dB | {:6.1} focused pts/ray | {:.2} MFLOPs/px",
            psnr(&gt, &frame),
            stats.points as f64 / stats.rays as f64,
            stats.mflops_per_pixel(),
        );
        if step == 2 {
            std::fs::write("walkthrough_pose2.ppm", frame.to_ppm()).expect("write frame");
            println!("         wrote walkthrough_pose2.ppm");
        }
    }
}
