//! AR/VR walkthrough: the paper's motivating scenario (Sec. 1),
//! served.
//!
//! A user wearing an AR headset walks around a freshly captured scene;
//! each head pose needs a novel view *now*. This example simulates a
//! fine-grained camera trajectory and
//!
//! * serves every head pose through `gen-nerf-serve`: the session pins
//!   the per-scene state (encoded sources + pretrained model), poses
//!   within the temporal-coherence deltas reuse the cached coarse pass
//!   (only the focus pass re-runs), and completed frame buffers are
//!   recycled into the next request;
//! * prints per-frame serve latency, the coarse-cache outcome and
//!   render quality (the analytic scene provides ground truth at
//!   arbitrary poses);
//! * asks the cycle-level accelerator simulator for the frame latency
//!   the Gen-NeRF ASIC would deliver at the *target* resolution,
//!   comparing it with the GPU baselines.
//!
//! ```text
//! cargo run --release --example ar_walkthrough
//! ```

use gen_nerf::hardware::workload_spec;
use gen_nerf::prelude::*;
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_geometry::{Intrinsics, Pose, Vec3};
use gen_nerf_scene::metrics::psnr;
use gen_nerf_scene::renderer::render as render_gt;
use gen_nerf_serve::{
    CacheOutcome, CoherenceConfig, FrameRequest, RenderServer, SceneState, ServerConfig,
    SessionConfig,
};
use std::sync::Arc;

fn main() {
    // The captured scene: a DeepVoxels-style object with 6 phone shots.
    println!("capturing scene (6 source views) ...");
    let dataset = Dataset::build(DatasetKind::DeepVoxels, "pedestal", 0.08, 6, 1, 64, 11);

    println!("pretraining the generalizable model on other scenes ...");
    let training: Vec<Dataset> = ["walk-a", "walk-b"]
        .iter()
        .map(|n| Dataset::build(DatasetKind::DeepVoxels, n, 0.08, 6, 1, 48, 42))
        .collect();
    let mut model = GenNerfModel::new(ModelConfig::fast());
    let refs: Vec<&Dataset> = training.iter().collect();
    Trainer::new(TrainConfig::fast()).pretrain(&mut model, &refs);

    // Hardware: the Gen-NeRF ASIC + GPU baselines costed on the *target*
    // headset resolution.
    let strategy = SamplingStrategy::coarse_then_focus(8, 16);
    let spec = workload_spec(&model.config, &strategy, 512, 512, 6);
    let sim = Simulator::new(AcceleratorConfig::paper());
    let asic = sim.simulate(&spec);
    let rtx = GpuModel::rtx_2080ti().fps(&spec);
    let tx2 = GpuModel::jetson_tx2().fps(&spec);
    println!(
        "target 512x512 frame: ASIC {:.1} FPS | RTX 2080Ti {:.3} FPS | Jetson TX2 {:.4} FPS",
        asic.fps, rtx, tx2
    );
    println!(
        "ASIC pipeline: {:.2} ms/frame, PE utilization {:.0}%, {} point patches",
        asic.latency_s * 1e3,
        asic.pe_utilization * 100.0,
        asic.coarse.patches + asic.focused.patches,
    );

    // The serving session: per-scene state prepared once, coarse
    // passes cached across nearby head poses.
    let bounds = dataset.scene.bounds;
    let background = dataset.scene.background;
    let scene_gt = dataset.scene.clone();
    let scene = Arc::new(SceneState::prepare(
        model,
        &dataset.source_views,
        bounds,
        background,
    ));
    let intr = Intrinsics::from_fov(
        dataset.source_views[0].image.width(),
        dataset.source_views[0].image.height(),
        0.55,
    );
    let server = RenderServer::new(ServerConfig::default());
    let session = server.create_session(
        Arc::clone(&scene),
        SessionConfig::new(intr, strategy).with_coherence(CoherenceConfig::within(0.2, 0.06)),
    );

    // Walk an arc around the object in head-pose-sized steps,
    // recycling the frame buffer from pose to pose.
    println!("\nwalkthrough (preview frames served at capture resolution):");
    let mut recycled = None;
    for step in 0..10 {
        let phi = -0.5 + step as f32 * 0.02;
        let eye = Vec3::new(4.0 * phi.cos(), 1.3, 4.0 * phi.sin());
        let pose = Pose::look_at(eye, Vec3::ZERO, Vec3::Y);
        let mut req = FrameRequest::new(pose);
        if let Some(buf) = recycled.take() {
            req = req.with_buffer(buf);
        }
        let frame = server.submit(session, req).wait();
        // Ground-truth for this pose (the analytic scene lets us check
        // quality at arbitrary poses).
        let camera = gen_nerf_geometry::Camera::new(intr, pose);
        let gt = render_gt(&scene_gt, &camera, 64);
        let cache = match frame.serve.cache {
            CacheOutcome::Hit => "coarse-cache HIT ",
            CacheOutcome::Miss => "coarse-cache miss",
            CacheOutcome::Bypass => "cache off        ",
        };
        println!(
            "  pose {step}: PSNR {:5.2} dB | {:7.1} ms latency | {} | {:6.1} focused pts/ray",
            psnr(&gt, &frame.image),
            frame.serve.latency.as_secs_f64() * 1e3,
            cache,
            frame.stats.points as f64 / frame.stats.rays as f64,
        );
        if step == 2 {
            std::fs::write("walkthrough_pose2.ppm", frame.image.to_ppm()).expect("write frame");
            println!("         wrote walkthrough_pose2.ppm");
        }
        recycled = Some(frame.image);
    }
    let cache = server.cache_stats(session);
    println!(
        "\ncoarse cache: {} hits / {} misses ({:.0}% hit rate) — cached poses re-ran only the focus pass",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
}
