//! Shared infrastructure for the reproduction harness.
//!
//! Every `fig*`/`tab*` binary uses this module to build datasets, train
//! models and print aligned tables. Three environment variables control
//! the fidelity/runtime trade-off:
//!
//! * `GEN_NERF_SCALE` — resolution scale relative to the paper's
//!   (default 0.08; 1.0 reproduces the paper's resolutions but takes
//!   hours in this pure-Rust pipeline),
//! * `GEN_NERF_STEPS` — pretraining steps (default 800),
//! * `GEN_NERF_THREADS` — worker threads for the parallel engines
//!   (default: all cores; see [`gen_nerf_parallel`]). Sweeps fan their
//!   points out with [`par_sweep`]; results are identical for any
//!   value.

use gen_nerf::config::{ModelConfig, RayModuleChoice};
use gen_nerf::model::GenNerfModel;
use gen_nerf::trainer::{TrainConfig, Trainer};
use gen_nerf_scene::{Dataset, DatasetKind};

/// Reproduction-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// Resolution scale vs the paper's evaluation resolutions.
    pub scale: f32,
    /// Pretraining steps.
    pub train_steps: usize,
    /// Ground-truth renderer samples per ray (dataset generation).
    pub gt_samples: usize,
    /// Number of source views generated per dataset.
    pub n_source: usize,
    /// Number of held-out eval views per dataset.
    pub n_eval: usize,
    /// Scene/content seed.
    pub seed: u64,
}

impl ReproConfig {
    /// Reads the configuration from the environment (see module docs).
    pub fn from_env() -> Self {
        let scale = std::env::var("GEN_NERF_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.08);
        let train_steps = std::env::var("GEN_NERF_STEPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(800);
        Self {
            scale,
            train_steps,
            gt_samples: 64,
            n_source: 10,
            n_eval: 2,
            seed: 7,
        }
    }

    /// A very small configuration for CI / criterion smoke runs.
    pub fn smoke() -> Self {
        Self {
            scale: 0.03,
            train_steps: 150,
            gt_samples: 32,
            n_source: 6,
            n_eval: 1,
            seed: 7,
        }
    }
}

/// Builds an evaluation dataset analog.
pub fn eval_dataset(kind: DatasetKind, name: &str, cfg: &ReproConfig) -> Dataset {
    Dataset::build(
        kind,
        name,
        cfg.scale,
        cfg.n_source,
        cfg.n_eval,
        cfg.gt_samples,
        cfg.seed,
    )
}

/// Builds the cross-scene *training* corpus: procedural scenes distinct
/// from every named evaluation scene (the generalizable setting — the
/// model never trains on the scene it is evaluated on).
pub fn training_datasets(cfg: &ReproConfig) -> Vec<Dataset> {
    ["train-a", "train-b", "train-c"]
        .iter()
        .map(|name| {
            Dataset::build(
                DatasetKind::NerfSynthetic,
                name,
                cfg.scale,
                cfg.n_source.min(6),
                1,
                cfg.gt_samples,
                cfg.seed + 101,
            )
        })
        .collect()
}

/// Trains a fresh model with the requested ray module on the training
/// corpus.
pub fn pretrained_model(
    cfg: &ReproConfig,
    ray_module: RayModuleChoice,
    datasets: &[Dataset],
) -> GenNerfModel {
    let mut model = GenNerfModel::new(ModelConfig::fast().with_ray_module(ray_module));
    let mut trainer = Trainer::new(TrainConfig {
        steps: cfg.train_steps,
        ..TrainConfig::fast()
    });
    let refs: Vec<&Dataset> = datasets.iter().collect();
    trainer.pretrain(&mut model, &refs);
    model
}

/// Evaluates every sweep point of an experiment in parallel, returning
/// results in point order.
///
/// Sweep points are independent (each is one `evaluate` or `simulate`
/// call over shared, `Sync`-safe models/configs), so the experiment
/// harness fans them out across host threads. The `GEN_NERF_THREADS`
/// budget is *split*, not nested: with `total` threads and `n` points,
/// up to `min(n, total)` sweep workers run concurrently and each
/// point's closure receives `inner = max(1, total / workers)` — the
/// worker count it should pin on its inner engine
/// (`evaluate_with_threads`, `Simulator::with_threads`), keeping the
/// whole sweep at ~`total` threads. Results are deterministic for any
/// split.
pub fn par_sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, usize) -> R + Sync,
{
    let total = gen_nerf_parallel::num_threads();
    let workers = points.len().clamp(1, total);
    let inner = (total / workers).max(1);
    gen_nerf_parallel::par_map_threads(points, workers, |_, p| f(p, inner))
}

/// Prints an aligned table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// The seed's dense GEMM kernel: textbook `i`/`k`/`j` loop with the
/// data-dependent `a == 0.0` skip in the inner loop. Kept here (and
/// only here) as the baseline the branchless register-blocked kernel
/// in `gen-nerf-nn` is measured against — by the `nn_kernels`
/// micro-bench and by `perf_report`'s seed-path replica.
pub fn seed_matmul_zero_skip(
    a: &gen_nerf_nn::Tensor2,
    b: &gen_nerf_nn::Tensor2,
) -> gen_nerf_nn::Tensor2 {
    assert_eq!(a.cols(), b.rows());
    let mut out = gen_nerf_nn::Tensor2::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (k, &av) in a.row(i).iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (j, &bv) in b_row.iter().enumerate() {
                out_row[j] += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_is_small() {
        let c = ReproConfig::smoke();
        assert!(c.scale <= 0.05);
        assert!(c.train_steps <= 200);
    }

    #[test]
    fn training_and_eval_scenes_are_disjoint() {
        let cfg = ReproConfig::smoke();
        let train = training_datasets(&cfg);
        for t in &train {
            for kind in DatasetKind::all() {
                for name in kind.scene_names() {
                    assert_ne!(t.name.as_str(), *name, "training scene leaks into eval");
                }
            }
        }
    }

    #[test]
    fn eval_dataset_builds() {
        let cfg = ReproConfig::smoke();
        let ds = eval_dataset(DatasetKind::Llff, "fern", &cfg);
        assert_eq!(ds.source_views.len(), cfg.n_source);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
