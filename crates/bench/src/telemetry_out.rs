//! Telemetry exposition shared by the serving binaries.
//!
//! `serve_load` and `serve_report` call [`write_exposition`] at the
//! end of a run: when [`TELEMETRY_OUT_ENV`] (`GEN_NERF_TELEMETRY_OUT`)
//! is set, the process-global registry snapshot is rendered as a
//! Prometheus-style dump to that path, and the human `--watch`-style
//! table is printed to stdout. [`snapshot_json`] renders the same
//! snapshot as the `BENCH_telemetry.json` artifact: every counter and
//! gauge sample verbatim, histograms as count/sum plus derived
//! p50/p99/p999.

use gen_nerf_telemetry::{render_prometheus, render_watch, Snapshot};

/// Env var: when set, the serving binaries write a Prometheus-style
/// dump of the end-of-run registry snapshot to this path.
pub const TELEMETRY_OUT_ENV: &str = "GEN_NERF_TELEMETRY_OUT";

/// Prints the watch table for `snap` and, if [`TELEMETRY_OUT_ENV`] is
/// set, writes the Prometheus dump there (returning the path).
pub fn write_exposition(snap: &Snapshot) -> Option<String> {
    print!("{}", render_watch(snap));
    let path = std::env::var(TELEMETRY_OUT_ENV).ok()?;
    std::fs::write(&path, render_prometheus(snap)).expect("write telemetry exposition");
    println!("wrote {path}");
    Some(path)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn labels_json(labels: &[(&'static str, String)]) -> String {
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", inner.join(", "))
}

/// Renders `snap` as the `BENCH_telemetry.json` document.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                c.name,
                labels_json(&c.labels),
                c.value
            )
        })
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|g| {
            format!(
                "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                g.name,
                labels_json(&g.labels),
                g.value
            )
        })
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|h| {
            format!(
                "    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                h.name,
                labels_json(&h.labels),
                h.hist.count,
                h.hist.sum,
                h.hist.percentile(0.5),
                h.hist.percentile(0.99),
                h.hist.percentile(0.999),
            )
        })
        .collect();
    format!(
        "{{\n  \"counters\": [\n{}\n  ],\n  \"gauges\": [\n{}\n  ],\n  \
         \"histograms\": [\n{}\n  ]\n}}\n",
        counters.join(",\n"),
        gauges.join(",\n"),
        histograms.join(",\n"),
    )
}

/// Writes the merged end-of-run snapshot to `BENCH_telemetry.json` (or
/// the path in `GEN_NERF_TELEMETRY_JSON`) and runs [`write_exposition`].
pub fn write_telemetry_artifacts() {
    let snap = gen_nerf_telemetry::snapshot();
    let out = std::env::var("GEN_NERF_TELEMETRY_JSON")
        .unwrap_or_else(|_| "BENCH_telemetry.json".to_string());
    std::fs::write(&out, snapshot_json(&snap)).expect("write telemetry report");
    println!("wrote {out}");
    write_exposition(&snap);
}
