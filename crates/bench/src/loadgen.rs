//! Deterministic open-loop load generation for the serve tier.
//!
//! `serve_load` (the scale harness) drives the server with **open-loop
//! Poisson arrivals**: request times are drawn from each session's
//! exponential inter-arrival distribution up front, independent of how
//! fast the server answers — the arrival process never slows down to
//! match a saturated server, which is exactly what exposes shedding
//! and degradation. Every draw comes from a [`ChaCha8Rng`] seeded from
//! a single spec seed (overridable via the [`SEED_ENV`] environment
//! variable), so two runs of the same spec produce **identical**
//! request schedules — arrival times, poses, deadline classes, bit for
//! bit. `schedule_is_deterministic` pins that.
//!
//! Each session follows its own pose trajectory: an arc around the
//! scene with per-session start angle, angular velocity, radius and
//! height drawn from the session's stream. Sessions are assigned
//! round-robin to the spec's scene count, so a sharded server sees
//! cross-scene traffic.

use gen_nerf_geometry::{Pose, Vec3};
use gen_nerf_serve::DeadlineClass;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Environment variable overriding [`LoadSpec::seed`] (same convention
/// as the repo's other `GEN_NERF_*` knobs).
pub const SEED_ENV: &str = "GEN_NERF_SEED";

/// Parses a seed override; `None` or unparseable input falls back to
/// `default`. Split from the env read so it is testable without
/// process-global env races.
pub fn parse_seed(raw: Option<&str>, default: u64) -> u64 {
    raw.and_then(|s| s.trim().parse().ok()).unwrap_or(default)
}

/// Reads the [`SEED_ENV`] override, falling back to `default`.
pub fn seed_from_env(default: u64) -> u64 {
    parse_seed(std::env::var(SEED_ENV).ok().as_deref(), default)
}

/// One load scenario: how many sessions, how hard each pushes, and the
/// seed everything derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Frames each session requests over the run.
    pub frames_per_session: usize,
    /// Mean per-session request rate (Poisson arrivals), frames/sec.
    pub rate_hz: f64,
    /// Fraction of frames submitted as [`DeadlineClass::BestEffort`]
    /// (prefetch traffic); the rest are Interactive.
    pub best_effort_fraction: f64,
    /// Distinct scenes; sessions are assigned round-robin.
    pub scenes: usize,
    /// Master seed: every arrival time, pose and class derives from it.
    pub seed: u64,
}

/// One scheduled request of the load plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Offset from the run start, in milliseconds.
    pub at_ms: f64,
    /// Submitting session (dense `0..spec.sessions`).
    pub session: usize,
    /// The session's scene (`session % spec.scenes`).
    pub scene: usize,
    /// Step index within the session's trajectory.
    pub step: usize,
    /// Head pose to render.
    pub pose: Pose,
    /// Scheduling class.
    pub deadline: DeadlineClass,
}

/// A session's arc trajectory parameters, drawn from its stream.
struct Trajectory {
    phase: f32,
    omega: f32,
    radius: f32,
    height: f32,
}

impl Trajectory {
    fn draw(rng: &mut ChaCha8Rng) -> Self {
        Self {
            phase: rng.gen_range(0.0f64..std::f64::consts::TAU) as f32,
            omega: rng.gen_range(0.004f64..0.02) as f32,
            radius: rng.gen_range(3.2f64..4.4) as f32,
            height: rng.gen_range(0.8f64..1.6) as f32,
        }
    }

    fn pose(&self, step: usize) -> Pose {
        let phi = self.phase + self.omega * step as f32;
        let eye = Vec3::new(
            self.radius * phi.cos(),
            self.height,
            self.radius * phi.sin(),
        );
        Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
    }
}

/// Derives session `s`'s private stream from the master seed
/// (splitmix-style mix so adjacent sessions don't share prefixes).
fn session_rng(seed: u64, session: usize) -> ChaCha8Rng {
    let mixed = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(session as u64 + 1))
        .rotate_left(17)
        ^ 0xD6E8_FEB8_6659_FD93u64;
    ChaCha8Rng::seed_from_u64(mixed)
}

/// One injected fault of a chaos schedule — the *kind* of failure; the
/// harness maps it onto the serve tier's `Fault` knobs (stall lengths
/// come from the [`ChaosSpec`], budgets from the server config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Panic on the first render attempt only: the retry policy
    /// recovers the frame, bitwise identical to a clean render.
    TransientPanic,
    /// Panic on every attempt: the retry budget exhausts, the frame
    /// fails, and repeated hits feed the scene's circuit breaker.
    PersistentPanic,
    /// Stall longer than every deadline budget: the watchdog times the
    /// frame out and cancellation reclaims the stalled worker.
    Timeout,
    /// Stall briefly (within budget): a slow frame that must still
    /// complete normally.
    Slow,
}

/// A deterministic chaos schedule: which fraction of frames fault, and
/// the stream everything derives from. Fault *placement* and *kind*
/// are drawn from a chaos-private `ChaCha8` stream (mixed differently
/// from every session stream), so the same seed replays the identical
/// fault schedule on top of the identical request schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Fraction of frames (by schedule index) that carry a fault.
    pub fraction: f64,
    /// Master seed; reuse the load seed so one number replays both.
    pub seed: u64,
}

/// Derives the chaos-private stream (distinct from any session's).
fn chaos_rng(seed: u64) -> ChaCha8Rng {
    let mixed =
        seed.wrapping_mul(0xA24B_AED4_963E_E407u64).rotate_left(29) ^ 0x9FB2_1C65_1E98_DF25u64;
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Builds the fault schedule for a `frames`-long request plan: one
/// `Option<ChaosFault>` per schedule index. Kinds are drawn 40%
/// transient-panic / 20% persistent-panic / 20% timeout / 20% slow —
/// transient failures dominate, as they do in production, so the
/// retry path sees the most traffic.
pub fn chaos_plan(spec: &ChaosSpec, frames: usize) -> Vec<Option<ChaosFault>> {
    let mut rng = chaos_rng(spec.seed);
    (0..frames)
        .map(|_| {
            // Draw both numbers unconditionally so a frame's fault
            // kind never depends on earlier frames' placements.
            let hit = rng.gen::<f64>() < spec.fraction;
            let kind: f64 = rng.gen();
            if !hit {
                return None;
            }
            Some(if kind < 0.4 {
                ChaosFault::TransientPanic
            } else if kind < 0.6 {
                ChaosFault::PersistentPanic
            } else if kind < 0.8 {
                ChaosFault::Timeout
            } else {
                ChaosFault::Slow
            })
        })
        .collect()
}

/// One injected *shard-lifecycle* fault of a heal schedule: a failure
/// of the shard's scheduler thread itself, which the self-healing
/// layer (heartbeats, health sweep, restart-with-requeue) must detect
/// and recover from. Distinct from [`ChaosFault`]: those fail one
/// *frame*; these take out the whole shard under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealFault {
    /// The shard's scheduler thread exits mid-frame: the health sweep
    /// must classify the shard Dead, restart it, and requeue the frame
    /// (which then renders bitwise identical to a clean run).
    KillShard,
    /// The scheduler thread stalls past the heartbeat budget without
    /// beating: the sweep must classify the shard Wedged, condemn it,
    /// and hand its queue to a fresh incarnation.
    WedgeShard,
}

/// Derives the heal-private stream (distinct from every session
/// stream, the loud-chaos stream, and the corruption stream, so one
/// seed replays all schedules independently).
fn heal_rng(seed: u64) -> ChaCha8Rng {
    let mixed =
        seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4Fu64).rotate_left(31) ^ 0x1656_67B1_9E37_79F9u64;
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Builds the shard-lifecycle fault schedule for a `frames`-long
/// request plan: one `Option<HealFault>` per schedule index, drawn
/// 50% kill / 50% wedge. Like [`chaos_plan`], every index draws the
/// same number of stream values whether or not it faults, so a longer
/// plan extends a shorter one unchanged.
pub fn heal_plan(spec: &ChaosSpec, frames: usize) -> Vec<Option<HealFault>> {
    let mut rng = heal_rng(spec.seed);
    (0..frames)
        .map(|_| {
            let hit = rng.gen::<f64>() < spec.fraction;
            let kind: f64 = rng.gen();
            if !hit {
                return None;
            }
            Some(if kind < 0.5 {
                HealFault::KillShard
            } else {
                HealFault::WedgeShard
            })
        })
        .collect()
}

/// One injected *corruption* of an integrity-chaos schedule: silent
/// data corruption planted at a specific pipeline stage, which the
/// output-integrity machinery (ABFT GEMM checksums, stage sentinels,
/// anchor digests) must catch before a pixel is published. Distinct
/// from [`ChaosFault`]: those faults are *loud* (panics, stalls); these
/// are the quiet ones that would otherwise serve wrong pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionFault {
    /// Supra-tolerance perturbation of one fused-GEMM output element —
    /// caught by the ABFT row-checksum verification.
    Gemm,
    /// One composited pixel poisoned before publication — caught by
    /// the composite-boundary sentinel.
    Pixels,
    /// One retained coarse anchor bit-flipped in the session cache —
    /// caught by the digest check at import (a counted miss).
    Anchor,
}

/// Derives the corruption-private stream (distinct from every session
/// stream *and* from the loud-chaos stream, so `--chaos --corrupt`
/// replays both schedules independently from one seed).
fn corruption_rng(seed: u64) -> ChaCha8Rng {
    let mixed =
        seed.wrapping_mul(0xD134_2543_DE82_EF95u64).rotate_left(23) ^ 0x2545_F491_4F6C_DD1Du64;
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Builds the corruption schedule for a `frames`-long request plan:
/// one `Option<(kind, fault_seed)>` per schedule index, where
/// `fault_seed` deterministically places the flipped bits (which GEMM
/// cell, which pixel, which anchor). Kinds are drawn 40% GEMM / 40%
/// pixel / 20% anchor. Like [`chaos_plan`], every index draws the same
/// number of stream values whether or not it faults, so a longer plan
/// extends a shorter one unchanged.
pub fn corruption_plan(spec: &ChaosSpec, frames: usize) -> Vec<Option<(CorruptionFault, u64)>> {
    let mut rng = corruption_rng(spec.seed);
    (0..frames)
        .map(|_| {
            let hit = rng.gen::<f64>() < spec.fraction;
            let kind: f64 = rng.gen();
            let fault_seed: u64 = rng.gen();
            if !hit {
                return None;
            }
            let kind = if kind < 0.4 {
                CorruptionFault::Gemm
            } else if kind < 0.8 {
                CorruptionFault::Pixels
            } else {
                CorruptionFault::Anchor
            };
            Some((kind, fault_seed))
        })
        .collect()
}

/// Builds the full request schedule of `spec`, sorted by arrival time
/// (ties broken by session then step, so the order itself is
/// deterministic too).
pub fn load_plan(spec: &LoadSpec) -> Vec<Arrival> {
    assert!(spec.rate_hz > 0.0, "rate must be positive");
    let scenes = spec.scenes.max(1);
    let mut plan = Vec::with_capacity(spec.sessions * spec.frames_per_session);
    for s in 0..spec.sessions {
        let mut rng = session_rng(spec.seed, s);
        let traj = Trajectory::draw(&mut rng);
        let mut t_ms = 0.0f64;
        for k in 0..spec.frames_per_session {
            // Exponential inter-arrival: -ln(1-u)/rate. u ∈ [0,1), so
            // 1-u ∈ (0,1] and the log is finite.
            let u: f64 = rng.gen();
            t_ms += -(1.0 - u).ln() / spec.rate_hz * 1e3;
            let deadline = if rng.gen::<f64>() < spec.best_effort_fraction {
                DeadlineClass::BestEffort
            } else {
                DeadlineClass::Interactive
            };
            plan.push(Arrival {
                at_ms: t_ms,
                session: s,
                scene: s % scenes,
                step: k,
                pose: traj.pose(k),
                deadline,
            });
        }
    }
    plan.sort_by(|a, b| {
        a.at_ms
            .total_cmp(&b.at_ms)
            .then(a.session.cmp(&b.session))
            .then(a.step.cmp(&b.step))
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> LoadSpec {
        LoadSpec {
            sessions: 12,
            frames_per_session: 9,
            rate_hz: 40.0,
            best_effort_fraction: 0.3,
            scenes: 3,
            seed,
        }
    }

    /// Pose equality down to the bit — `Pose` has no `Eq`, and "close"
    /// is not the contract here.
    fn pose_bits(p: &Pose) -> Vec<u32> {
        let mut bits: Vec<u32> = (0..3)
            .flat_map(|r| {
                let row = p.rotation.row(r);
                [row.x.to_bits(), row.y.to_bits(), row.z.to_bits()]
            })
            .collect();
        bits.extend([
            p.origin.x.to_bits(),
            p.origin.y.to_bits(),
            p.origin.z.to_bits(),
        ]);
        bits
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = load_plan(&spec(7));
        let b = load_plan(&spec(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ms.to_bits(), y.at_ms.to_bits());
            assert_eq!((x.session, x.scene, x.step), (y.session, y.scene, y.step));
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(pose_bits(&x.pose), pose_bits(&y.pose));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = load_plan(&spec(7));
        let b = load_plan(&spec(8));
        assert_eq!(a.len(), b.len());
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.at_ms.to_bits() != y.at_ms.to_bits()),
            "seed change did not move any arrival"
        );
    }

    #[test]
    fn plan_shape_and_ordering() {
        let s = spec(3);
        let plan = load_plan(&s);
        assert_eq!(plan.len(), s.sessions * s.frames_per_session);
        // Sorted by time; per-session steps strictly ordered in time
        // (inter-arrival gaps are positive with probability one, and
        // the sort is stable on ties anyway).
        assert!(plan.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        for sess in 0..s.sessions {
            let steps: Vec<usize> = plan
                .iter()
                .filter(|a| a.session == sess)
                .map(|a| a.step)
                .collect();
            assert_eq!(steps, (0..s.frames_per_session).collect::<Vec<_>>());
        }
        // Scenes assigned round-robin.
        assert!(plan.iter().all(|a| a.scene == a.session % s.scenes));
        // Both classes appear at a 0.3 best-effort fraction over 108
        // draws (probability of either class vanishing is negligible,
        // and the draw is seed-deterministic anyway).
        assert!(plan.iter().any(|a| a.deadline == DeadlineClass::BestEffort));
        assert!(plan
            .iter()
            .any(|a| a.deadline == DeadlineClass::Interactive));
    }

    #[test]
    fn chaos_schedule_is_deterministic_and_seed_sensitive() {
        let spec = ChaosSpec {
            fraction: 0.3,
            seed: 7,
        };
        let a = chaos_plan(&spec, 200);
        let b = chaos_plan(&spec, 200);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        let c = chaos_plan(
            &ChaosSpec {
                fraction: 0.3,
                seed: 8,
            },
            200,
        );
        assert_ne!(a, c, "seed change did not move any fault");
        // All kinds appear at fraction 0.3 over 200 draws (the draw is
        // seed-deterministic, so this is a fixed fact, not a flake).
        for kind in [
            ChaosFault::TransientPanic,
            ChaosFault::PersistentPanic,
            ChaosFault::Timeout,
            ChaosFault::Slow,
        ] {
            assert!(
                a.iter().any(|f| *f == Some(kind)),
                "{kind:?} never drawn at fraction 0.3 over 200 frames"
            );
        }
        // A longer plan extends the shorter one — placement is
        // per-index, independent of plan length.
        let long = chaos_plan(&spec, 400);
        assert_eq!(&long[..200], &a[..]);
        // Fraction 0 faults nothing; fraction 1 faults everything.
        let none = chaos_plan(
            &ChaosSpec {
                fraction: 0.0,
                seed: 7,
            },
            64,
        );
        assert!(none.iter().all(Option::is_none));
        let all = chaos_plan(
            &ChaosSpec {
                fraction: 1.0,
                seed: 7,
            },
            64,
        );
        assert!(all.iter().all(Option::is_some));
    }

    #[test]
    fn heal_schedule_is_deterministic_and_independent() {
        let spec = ChaosSpec {
            fraction: 0.3,
            seed: 7,
        };
        let a = heal_plan(&spec, 200);
        let b = heal_plan(&spec, 200);
        assert_eq!(a, b, "same seed must replay the same heal schedule");
        let c = heal_plan(
            &ChaosSpec {
                fraction: 0.3,
                seed: 8,
            },
            200,
        );
        assert_ne!(a, c, "seed change did not move any shard fault");
        // Independent of the loud-chaos stream: the same seed must not
        // kill shards wherever it places panics/stalls.
        let loud = chaos_plan(&spec, 200);
        assert!(
            a.iter().zip(&loud).any(|(x, y)| x.is_some() != y.is_some()),
            "heal placement mirrors the chaos placement"
        );
        // Both kinds appear at fraction 0.3 over 200 draws (the draw
        // is seed-deterministic, so this is a fixed fact, not a flake).
        for kind in [HealFault::KillShard, HealFault::WedgeShard] {
            assert!(
                a.iter().any(|f| *f == Some(kind)),
                "{kind:?} never drawn at fraction 0.3 over 200 frames"
            );
        }
        // A longer plan extends the shorter one.
        let long = heal_plan(&spec, 400);
        assert_eq!(&long[..200], &a[..]);
        let none = heal_plan(
            &ChaosSpec {
                fraction: 0.0,
                seed: 7,
            },
            64,
        );
        assert!(none.iter().all(Option::is_none));
        let all = heal_plan(
            &ChaosSpec {
                fraction: 1.0,
                seed: 7,
            },
            64,
        );
        assert!(all.iter().all(Option::is_some));
    }

    #[test]
    fn corruption_schedule_is_deterministic_and_prefix_stable() {
        let spec = ChaosSpec {
            fraction: 0.4,
            seed: 7,
        };
        let a = corruption_plan(&spec, 200);
        let b = corruption_plan(&spec, 200);
        assert_eq!(a, b, "same seed must replay the same corruption schedule");
        let c = corruption_plan(
            &ChaosSpec {
                fraction: 0.4,
                seed: 8,
            },
            200,
        );
        assert_ne!(a, c, "seed change did not move any corruption");
        // Independent of the loud-chaos stream: the same seed must not
        // place corruptions wherever it places panics/stalls.
        let loud = chaos_plan(&spec, 200);
        assert!(
            a.iter().zip(&loud).any(|(x, y)| x.is_some() != y.is_some()),
            "corruption placement mirrors the chaos placement"
        );
        // All kinds appear at fraction 0.4 over 200 draws (the draw is
        // seed-deterministic, so this is a fixed fact, not a flake).
        for kind in [
            CorruptionFault::Gemm,
            CorruptionFault::Pixels,
            CorruptionFault::Anchor,
        ] {
            assert!(
                a.iter().any(|f| matches!(f, Some((k, _)) if *k == kind)),
                "{kind:?} never drawn at fraction 0.4 over 200 frames"
            );
        }
        // A longer plan extends the shorter one — placement is
        // per-index, independent of plan length.
        let long = corruption_plan(&spec, 400);
        assert_eq!(&long[..200], &a[..]);
        let none = corruption_plan(
            &ChaosSpec {
                fraction: 0.0,
                seed: 7,
            },
            64,
        );
        assert!(none.iter().all(Option::is_none));
        let all = corruption_plan(
            &ChaosSpec {
                fraction: 1.0,
                seed: 7,
            },
            64,
        );
        assert!(all.iter().all(Option::is_some));
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed(None, 42), 42);
        assert_eq!(parse_seed(Some("7"), 42), 7);
        assert_eq!(parse_seed(Some(" 19 "), 42), 19);
        assert_eq!(parse_seed(Some("not-a-seed"), 42), 42);
        assert_eq!(parse_seed(Some(""), 42), 42);
    }
}
