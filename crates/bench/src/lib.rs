//! Benchmark harness for the Gen-NeRF reproduction.
//!
//! One module per table/figure of the paper's evaluation (Sec. 5); the
//! `src/bin/` wrappers print each artifact, and `reproduce_all` runs
//! the whole evaluation. See `EXPERIMENTS.md` at the workspace root for
//! the paper-vs-measured record.

pub mod experiments;
pub mod harness;
pub mod loadgen;
pub mod telemetry_out;
