//! Regenerates the Sec. 2.4 motivation table; see
//! `gen_nerf_bench::experiments::motivation`.

fn main() {
    gen_nerf_bench::experiments::motivation::run();
}
