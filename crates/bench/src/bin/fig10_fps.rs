//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::fig10`.

fn main() {
    gen_nerf_bench::experiments::fig10::run();
}
