//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::fig11`.

fn main() {
    gen_nerf_bench::experiments::fig11::run();
}
