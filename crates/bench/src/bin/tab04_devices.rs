//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::tab04`.

fn main() {
    gen_nerf_bench::experiments::tab04::run();
}
