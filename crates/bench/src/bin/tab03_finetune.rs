//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::tab03`.

use gen_nerf_bench::harness::ReproConfig;

fn main() {
    let cfg = ReproConfig::from_env();
    println!("repro config: {cfg:?}");
    gen_nerf_bench::experiments::tab03::run(&cfg);
}
