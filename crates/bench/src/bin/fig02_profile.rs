//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::fig02`.

fn main() {
    gen_nerf_bench::experiments::fig02::run();
}
