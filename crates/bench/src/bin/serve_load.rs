//! Thousand-session scale harness for the sharded serve tier.
//!
//! Drives a [`RenderServer`] with **open-loop Poisson arrivals** from
//! [`gen_nerf_bench::loadgen`]: per-session pose trajectories and
//! request times are drawn up front from a fixed seed ([`SEED_ENV`]
//! overridable), so two runs replay the identical request schedule —
//! the arrival process does not slow down when the server saturates,
//! which is what exposes the admission-control behaviour (BestEffort
//! sheds first, Interactive degrades to the quarter tier before the
//! hard bound sheds it too).
//!
//! Each scenario records per-class completion counts, shed/degrade
//! counters, Interactive latency percentiles (p50/p99/p999) and the
//! configuration's saturation throughput (a closed burst through a
//! shed-free server) into `BENCH_scale.json` (current directory, or
//! the path in `GEN_NERF_SCALE_OUT`).
//!
//! `--test` runs a miniature below-saturation workload — the CI smoke
//! mode — and **exits non-zero if any Interactive frame was shed**,
//! the admission-control regression gate.
//!
//! Two fault-injection modes share the binary and the seed. `--chaos`
//! replays a loud-failure schedule (panics, stalls, slow frames)
//! against the supervised tier plus a scripted circuit-breaker drill,
//! writing `BENCH_chaos.json`. `--corrupt` replays a *silent*-failure
//! schedule — supra-tolerance GEMM perturbations, NaN-poisoned
//! pixels, bit-flipped cache anchors — under full ABFT checking,
//! measures off/sample/full checking overhead on a clean burst, and
//! writes `BENCH_integrity.json`; its `--test` gate fails on any
//! undetected corruption, published non-finite pixel, clean-run false
//! positive, or overhead past the ceiling (full < 15%, sample < 5%).

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf_bench::loadgen::{
    chaos_plan, corruption_plan, heal_plan, load_plan, seed_from_env, Arrival, ChaosFault,
    ChaosSpec, CorruptionFault, HealFault, LoadSpec, SEED_ENV,
};
use gen_nerf_bench::telemetry_out;
use gen_nerf_geometry::Intrinsics;
use gen_nerf_nn::kernels::integrity::{self, IntegrityMode};
use gen_nerf_nn::kernels::{self, Backend};
use gen_nerf_scene::{Dataset, DatasetKind};
use gen_nerf_serve::{
    AdmissionConfig, BreakerConfig, BreakerState, CoherenceConfig, DeadlineClass, Fault,
    FrameRequest, FrameResult, GovernorConfig, HealthConfig, RenderServer, RetryPolicy, SceneState,
    ServeError, ServerConfig, SessionConfig, SessionId, SupervisorConfig,
};
use gen_nerf_telemetry::{AdmissionVerdict, EventKind};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Telemetry reconciliation: the registry snapshot, folded by a server's
// instance label, must agree *exactly* with the outcomes the harness
// observed through the frame handles — and every submitted frame must
// leave a complete trace in the shard rings.
// ---------------------------------------------------------------------------

/// Harness-side outcome tallies for one server's full life, warm-up
/// frames included.
#[derive(Default)]
struct ServeTruth {
    submitted: u64,
    rendered: u64,
    failed: u64,
    timed_out: u64,
    /// Shed for any reason (capacity, hard bound, or open breaker).
    shed: u64,
    /// Degrade admissions, checkable only when every degraded frame is
    /// known to have been delivered (clean below-saturation load).
    degraded: Option<u64>,
}

/// Waits for the server's counters to quiesce (bookkeeping lands just
/// after the fulfil that wakes a handle, and losing fulfil racers roll
/// their speculative increments back asynchronously), then compares
/// the snapshot fold against `truth`. Returns mismatch descriptions —
/// empty means the telemetry reconciled exactly.
fn reconcile_telemetry(server: &RenderServer, truth: &ServeTruth) -> Vec<String> {
    let inst = server.instance().to_string();
    let sub: &[(&str, &str)] = &[("instance", &inst)];
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stable = 0;
    while stable < 5 {
        let snap = server.telemetry_snapshot();
        let settled = snap.counter_with("serve_frames_rendered_total", sub)
            + snap.counter_with("serve_frames_failed_total", sub)
            + snap.counter_with("serve_frames_timed_out_total", sub)
            + snap.counter_with("serve_frames_shed_total", sub);
        if settled == truth.submitted && server.supervisor_stats().in_flight == 0 {
            stable += 1;
        } else {
            stable = 0;
            if Instant::now() > deadline {
                return vec![format!(
                    "counters never quiesced: {settled}/{} frames accounted for",
                    truth.submitted
                )];
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = server.telemetry_snapshot();
    let mut mismatches = Vec::new();
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            mismatches.push(format!("{name}: snapshot {got} != harness {want}"));
        }
    };
    check(
        "submitted",
        snap.counter_with("serve_frames_submitted_total", sub),
        truth.submitted,
    );
    check(
        "rendered",
        snap.counter_with("serve_frames_rendered_total", sub),
        truth.rendered,
    );
    check(
        "failed",
        snap.counter_with("serve_frames_failed_total", sub),
        truth.failed,
    );
    check(
        "timed_out",
        snap.counter_with("serve_frames_timed_out_total", sub),
        truth.timed_out,
    );
    check(
        "shed",
        snap.counter_with("serve_frames_shed_total", sub),
        truth.shed,
    );
    if let Some(degraded) = truth.degraded {
        check(
            "degraded",
            snap.counter_with("serve_frames_degraded_total", sub),
            degraded,
        );
    }
    check(
        "latency_observations",
        snap.histogram_merged("serve_latency_ns", sub).count,
        truth.rendered,
    );
    mismatches
}

/// Drains the server's trace rings and verifies frame-lifecycle
/// completeness: every submission left exactly one Submit and exactly
/// one terminal event (Resolve, or a shed/break admission verdict),
/// and the rings dropped nothing.
fn verify_traces(server: &RenderServer, submitted: u64) -> Vec<String> {
    let mut problems = Vec::new();
    let drops = server.trace_drops();
    if drops > 0 {
        problems.push(format!("{drops} trace ring event(s) dropped"));
    }
    // (submits, resolves, terminal admission verdicts) per frame. Only
    // frame-lifecycle kinds key into the map: shard-lifecycle events
    // (Condemn/Restart/Drain carry the shard, not a frame, in their
    // payload) must not fabricate phantom frame entries.
    let mut by_frame: HashMap<u64, (u64, u64, u64)> = HashMap::new();
    for e in server.drain_traces() {
        match e.kind {
            EventKind::Submit => by_frame.entry(e.frame).or_default().0 += 1,
            EventKind::Resolve => by_frame.entry(e.frame).or_default().1 += 1,
            EventKind::Admit => {
                if AdmissionVerdict::from_code(e.a).is_some_and(|v| v.is_terminal()) {
                    by_frame.entry(e.frame).or_default().2 += 1;
                }
            }
            _ => {}
        }
    }
    if by_frame.len() as u64 != submitted {
        problems.push(format!(
            "{} traced frame(s) != {submitted} submissions",
            by_frame.len()
        ));
    }
    let bad_submit = by_frame.values().filter(|t| t.0 != 1).count();
    if bad_submit > 0 {
        problems.push(format!("{bad_submit} frame(s) without exactly one Submit"));
    }
    let orphans = by_frame.values().filter(|t| t.1 + t.2 != 1).count();
    if orphans > 0 {
        problems.push(format!(
            "{orphans} frame(s) without exactly one terminal event"
        ));
    }
    problems
}

/// Runs both telemetry checks, prints the verdict, and returns whether
/// everything reconciled.
fn telemetry_gate(server: &RenderServer, truth: &ServeTruth) -> bool {
    let mut problems = reconcile_telemetry(server, truth);
    // A frame's lifecycle is at most a handful of ring events, so a
    // workload that keeps `submitted * EVENTS_PER_FRAME_BOUND` under
    // the smallest shard ring cannot lap it even if every frame lands
    // on one shard. Beyond that bound, truncation with counted drops
    // is the documented design — per-frame completeness stops being a
    // testable invariant, and only the (lossless) counters are gated.
    const EVENTS_PER_FRAME_BOUND: u64 = 8;
    let drops = server.trace_drops();
    let truncation_by_design =
        drops > 0 && truth.submitted * EVENTS_PER_FRAME_BOUND > server.trace_capacity() as u64;
    if truncation_by_design {
        if problems.is_empty() {
            println!(
                "TELEMETRY_RECONCILE: OK — counters match harness ground truth \
                 ({} frames); traces truncated by design at this scale \
                 ({drops} events lapped the bounded rings)",
                truth.submitted
            );
            return true;
        }
        for p in &problems {
            eprintln!("TELEMETRY_RECONCILE: FAIL — {p}");
        }
        return false;
    }
    problems.extend(verify_traces(server, truth.submitted));
    if problems.is_empty() {
        println!(
            "TELEMETRY_RECONCILE: OK — snapshot matches harness ground truth \
             ({} frames, complete traces, 0 ring drops)",
            truth.submitted
        );
        true
    } else {
        for p in &problems {
            eprintln!("TELEMETRY_RECONCILE: FAIL — {p}");
        }
        false
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// One scenario's outcome row.
struct Outcome {
    spec: LoadSpec,
    duration_s: f64,
    completed: u64,
    completed_interactive: u64,
    degraded: u64,
    shed_best_effort: u64,
    shed_interactive: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    saturation_fps: f64,
    /// Whether the registry snapshot reconciled exactly with the
    /// harness ground truth (and the traces were complete).
    telemetry_ok: bool,
}

fn build_scenes(n: usize, res: usize) -> Vec<Arc<SceneState>> {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, res, 5);
    (0..n)
        .map(|_| {
            let model = GenNerfModel::new(ModelConfig::fast());
            Arc::new(SceneState::prepare(
                model,
                &ds.source_views,
                ds.scene.bounds,
                ds.scene.background,
            ))
        })
        .collect()
}

fn make_server(scenes: &[Arc<SceneState>], admission: AdmissionConfig) -> RenderServer {
    RenderServer::new(
        ServerConfig::default()
            .with_max_shards(scenes.len())
            .with_admission(admission),
    )
}

fn create_sessions(
    server: &RenderServer,
    scenes: &[Arc<SceneState>],
    n: usize,
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
) -> Vec<SessionId> {
    (0..n)
        .map(|s| {
            server.create_session(
                Arc::clone(&scenes[s % scenes.len()]),
                SessionConfig::new(intrinsics, strategy),
            )
        })
        .collect()
}

/// Saturation throughput of this scene/shard/thread configuration: a
/// closed burst through a server whose admission bounds are far above
/// the burst size, so nothing sheds and the shards run flat out.
fn measure_saturation(
    scenes: &[Arc<SceneState>],
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    burst: usize,
) -> f64 {
    let server = make_server(scenes, AdmissionConfig::with_capacity(burst + 1));
    let sessions = create_sessions(&server, scenes, scenes.len() * 4, intrinsics, strategy);
    let plan = load_plan(&LoadSpec {
        sessions: sessions.len(),
        frames_per_session: burst.div_ceil(sessions.len()),
        rate_hz: 1.0,
        best_effort_fraction: 0.0,
        scenes: scenes.len(),
        seed: 17,
    });
    // Warm the shard pools before timing.
    server
        .submit(sessions[0], FrameRequest::new(plan[0].pose))
        .wait();
    let t0 = Instant::now();
    let handles: Vec<_> = plan
        .iter()
        .take(burst)
        .map(|a| server.submit(sessions[a.session], FrameRequest::new(a.pose)))
        .collect();
    let n = handles.len();
    for h in handles {
        h.wait();
    }
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Replays `spec` open-loop against a fresh server and collects the
/// admission/latency outcome.
fn run_scenario(
    spec: LoadSpec,
    scenes: &[Arc<SceneState>],
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    admission: AdmissionConfig,
    saturation_fps: f64,
) -> Outcome {
    let plan = load_plan(&spec);
    let server = make_server(scenes, admission);
    let sessions = create_sessions(&server, scenes, spec.sessions, intrinsics, strategy);
    // Warm every shard before the clock starts.
    for scene_idx in 0..scenes.len() {
        server
            .submit(sessions[scene_idx], FrameRequest::new(plan[0].pose))
            .wait();
    }

    let start = Instant::now();
    let mut handles: Vec<(DeadlineClass, _)> = Vec::with_capacity(plan.len());
    for arrival in &plan {
        let Arrival {
            at_ms,
            session,
            pose,
            deadline,
            ..
        } = *arrival;
        let target = Duration::from_secs_f64(at_ms / 1e3);
        if let Some(sleep) = target.checked_sub(start.elapsed()) {
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        let req = FrameRequest::new(pose).with_deadline(deadline);
        handles.push((deadline, server.submit(sessions[session], req)));
    }
    let mut interactive_ms: Vec<f64> = Vec::new();
    let mut completed = 0u64;
    let mut completed_interactive = 0u64;
    let mut shed_frames = 0u64;
    let mut degraded_frames = 0u64;
    for (class, handle) in handles {
        match handle.wait_result() {
            Ok(frame) => {
                completed += 1;
                if frame.serve.degraded {
                    degraded_frames += 1;
                }
                if class == DeadlineClass::Interactive {
                    completed_interactive += 1;
                    interactive_ms.push(frame.serve.latency.as_secs_f64() * 1e3);
                }
            }
            Err(ServeError::Shed { .. }) => shed_frames += 1,
            Err(ServeError::Failed(msg)) => panic!("frame failed under load: {msg}"),
            // No faults are injected in the scale scenarios and the
            // default budgets are far above any queue wait here; a
            // timeout, open breaker, drain, or downed shard would be a
            // real regression.
            Err(
                e @ (ServeError::TimedOut { .. }
                | ServeError::CircuitOpen
                | ServeError::Draining
                | ServeError::ShardDown),
            ) => {
                panic!("unexpected supervision outcome under clean load: {e}")
            }
        }
    }
    let duration_s = start.elapsed().as_secs_f64();
    let adm = server.admission_stats();
    // Clean below-saturation load: every non-shed frame is delivered,
    // so the degrade-admission counter is exactly checkable.
    let truth = ServeTruth {
        submitted: scenes.len() as u64 + plan.len() as u64,
        rendered: completed + scenes.len() as u64,
        failed: 0,
        timed_out: 0,
        shed: shed_frames,
        degraded: Some(degraded_frames),
    };
    let telemetry_ok = telemetry_gate(&server, &truth);
    interactive_ms.sort_by(|a, b| a.total_cmp(b));
    Outcome {
        spec,
        duration_s,
        completed,
        completed_interactive,
        degraded: adm.degraded,
        shed_best_effort: adm.shed_best_effort,
        shed_interactive: adm.shed_interactive,
        p50_ms: percentile(&interactive_ms, 0.50),
        p99_ms: percentile(&interactive_ms, 0.99),
        p999_ms: percentile(&interactive_ms, 0.999),
        saturation_fps,
        telemetry_ok,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let offered = o.spec.sessions as f64 * o.spec.rate_hz;
    format!(
        "    {{\n      \"sessions\": {},\n      \
         \"frames_per_session\": {},\n      \
         \"scenes\": {},\n      \
         \"rate_hz_per_session\": {:.2},\n      \
         \"offered_fps\": {offered:.1},\n      \
         \"saturation_fps\": {:.1},\n      \
         \"duration_s\": {:.2},\n      \
         \"completed\": {},\n      \
         \"completed_interactive\": {},\n      \
         \"degraded\": {},\n      \
         \"shed_best_effort\": {},\n      \
         \"shed_interactive\": {},\n      \
         \"interactive_latency_ms_p50\": {:.2},\n      \
         \"interactive_latency_ms_p99\": {:.2},\n      \
         \"interactive_latency_ms_p999\": {:.2}\n    }}",
        o.spec.sessions,
        o.spec.frames_per_session,
        o.spec.scenes,
        o.spec.rate_hz,
        o.saturation_fps,
        o.duration_s,
        o.completed,
        o.completed_interactive,
        o.degraded,
        o.shed_best_effort,
        o.shed_interactive,
        o.p50_ms,
        o.p99_ms,
        o.p999_ms,
    )
}

// ---------------------------------------------------------------------------
// Chaos mode (`--chaos`): deterministic fault replay over the supervised
// serve tier. The seed that fixes the request schedule also fixes the
// fault schedule (a chaos-private stream), so a failure reproduces with
// the same GEN_NERF_SEED.
// ---------------------------------------------------------------------------

/// Per-class budgets chosen for chaos runs: small enough that a
/// timeout drill completes in milliseconds-to-seconds, large enough
/// that clean frames at the chaos workload's modest rate never brush
/// against them.
const CHAOS_INTERACTIVE_BUDGET: Duration = Duration::from_millis(800);
const CHAOS_BEST_EFFORT_BUDGET: Duration = Duration::from_millis(1500);
/// A `Timeout` fault stalls past *both* budgets.
const CHAOS_TIMEOUT_STALL: Duration = Duration::from_millis(2500);
/// A `Slow` fault stalls well within both budgets.
const CHAOS_SLOW_STALL: Duration = Duration::from_millis(80);
/// Slack the gate grants beyond the class budget: the watchdog wakes
/// at the deadline and resolution is prompt, but not instantaneous.
const CHAOS_GRACE: Duration = Duration::from_millis(300);

fn class_budget(class: DeadlineClass) -> Duration {
    match class {
        DeadlineClass::Interactive => CHAOS_INTERACTIVE_BUDGET,
        DeadlineClass::BestEffort => CHAOS_BEST_EFFORT_BUDGET,
    }
}

fn serve_fault(fault: ChaosFault) -> Fault {
    match fault {
        ChaosFault::TransientPanic => Fault::PanicOnce,
        ChaosFault::PersistentPanic => Fault::Panic,
        ChaosFault::Timeout => Fault::Stall(CHAOS_TIMEOUT_STALL),
        ChaosFault::Slow => Fault::Stall(CHAOS_SLOW_STALL),
    }
}

/// The circuit-breaker drill: a fresh server, one scene, a burst of
/// persistent panics until the breaker trips, a shed check while it is
/// open, then cooldown + clean probes until it closes again. Fully
/// deterministic (no load racing the state machine).
struct DrillOutcome {
    frames_to_trip: u64,
    shed_while_open: u64,
    reclosed: bool,
    trips: u64,
}

fn breaker_drill(
    scene: &Arc<SceneState>,
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    pose: gen_nerf_geometry::Pose,
) -> DrillOutcome {
    let cooldown = Duration::from_millis(1000);
    let server = RenderServer::new(
        ServerConfig::default()
            // One failure per frame (no retry) makes trip counting
            // exact; a long cooldown keeps the shed check race-free.
            .with_retry(RetryPolicy::disabled())
            .with_breaker(
                BreakerConfig::default()
                    .with_window(8, 4)
                    .with_cooldown(cooldown)
                    .with_probe_quota(2),
            ),
    );
    let session =
        server.create_session(Arc::clone(scene), SessionConfig::new(intrinsics, strategy));
    let breaker = server.scene_breaker(session);

    let mut frames_to_trip = 0u64;
    while breaker.state() != BreakerState::Open {
        assert!(
            frames_to_trip < 64,
            "breaker never tripped after 64 persistent failures"
        );
        let handle = server.submit(session, FrameRequest::new(pose).with_fault(Fault::Panic));
        let _ = handle.wait_result();
        frames_to_trip += 1;
    }

    // While open (cooldown is 1 s; these submissions take microseconds)
    // every submission sheds instantly with CircuitOpen.
    let mut shed_while_open = 0u64;
    for _ in 0..4 {
        match server
            .submit(session, FrameRequest::new(pose))
            .wait_result()
        {
            Err(ServeError::CircuitOpen) => shed_while_open += 1,
            other => panic!("open breaker admitted a frame: {other:?}"),
        }
    }

    // Cooldown elapses; clean probe frames close the circuit again.
    std::thread::sleep(cooldown + Duration::from_millis(100));
    let mut reclosed = false;
    for _ in 0..8 {
        let _ = server
            .submit(session, FrameRequest::new(pose))
            .wait_result();
        if breaker.state() == BreakerState::Closed {
            reclosed = true;
            break;
        }
    }
    DrillOutcome {
        frames_to_trip,
        shed_while_open,
        reclosed,
        trips: breaker.trips(),
    }
}

/// Fraction of chaos frames that carry a *shard-lifecycle* fault
/// (kill / wedge) on top of the frame-level chaos schedule — rare, as
/// whole-scheduler failures are in production, but present so every
/// chaos replay also exercises detection + restart + requeue.
const CHAOS_HEAL_FRACTION: f64 = 0.06;
/// A `WedgeShard` stall parks the scheduler thread past the default
/// heartbeat budget (2 s) without beating, so the health sweep must
/// condemn the shard; the wedged frame itself resolves through the
/// watchdog at its class budget long before that.
const CHAOS_WEDGE_STALL: Duration = Duration::from_millis(2500);

fn serve_heal_fault(fault: HealFault) -> Fault {
    match fault {
        HealFault::KillShard => Fault::KillShard,
        HealFault::WedgeShard => Fault::WedgeShard(CHAOS_WEDGE_STALL),
    }
}

/// One chaos run's aggregate outcome.
struct ChaosOutcome {
    spec: LoadSpec,
    fraction: f64,
    duration_s: f64,
    submitted: usize,
    completed: u64,
    failed: u64,
    shed: u64,
    timed_out: u64,
    shed_circuit: u64,
    /// Handles that never resolved inside the generous collection
    /// window — the hard gate; must be zero.
    unresolved: u64,
    /// Frames that completed successfully but past their class budget
    /// plus grace — the recovery-latency gate; must be zero.
    late_ok: u64,
    /// Transient-panic frames that completed successfully (the retry
    /// path recovered them).
    recovered: u64,
    /// Mean time-to-recovery: mean submit→complete latency of
    /// recovered frames.
    mttr_ms: f64,
    recovery_p99_ms: f64,
    watchdog_timeouts_interactive: u64,
    watchdog_timeouts_best_effort: u64,
    retries: u64,
    breaker_trips: u64,
    /// Seeded shard-lifecycle faults injected on top of the chaos
    /// schedule (scheduler-thread kills / wedges).
    injected_kills: u64,
    injected_wedges: u64,
    /// Shard restarts the self-healing layer performed in response.
    shard_restarts: u64,
    /// Frames requeued across a restart (the lifecycle counter).
    frames_requeued: u64,
    /// Whether the registry snapshot reconciled exactly with the
    /// harness ground truth and every frame left a complete trace.
    telemetry_ok: bool,
    drill: DrillOutcome,
}

fn run_chaos(spec: LoadSpec, fraction: f64, scenes: &[Arc<SceneState>]) -> ChaosOutcome {
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let intrinsics = Intrinsics::from_fov(12, 12, 0.55);
    let supervision = SupervisorConfig::default()
        .with_interactive_budget(CHAOS_INTERACTIVE_BUDGET)
        .with_best_effort_budget(CHAOS_BEST_EFFORT_BUDGET);
    let server = RenderServer::new(
        ServerConfig::default()
            .with_max_shards(scenes.len())
            .with_admission(AdmissionConfig::with_capacity(256))
            .with_supervision(supervision),
    );
    let sessions = create_sessions(&server, scenes, spec.sessions, intrinsics, strategy);
    let plan = load_plan(&spec);
    let faults = chaos_plan(
        &ChaosSpec {
            fraction,
            seed: spec.seed,
        },
        plan.len(),
    );
    // The shard-lifecycle schedule rides on its own seeded stream; a
    // heal fault replaces the frame-level fault at the same index (the
    // shard dies before the frame would have rendered anyway).
    let heal_faults = heal_plan(
        &ChaosSpec {
            fraction: CHAOS_HEAL_FRACTION,
            seed: spec.seed,
        },
        plan.len(),
    );
    let injected_kills = heal_faults
        .iter()
        .filter(|f| **f == Some(HealFault::KillShard))
        .count() as u64;
    let injected_wedges = heal_faults
        .iter()
        .filter(|f| **f == Some(HealFault::WedgeShard))
        .count() as u64;
    // Warm every shard before the clock starts.
    for scene_idx in 0..scenes.len() {
        server
            .submit(sessions[scene_idx], FrameRequest::new(plan[0].pose))
            .wait();
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(plan.len());
    for ((arrival, fault), heal) in plan.iter().zip(&faults).zip(&heal_faults) {
        let target = Duration::from_secs_f64(arrival.at_ms / 1e3);
        if let Some(sleep) = target.checked_sub(start.elapsed()) {
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        // A shard-lifecycle fault takes the slot: the scheduler dies
        // before the frame-level fault could have fired.
        let effective = if heal.is_some() { None } else { *fault };
        let mut req = FrameRequest::new(arrival.pose).with_deadline(arrival.deadline);
        if let Some(h) = heal {
            req = req.with_fault(serve_heal_fault(*h));
        } else if let Some(f) = fault {
            req = req.with_fault(serve_fault(*f));
        }
        handles.push((
            arrival.deadline,
            effective,
            server.submit(sessions[arrival.session], req),
        ));
    }

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut shed = 0u64;
    let mut timed_out = 0u64;
    let mut shed_circuit = 0u64;
    let mut unresolved = 0u64;
    let mut late_ok = 0u64;
    let mut recovery_ms: Vec<f64> = Vec::new();
    for (class, fault, handle) in handles {
        let budget = class_budget(class);
        // Generous collection window: every handle must resolve well
        // inside it (the watchdog resolves stragglers at the budget).
        match handle.wait_timeout(budget * 2 + Duration::from_secs(2)) {
            None => unresolved += 1,
            Some(Ok(frame)) => {
                completed += 1;
                if frame.serve.latency > budget + CHAOS_GRACE {
                    late_ok += 1;
                }
                if fault == Some(ChaosFault::TransientPanic) {
                    recovery_ms.push(frame.serve.latency.as_secs_f64() * 1e3);
                }
            }
            Some(Err(ServeError::TimedOut { .. })) => timed_out += 1,
            Some(Err(ServeError::Failed(_))) => failed += 1,
            Some(Err(ServeError::Shed { .. })) => shed += 1,
            Some(Err(ServeError::CircuitOpen)) => shed_circuit += 1,
            // The chaos plan injects no shard-level faults and never
            // drains the server; either error here is a regression.
            Some(Err(e @ (ServeError::Draining | ServeError::ShardDown))) => {
                panic!("unexpected lifecycle error under chaos replay: {e}")
            }
        }
    }
    let duration_s = start.elapsed().as_secs_f64();

    recovery_ms.sort_by(|a, b| a.total_cmp(b));
    let recovered = recovery_ms.len() as u64;
    let mttr_ms = if recovery_ms.is_empty() {
        0.0
    } else {
        recovery_ms.iter().sum::<f64>() / recovery_ms.len() as f64
    };
    let sup = server.supervisor_stats();
    let retries: u64 = server.shard_stats_all().iter().map(|s| s.retries).sum();
    // Sessions 0..scenes cover every scene once (round-robin routing).
    let breaker_trips: u64 = (0..scenes.len())
        .map(|i| server.scene_breaker(sessions[i]).trips())
        .sum();
    let shard_restarts: u64 = server.shard_health().iter().map(|h| h.restarts).sum();
    let inst = server.instance().to_string();
    let frames_requeued = server
        .telemetry_snapshot()
        .counter_with("serve_requeued_frames_total", &[("instance", &inst)]);

    // Reconcile telemetry against the handle-observed outcomes (the
    // warm-up frames all rendered). With an unresolved handle the run
    // is already broken and the counters can never settle — skip
    // straight to a failed verdict.
    let telemetry_ok = if unresolved == 0 {
        telemetry_gate(
            &server,
            &ServeTruth {
                submitted: scenes.len() as u64 + plan.len() as u64,
                rendered: completed + scenes.len() as u64,
                failed,
                timed_out,
                shed: shed + shed_circuit,
                degraded: None,
            },
        )
    } else {
        eprintln!("TELEMETRY_RECONCILE: FAIL — skipped, {unresolved} unresolved handle(s)");
        false
    };

    let drill = breaker_drill(&scenes[0], intrinsics, strategy, plan[0].pose);
    ChaosOutcome {
        spec,
        fraction,
        duration_s,
        submitted: plan.len(),
        completed,
        failed,
        shed,
        timed_out,
        shed_circuit,
        unresolved,
        late_ok,
        recovered,
        mttr_ms,
        recovery_p99_ms: percentile(&recovery_ms, 0.99),
        watchdog_timeouts_interactive: sup.timed_out_interactive,
        watchdog_timeouts_best_effort: sup.timed_out_best_effort,
        retries,
        breaker_trips,
        injected_kills,
        injected_wedges,
        shard_restarts,
        frames_requeued,
        telemetry_ok,
        drill,
    }
}

fn chaos_json(o: &ChaosOutcome) -> String {
    format!(
        "{{\n  \"seed\": {},\n  \"seed_env\": \"{SEED_ENV}\",\n  \
         \"threads\": {},\n  \
         \"sessions\": {},\n  \"frames_per_session\": {},\n  \
         \"scenes\": {},\n  \"rate_hz_per_session\": {:.2},\n  \
         \"chaos_fraction\": {},\n  \
         \"interactive_budget_ms\": {},\n  \"best_effort_budget_ms\": {},\n  \
         \"duration_s\": {:.2},\n  \
         \"submitted\": {},\n  \"completed\": {},\n  \"failed\": {},\n  \
         \"shed\": {},\n  \"timed_out\": {},\n  \"shed_circuit\": {},\n  \
         \"unresolved\": {},\n  \"late_ok\": {},\n  \
         \"recovered\": {},\n  \"mttr_ms\": {:.2},\n  \"recovery_p99_ms\": {:.2},\n  \
         \"watchdog_timeouts_interactive\": {},\n  \
         \"watchdog_timeouts_best_effort\": {},\n  \
         \"retries\": {},\n  \"breaker_trips\": {},\n  \
         \"injected_shard_kills\": {},\n  \"injected_shard_wedges\": {},\n  \
         \"shard_restarts\": {},\n  \"frames_requeued\": {},\n  \
         \"drill_frames_to_trip\": {},\n  \"drill_shed_while_open\": {},\n  \
         \"drill_reclosed\": {},\n  \"drill_trips\": {}\n}}\n",
        o.spec.seed,
        gen_nerf_parallel::num_threads(),
        o.spec.sessions,
        o.spec.frames_per_session,
        o.spec.scenes,
        o.spec.rate_hz,
        o.fraction,
        CHAOS_INTERACTIVE_BUDGET.as_millis(),
        CHAOS_BEST_EFFORT_BUDGET.as_millis(),
        o.duration_s,
        o.submitted,
        o.completed,
        o.failed,
        o.shed,
        o.timed_out,
        o.shed_circuit,
        o.unresolved,
        o.late_ok,
        o.recovered,
        o.mttr_ms,
        o.recovery_p99_ms,
        o.watchdog_timeouts_interactive,
        o.watchdog_timeouts_best_effort,
        o.retries,
        o.breaker_trips,
        o.injected_kills,
        o.injected_wedges,
        o.shard_restarts,
        o.frames_requeued,
        o.drill.frames_to_trip,
        o.drill.shed_while_open,
        o.drill.reclosed,
        o.drill.trips,
    )
}

fn run_chaos_mode(test_mode: bool, seed: u64) {
    // Injected faults unwind through catch_unwind on the shard; the
    // default hook would still spray a backtrace per injection. Keep
    // the log readable — real panics pass through untouched.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected render fault"));
        if !injected {
            default_hook(info);
        }
    }));
    let out_path =
        std::env::var("GEN_NERF_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    // Modest open-loop pressure: the chaos run probes recovery, not
    // saturation — queue waits must stay far below the tight budgets
    // so every timeout is an *injected* one.
    let (n_scenes, sessions, frames_per_session, rate_hz, fraction) = if test_mode {
        (2, 6, 5, 6.0, 0.35)
    } else {
        (3, 24, 8, 4.0, 0.25)
    };
    println!("preparing {n_scenes} scenes at 12x12 ...");
    let scenes = build_scenes(n_scenes, 12);
    let spec = LoadSpec {
        sessions,
        frames_per_session,
        rate_hz,
        best_effort_fraction: 0.25,
        scenes: n_scenes,
        seed,
    };
    println!(
        "chaos replay: {sessions} sessions x {frames_per_session} frames at {rate_hz:.1} Hz, \
         fault fraction {fraction} (seed {seed}) ..."
    );
    let o = run_chaos(spec, fraction, &scenes);
    println!(
        "  submitted {}: ok {} (late {}), failed {}, timed out {}, shed {}, circuit {}, \
         unresolved {}",
        o.submitted,
        o.completed,
        o.late_ok,
        o.failed,
        o.timed_out,
        o.shed,
        o.shed_circuit,
        o.unresolved,
    );
    println!(
        "  recovered {} transient frames, MTTR {:.1} ms (p99 {:.1} ms); {} retries, \
         {} watchdog timeouts (INT {} / BE {}), {} breaker trips",
        o.recovered,
        o.mttr_ms,
        o.recovery_p99_ms,
        o.retries,
        o.watchdog_timeouts_interactive + o.watchdog_timeouts_best_effort,
        o.watchdog_timeouts_interactive,
        o.watchdog_timeouts_best_effort,
        o.breaker_trips,
    );
    println!(
        "  shard lifecycle: injected {} kills / {} wedges, {} restarts, {} frames requeued",
        o.injected_kills, o.injected_wedges, o.shard_restarts, o.frames_requeued,
    );
    println!(
        "  drill: tripped after {} failures, shed {} while open, reclosed: {}",
        o.drill.frames_to_trip, o.drill.shed_while_open, o.drill.reclosed,
    );
    let json = chaos_json(&o);
    std::fs::write(&out_path, &json).expect("write chaos report");
    println!("{json}");
    println!("wrote {out_path}");

    // The self-healing drill shares the chaos flag (and seed): the
    // replay above spread seeded kills/wedges through live load; the
    // drill isolates each lifecycle case for exact measurement and
    // writes BENCH_heal.json (plus the SERVE_HEAL_GATE in test mode).
    run_heal_mode(test_mode, seed);

    if test_mode {
        // CI gate: every handle resolves, and nothing that succeeded
        // did so past its class budget (+ watchdog grace).
        let mut fail = false;
        if o.unresolved > 0 {
            eprintln!(
                "SERVE_CHAOS_GATE: FAIL — {} handle(s) never resolved",
                o.unresolved
            );
            fail = true;
        }
        if o.late_ok > 0 {
            eprintln!(
                "SERVE_CHAOS_GATE: FAIL — {} frame(s) completed past their class budget",
                o.late_ok
            );
            fail = true;
        }
        if !o.drill.reclosed {
            eprintln!("SERVE_CHAOS_GATE: FAIL — breaker did not close after cooldown probes");
            fail = true;
        }
        if !o.telemetry_ok {
            eprintln!(
                "SERVE_CHAOS_GATE: FAIL — telemetry did not reconcile with harness ground \
                 truth (see TELEMETRY_RECONCILE lines above)"
            );
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
        println!(
            "SERVE_CHAOS_GATE: OK — all {} handles resolved within budget under chaos",
            o.submitted
        );
    }
}

// ---------------------------------------------------------------------------
// Heal drill (runs with `--chaos`): the self-healing layer measured one
// deterministic case at a time — shard kill (detection latency, restart
// MTTR, bitwise-identical requeue), shard wedge (heartbeat detection),
// graceful drain, and the global memory governor — into BENCH_heal.json.
// The open-loop chaos replay above injects the *seeded* kills/wedges;
// this drill is where the hard numbers (and the CI gate) come from,
// because each case starts from a quiet server and one known fault.
// ---------------------------------------------------------------------------

/// Drill-local health policy: a tight heartbeat budget so detection
/// latency is measurable in milliseconds, a fast sweep, and a small
/// restart backoff.
const HEAL_HEARTBEAT_BUDGET: Duration = Duration::from_millis(250);
const HEAL_SWEEP_INTERVAL: Duration = Duration::from_millis(20);
const HEAL_RESTART_BACKOFF: Duration = Duration::from_millis(20);
/// The drill's wedge stall: comfortably past the heartbeat budget (so
/// the sweep must condemn on staleness) and comfortably under the
/// default supervision budgets (so the wedged frame completes after
/// requeue instead of timing out).
const HEAL_WEDGE_STALL: Duration = Duration::from_millis(600);
/// Detection gate: heartbeat budget + sweep cadence + generous
/// scheduling slack for a loaded single-core CI box.
const HEAL_DETECT_GATE: Duration = Duration::from_millis(1500);
/// Recovery gate: submit of the faulted frame → its requeued render
/// completes (includes detection, backoff, respawn, and the render).
const HEAL_MTTR_GATE: Duration = Duration::from_millis(5000);

fn heal_health() -> HealthConfig {
    HealthConfig::default()
        .with_heartbeat_budget(HEAL_HEARTBEAT_BUDGET)
        .with_sweep_interval(HEAL_SWEEP_INTERVAL)
        .with_restart_backoff(HEAL_RESTART_BACKOFF, Duration::from_millis(200))
}

/// Pixel equality down to the bit — the requeue pin's contract is
/// "bitwise what a never-killed server renders", not "close".
fn image_bits(frame: &FrameResult) -> Vec<u32> {
    frame.image.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Total shard condemnations, folded from the server's registry — the
/// detection signal (a condemn is the sweep *noticing*; the restart
/// counter moves only after the backoff).
fn condemned_total(server: &RenderServer) -> u64 {
    let inst = server.instance().to_string();
    server
        .telemetry_snapshot()
        .counter_with("serve_shard_condemned_total", &[("instance", &inst)])
}

fn requeued_total(server: &RenderServer) -> u64 {
    let inst = server.instance().to_string();
    server
        .telemetry_snapshot()
        .counter_with("serve_requeued_frames_total", &[("instance", &inst)])
}

/// Polls the condemned counter until it reaches `target`; returns the
/// elapsed milliseconds since `t0` (NaN on a 30 s blowout).
fn await_condemn(server: &RenderServer, target: u64, t0: Instant) -> f64 {
    loop {
        if condemned_total(server) >= target {
            return t0.elapsed().as_secs_f64() * 1e3;
        }
        if t0.elapsed() > Duration::from_secs(30) {
            return f64::NAN;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The heal drill's aggregate outcome.
struct HealOutcome {
    seed: u64,
    kill_detection_ms: f64,
    kill_mttr_ms: f64,
    kill_frames_lost: u64,
    kill_bitwise_ok: bool,
    kill_restarts: u64,
    kill_requeued: u64,
    wedge_detection_ms: f64,
    wedge_mttr_ms: f64,
    wedge_frames_lost: u64,
    wedge_bitwise_ok: bool,
    drain_complete: bool,
    drain_forced: u64,
    drain_waited_ms: f64,
    drain_rejects_after: bool,
    drain_frames_lost: u64,
    governor_budget_bytes: u64,
    governor_peak_bytes: u64,
    governor_evictions: u64,
    governor_refused: u64,
    governor_pressure_sheds: u64,
    governor_shed_observed: bool,
}

fn run_heal_drill(seed: u64) -> HealOutcome {
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let intrinsics = Intrinsics::from_fov(12, 12, 0.55);
    println!("heal drill: preparing scene ...");
    let scenes = build_scenes(1, 12);
    let scene = &scenes[0];
    let drill_session = |server: &RenderServer| {
        server.create_session(Arc::clone(scene), SessionConfig::new(intrinsics, strategy))
    };
    // Deterministic pose set shared by every case and by the clean
    // reference server (one session's trajectory from the load seed).
    let plan = load_plan(&LoadSpec {
        sessions: 1,
        frames_per_session: 24,
        rate_hz: 1000.0,
        best_effort_fraction: 0.0,
        scenes: 1,
        seed,
    });
    let poses: Vec<_> = plan.iter().map(|a| a.pose).collect();

    // Clean reference renders: the bitwise pin every healed frame is
    // compared against (a server that never sees a fault).
    let reference: Vec<Vec<u32>> = {
        let server = RenderServer::new(ServerConfig::default().with_max_shards(1));
        let session = drill_session(&server);
        poses[..8]
            .iter()
            .map(|p| image_bits(&server.submit(session, FrameRequest::new(*p)).wait()))
            .collect()
    };

    // --- Case 1: shard kill -------------------------------------------------
    // The scheduler thread dies mid-frame with work queued behind it.
    // The sweep must classify Dead, restart, and requeue — and every
    // frame (the killed one included) must render bitwise identical to
    // the clean server.
    println!("heal drill: shard kill ...");
    let (
        kill_detection_ms,
        kill_mttr_ms,
        kill_frames_lost,
        kill_bitwise_ok,
        kill_restarts,
        kill_requeued,
    ) = {
        let server = RenderServer::new(
            ServerConfig::default()
                .with_max_shards(1)
                .with_health(heal_health()),
        );
        let session = drill_session(&server);
        // Warm the shard (pool spawn, first render) out of the timing.
        let warm = server.submit(session, FrameRequest::new(poses[0])).wait();
        let mut bitwise_ok = image_bits(&warm) == reference[0];
        let t0 = Instant::now();
        let mut handles = vec![server.submit(
            session,
            FrameRequest::new(poses[1]).with_fault(Fault::KillShard),
        )];
        for p in &poses[2..8] {
            handles.push(server.submit(session, FrameRequest::new(*p)));
        }
        let detection_ms = await_condemn(&server, 1, t0);
        let mut frames_lost = 0u64;
        let mut mttr_ms = f64::NAN;
        for (i, h) in handles.into_iter().enumerate() {
            match h.wait_timeout(Duration::from_secs(30)) {
                Some(Ok(frame)) => {
                    if i == 0 {
                        mttr_ms = t0.elapsed().as_secs_f64() * 1e3;
                    }
                    if image_bits(&frame) != reference[i + 1] {
                        bitwise_ok = false;
                    }
                }
                _ => frames_lost += 1,
            }
        }
        let restarts: u64 = server.shard_health().iter().map(|h| h.restarts).sum();
        let requeued = requeued_total(&server);
        (
            detection_ms,
            mttr_ms,
            frames_lost,
            bitwise_ok,
            restarts,
            requeued,
        )
    };

    // --- Case 2: shard wedge ------------------------------------------------
    // The scheduler thread stalls without beating: the heartbeat goes
    // stale past the budget, the sweep condemns Wedged, and a fresh
    // incarnation takes over the queue. The stalled frame is requeued
    // once the old incarnation unwedges and must render clean.
    println!("heal drill: shard wedge ...");
    let (wedge_detection_ms, wedge_mttr_ms, wedge_frames_lost, wedge_bitwise_ok) = {
        let server = RenderServer::new(
            ServerConfig::default()
                .with_max_shards(1)
                .with_health(heal_health()),
        );
        let session = drill_session(&server);
        let warm = server.submit(session, FrameRequest::new(poses[0])).wait();
        let mut bitwise_ok = image_bits(&warm) == reference[0];
        let t0 = Instant::now();
        let mut handles = vec![server.submit(
            session,
            FrameRequest::new(poses[1]).with_fault(Fault::WedgeShard(HEAL_WEDGE_STALL)),
        )];
        for p in &poses[2..4] {
            handles.push(server.submit(session, FrameRequest::new(*p)));
        }
        let detection_ms = await_condemn(&server, 1, t0);
        let mut frames_lost = 0u64;
        let mut mttr_ms = f64::NAN;
        for (i, h) in handles.into_iter().enumerate() {
            match h.wait_timeout(Duration::from_secs(30)) {
                Some(Ok(frame)) => {
                    if i == 0 {
                        mttr_ms = t0.elapsed().as_secs_f64() * 1e3;
                    }
                    if image_bits(&frame) != reference[i + 1] {
                        bitwise_ok = false;
                    }
                }
                _ => frames_lost += 1,
            }
        }
        (detection_ms, mttr_ms, frames_lost, bitwise_ok)
    };

    // --- Case 3: graceful drain ---------------------------------------------
    // Queued work finishes, every handle resolves before drain returns,
    // and the server rejects new work with `Draining` afterwards.
    println!("heal drill: graceful drain ...");
    let (drain_complete, drain_forced, drain_waited_ms, drain_rejects_after, drain_frames_lost) = {
        let server = RenderServer::new(ServerConfig::default().with_max_shards(1));
        let session = drill_session(&server);
        server.submit(session, FrameRequest::new(poses[0])).wait();
        let handles: Vec<_> = poses[1..6]
            .iter()
            .map(|p| server.submit(session, FrameRequest::new(*p)))
            .collect();
        let report = server.drain(Duration::from_secs(30));
        // drain() returning means every queued frame was fulfilled —
        // a zero-wait probe must find each handle already resolved.
        let mut lost = 0u64;
        for h in handles {
            match h.wait_timeout(Duration::from_millis(1)) {
                Some(Ok(_)) => {}
                _ => lost += 1,
            }
        }
        let rejects = matches!(
            server
                .submit(session, FrameRequest::new(poses[0]))
                .wait_result(),
            Err(ServeError::Draining)
        );
        let waited_ms = report
            .outcomes
            .iter()
            .map(|o| o.waited.as_secs_f64() * 1e3)
            .fold(0.0, f64::max);
        (
            report.complete(),
            report.forced_total(),
            waited_ms,
            rejects,
            lost,
        )
    };

    // --- Case 4: memory governor --------------------------------------------
    // A budget with only a sliver of headroom past the worker-arena
    // reservation: anchor inserts contend with the global budget from
    // the first frame, and the arena alone crosses the pressure
    // watermark, so BestEffort must shed at admission. The hard pin is
    // `peak <= budget` — charge-before-insert means the budget is never
    // exceeded even transiently.
    println!("heal drill: memory governor ...");
    let (
        governor_budget_bytes,
        governor_peak_bytes,
        governor_evictions,
        governor_refused,
        governor_pressure_sheds,
        governor_shed_observed,
    ) = {
        let arena = gen_nerf_parallel::num_threads().max(1) as u64 * (1 << 20);
        let budget = arena + 32 * 1024;
        let server = RenderServer::new(
            ServerConfig::default()
                .with_max_shards(1)
                .with_governor(GovernorConfig::default().with_budget_bytes(budget)),
        );
        let session = server.create_session(
            Arc::clone(scene),
            SessionConfig::new(intrinsics, strategy)
                // Tiny coherence bounds: every distinct pose re-anchors,
                // so each frame tries a fresh insert against the budget.
                .with_coherence(CoherenceConfig::within(1e-6, 1e-6)),
        );
        for pose in &poses {
            server.submit(session, FrameRequest::new(*pose)).wait();
        }
        let shed = server
            .submit(
                session,
                FrameRequest::new(poses[0]).with_deadline(DeadlineClass::BestEffort),
            )
            .wait_result();
        let shed_observed = matches!(shed, Err(ServeError::Shed { .. }));
        let g = server.governor_stats();
        (
            g.budget_bytes,
            g.peak_bytes,
            g.evictions,
            g.refused_inserts,
            g.pressure_sheds,
            shed_observed,
        )
    };

    HealOutcome {
        seed,
        kill_detection_ms,
        kill_mttr_ms,
        kill_frames_lost,
        kill_bitwise_ok,
        kill_restarts,
        kill_requeued,
        wedge_detection_ms,
        wedge_mttr_ms,
        wedge_frames_lost,
        wedge_bitwise_ok,
        drain_complete,
        drain_forced,
        drain_waited_ms,
        drain_rejects_after,
        drain_frames_lost,
        governor_budget_bytes,
        governor_peak_bytes,
        governor_evictions,
        governor_refused,
        governor_pressure_sheds,
        governor_shed_observed,
    }
}

fn heal_json(o: &HealOutcome) -> String {
    format!(
        "{{\n  \"seed\": {},\n  \"seed_env\": \"{SEED_ENV}\",\n  \
         \"threads\": {},\n  \
         \"heartbeat_budget_ms\": {},\n  \"sweep_interval_ms\": {},\n  \
         \"restart_backoff_ms\": {},\n  \"wedge_stall_ms\": {},\n  \
         \"kill_detection_ms\": {:.2},\n  \"kill_mttr_ms\": {:.2},\n  \
         \"kill_frames_lost\": {},\n  \"kill_bitwise_ok\": {},\n  \
         \"kill_restarts\": {},\n  \"kill_requeued\": {},\n  \
         \"wedge_detection_ms\": {:.2},\n  \"wedge_mttr_ms\": {:.2},\n  \
         \"wedge_frames_lost\": {},\n  \"wedge_bitwise_ok\": {},\n  \
         \"drain_complete\": {},\n  \"drain_forced\": {},\n  \
         \"drain_waited_ms\": {:.2},\n  \"drain_rejects_after\": {},\n  \
         \"drain_frames_lost\": {},\n  \
         \"governor_budget_bytes\": {},\n  \"governor_peak_bytes\": {},\n  \
         \"governor_evictions\": {},\n  \"governor_refused_inserts\": {},\n  \
         \"governor_pressure_sheds\": {},\n  \"governor_shed_observed\": {}\n}}\n",
        o.seed,
        gen_nerf_parallel::num_threads(),
        HEAL_HEARTBEAT_BUDGET.as_millis(),
        HEAL_SWEEP_INTERVAL.as_millis(),
        HEAL_RESTART_BACKOFF.as_millis(),
        HEAL_WEDGE_STALL.as_millis(),
        o.kill_detection_ms,
        o.kill_mttr_ms,
        o.kill_frames_lost,
        o.kill_bitwise_ok,
        o.kill_restarts,
        o.kill_requeued,
        o.wedge_detection_ms,
        o.wedge_mttr_ms,
        o.wedge_frames_lost,
        o.wedge_bitwise_ok,
        o.drain_complete,
        o.drain_forced,
        o.drain_waited_ms,
        o.drain_rejects_after,
        o.drain_frames_lost,
        o.governor_budget_bytes,
        o.governor_peak_bytes,
        o.governor_evictions,
        o.governor_refused,
        o.governor_pressure_sheds,
        o.governor_shed_observed,
    )
}

fn run_heal_mode(test_mode: bool, seed: u64) {
    let out_path =
        std::env::var("GEN_NERF_HEAL_OUT").unwrap_or_else(|_| "BENCH_heal.json".to_string());
    let o = run_heal_drill(seed);
    println!(
        "  kill: detected {:.1} ms, MTTR {:.1} ms, lost {}, bitwise {}, restarts {}, requeued {}",
        o.kill_detection_ms,
        o.kill_mttr_ms,
        o.kill_frames_lost,
        o.kill_bitwise_ok,
        o.kill_restarts,
        o.kill_requeued,
    );
    println!(
        "  wedge: detected {:.1} ms, MTTR {:.1} ms, lost {}, bitwise {}",
        o.wedge_detection_ms, o.wedge_mttr_ms, o.wedge_frames_lost, o.wedge_bitwise_ok,
    );
    println!(
        "  drain: complete {}, forced {}, waited {:.1} ms, rejects after {}, lost {}",
        o.drain_complete,
        o.drain_forced,
        o.drain_waited_ms,
        o.drain_rejects_after,
        o.drain_frames_lost,
    );
    println!(
        "  governor: peak {} / budget {} bytes, {} evictions, {} refused, \
         {} pressure sheds (observed: {})",
        o.governor_peak_bytes,
        o.governor_budget_bytes,
        o.governor_evictions,
        o.governor_refused,
        o.governor_pressure_sheds,
        o.governor_shed_observed,
    );
    let json = heal_json(&o);
    std::fs::write(&out_path, &json).expect("write heal report");
    println!("{json}");
    println!("wrote {out_path}");

    if test_mode {
        let mut fail = false;
        let detect_gate_ms = HEAL_DETECT_GATE.as_secs_f64() * 1e3;
        let mttr_gate_ms = HEAL_MTTR_GATE.as_secs_f64() * 1e3;
        let mut gate = |ok: bool, msg: String| {
            if !ok {
                eprintln!("SERVE_HEAL_GATE: FAIL — {msg}");
                fail = true;
            }
        };
        gate(
            o.kill_detection_ms.is_finite() && o.kill_detection_ms <= detect_gate_ms,
            format!(
                "shard kill detected in {:.1} ms (gate {detect_gate_ms:.0} ms)",
                o.kill_detection_ms
            ),
        );
        gate(
            o.wedge_detection_ms.is_finite() && o.wedge_detection_ms <= detect_gate_ms,
            format!(
                "shard wedge detected in {:.1} ms (gate {detect_gate_ms:.0} ms)",
                o.wedge_detection_ms
            ),
        );
        gate(
            o.kill_mttr_ms.is_finite() && o.kill_mttr_ms <= mttr_gate_ms,
            format!(
                "kill MTTR {:.1} ms (gate {mttr_gate_ms:.0} ms)",
                o.kill_mttr_ms
            ),
        );
        gate(
            o.wedge_mttr_ms.is_finite() && o.wedge_mttr_ms <= mttr_gate_ms,
            format!(
                "wedge MTTR {:.1} ms (gate {mttr_gate_ms:.0} ms)",
                o.wedge_mttr_ms
            ),
        );
        gate(
            o.kill_frames_lost + o.wedge_frames_lost + o.drain_frames_lost == 0,
            format!(
                "frames lost: kill {}, wedge {}, drain {}",
                o.kill_frames_lost, o.wedge_frames_lost, o.drain_frames_lost
            ),
        );
        gate(
            o.kill_bitwise_ok && o.wedge_bitwise_ok,
            "healed frames not bitwise identical to clean renders".to_string(),
        );
        gate(
            o.kill_restarts >= 1 && o.kill_requeued >= 1,
            format!(
                "kill case: {} restarts, {} requeued (expected >= 1 each)",
                o.kill_restarts, o.kill_requeued
            ),
        );
        gate(
            o.drain_complete && o.drain_forced == 0 && o.drain_rejects_after,
            format!(
                "drain: complete {}, forced {}, rejects after {}",
                o.drain_complete, o.drain_forced, o.drain_rejects_after
            ),
        );
        gate(
            o.governor_peak_bytes <= o.governor_budget_bytes && o.governor_shed_observed,
            format!(
                "governor: peak {} vs budget {}, pressure shed observed {}",
                o.governor_peak_bytes, o.governor_budget_bytes, o.governor_shed_observed
            ),
        );
        if fail {
            std::process::exit(1);
        }
        println!(
            "SERVE_HEAL_GATE: OK — kill detected {:.0} ms / MTTR {:.0} ms, wedge detected \
             {:.0} ms, 0 frames lost, requeued renders bitwise clean, drain complete, \
             governor peak within budget",
            o.kill_detection_ms, o.kill_mttr_ms, o.wedge_detection_ms,
        );
    }
}

// ---------------------------------------------------------------------------
// Integrity-chaos mode (`--corrupt`): deterministic *silent*-corruption
// replay. Where `--chaos` injects loud failures (panics, stalls) that the
// supervision layer must survive, `--corrupt` plants quiet ones — a
// perturbed GEMM cell, a poisoned pixel, a bit-flipped cache anchor —
// that the output-integrity machinery must catch before a client sees a
// wrong pixel. Records detection rate, clean-run false positives,
// quarantine events and checking overhead into `BENCH_integrity.json`.
// ---------------------------------------------------------------------------

/// One integrity run's aggregate outcome.
struct IntegrityOutcome {
    seed: u64,
    mode: IntegrityMode,
    initial_backend: Backend,
    /// Closed-burst wall-clock per checking mode (min over reps).
    off_s: f64,
    sample_s: f64,
    full_s: f64,
    /// Checking overhead vs the off burst: median over reps of the
    /// *paired* per-rep ratio, each checked burst ratioed against the
    /// mean of the off bursts bracketing its rep. Pairing within a
    /// rep cancels frequency/thermal drift (which `min(mode)/min(off)`
    /// amplifies — the off minimum comes from the cold early reps,
    /// handicapping the later checked bursts), and the median
    /// discards one-off scheduling spikes in either direction.
    overhead_sample_pct: f64,
    overhead_full_pct: f64,
    /// Frames rendered across the clean (no-fault) checked bursts.
    clean_frames: u64,
    /// Corrupt-render detections during those clean bursts — any one
    /// is a false positive.
    false_positives: u64,
    submitted: usize,
    injected_gemm: u64,
    injected_pixels: u64,
    injected_anchor: u64,
    /// Render attempts the integrity machinery failed (GEMM checksum
    /// or sentinel) during the corruption replay.
    detected: u64,
    /// Fired render corruptions (GEMM + pixel) minus detections — the
    /// hard gate; must be zero.
    undetected: u64,
    /// Poisoned anchors rejected at cache import (counted misses).
    anchor_rejects: u64,
    /// Completed frames containing a non-finite pixel — corruption
    /// that escaped to a client; must be zero.
    nonfinite_published: u64,
    quarantine_events: u64,
    final_backend: Backend,
    completed: u64,
    failed: u64,
    retries: u64,
    cache_hits: u64,
}

/// A closed burst of clean frames under `mode`, returning (wall-clock
/// seconds, frames rendered, corrupt-render detections). Detections on
/// a clean burst are false positives by definition.
fn integrity_burst(
    scenes: &[Arc<SceneState>],
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    burst: usize,
    mode: IntegrityMode,
) -> (f64, u64, u64) {
    integrity::set_mode(mode);
    let server = make_server(scenes, AdmissionConfig::with_capacity(burst + 1));
    let sessions = create_sessions(&server, scenes, scenes.len() * 2, intrinsics, strategy);
    let plan = load_plan(&LoadSpec {
        sessions: sessions.len(),
        frames_per_session: burst.div_ceil(sessions.len()),
        rate_hz: 1.0,
        best_effort_fraction: 0.0,
        scenes: scenes.len(),
        seed: 17,
    });
    // Warm the shard pools before timing.
    server
        .submit(sessions[0], FrameRequest::new(plan[0].pose))
        .wait();
    let t0 = Instant::now();
    let handles: Vec<_> = plan
        .iter()
        .take(burst)
        .map(|a| server.submit(sessions[a.session], FrameRequest::new(a.pose)))
        .collect();
    let n = handles.len() as u64;
    for h in handles {
        h.wait();
    }
    let secs = t0.elapsed().as_secs_f64();
    let detections: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.corrupt_renders)
        .sum();
    (secs, n + 1, detections)
}

/// The corruption replay: the request plan served **closed-loop** (one
/// frame in flight at a time). The chaos hooks that plant a GEMM
/// perturbation or a pixel poison are process-global single slots, so
/// serving open-loop could overwrite one armed fault with the next
/// before a render consumes it — closed-loop keeps injection counting
/// exact, which the 100%-detection gate needs.
#[allow(clippy::type_complexity)]
fn run_corrupt_replay(
    spec: LoadSpec,
    fraction: f64,
    scenes: &[Arc<SceneState>],
) -> IntegrityOutcome {
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let intrinsics = Intrinsics::from_fov(12, 12, 0.55);
    let mode = integrity::mode();
    let initial_backend = kernels::active_backend();

    // Overhead and false-positive measurement first, on clean bursts,
    // *before* any injection can quarantine the SIMD backend (a
    // demotion mid-measurement would skew the ratios).
    // Floor well above the test-mode plan size: sub-50ms bursts put
    // the overhead ratio at the mercy of scheduler jitter.
    let burst = (spec.sessions * spec.frames_per_session).clamp(48, 64);
    // Each burst is only tens of milliseconds at test scale, so the
    // off/full ratio must not be decided by one unlucky scheduling
    // quantum: every rep brackets the checked bursts with an off burst
    // on both sides (cancelling frequency/thermal drift) and the gate
    // uses the median rep.
    let reps = 7;
    let (mut off_s, mut sample_s, mut full_s) = (f64::MAX, f64::MAX, f64::MAX);
    let mut sample_ratios = Vec::with_capacity(reps);
    let mut full_ratios = Vec::with_capacity(reps);
    let mut clean_frames = 0u64;
    let mut false_positives = 0u64;
    println!("measuring checking overhead ({reps} reps x {burst}-frame bursts) ...");
    for _ in 0..reps {
        let (t_off_a, _, _) =
            integrity_burst(scenes, intrinsics, strategy, burst, IntegrityMode::Off);
        let (t_sample, n, fp) =
            integrity_burst(scenes, intrinsics, strategy, burst, IntegrityMode::Sample);
        sample_s = sample_s.min(t_sample);
        clean_frames += n;
        false_positives += fp;
        let (t_full, n, fp) =
            integrity_burst(scenes, intrinsics, strategy, burst, IntegrityMode::Full);
        full_s = full_s.min(t_full);
        clean_frames += n;
        false_positives += fp;
        let (t_off_b, _, _) =
            integrity_burst(scenes, intrinsics, strategy, burst, IntegrityMode::Off);
        let t_off = (t_off_a + t_off_b) / 2.0;
        off_s = off_s.min(t_off_a.min(t_off_b));
        sample_ratios.push(t_sample / t_off);
        full_ratios.push(t_full / t_off);
    }
    integrity::set_mode(mode);
    let median_pct = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (ratios[ratios.len() / 2] - 1.0) * 100.0
    };
    let overhead_sample_pct = median_pct(&mut sample_ratios);
    let overhead_full_pct = median_pct(&mut full_ratios);

    let server = RenderServer::new(
        ServerConfig::default()
            .with_max_shards(scenes.len())
            .with_admission(AdmissionConfig::with_capacity(256)),
    );
    // Coherence on, with generous bounds: the trajectories' small
    // steps stay coherent, so anchors are retained and the
    // anchor-corruption faults have something to flip.
    let sessions: Vec<SessionId> = (0..spec.sessions)
        .map(|s| {
            server.create_session(
                Arc::clone(&scenes[s % scenes.len()]),
                SessionConfig::new(intrinsics, strategy)
                    .with_coherence(CoherenceConfig::within(0.4, 0.1)),
            )
        })
        .collect();
    let plan = load_plan(&spec);
    let faults = corruption_plan(
        &ChaosSpec {
            fraction,
            seed: spec.seed,
        },
        plan.len(),
    );
    let injected_gemm = faults
        .iter()
        .filter(|f| matches!(f, Some((CorruptionFault::Gemm, _))))
        .count() as u64;
    let injected_pixels = faults
        .iter()
        .filter(|f| matches!(f, Some((CorruptionFault::Pixels, _))))
        .count() as u64;
    let injected_anchor = faults
        .iter()
        .filter(|f| matches!(f, Some((CorruptionFault::Anchor, _))))
        .count() as u64;

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut nonfinite_published = 0u64;
    for (arrival, fault) in plan.iter().zip(&faults) {
        let mut req = FrameRequest::new(arrival.pose).with_deadline(arrival.deadline);
        if let Some((kind, fault_seed)) = fault {
            req = req.with_fault(match kind {
                CorruptionFault::Gemm => Fault::CorruptGemm(*fault_seed),
                CorruptionFault::Pixels => Fault::CorruptPixels(*fault_seed),
                CorruptionFault::Anchor => Fault::CorruptAnchor(*fault_seed),
            });
        }
        match server
            .submit(sessions[arrival.session], req)
            .wait_timeout(Duration::from_secs(60))
        {
            Some(Ok(frame)) => {
                completed += 1;
                if !frame.image.as_slice().iter().all(|v| v.is_finite()) {
                    nonfinite_published += 1;
                }
            }
            _ => failed += 1,
        }
    }

    let detected: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.corrupt_renders)
        .sum();
    let quarantine_events: u64 = server
        .shard_stats_all()
        .iter()
        .map(|s| s.quarantine_events)
        .sum();
    let retries: u64 = server.shard_stats_all().iter().map(|s| s.retries).sum();
    let mut anchor_rejects = 0u64;
    let mut cache_hits = 0u64;
    for &session in &sessions {
        let c = server.cache_stats(session);
        anchor_rejects += c.integrity_rejects;
        cache_hits += c.hits;
    }
    IntegrityOutcome {
        seed: spec.seed,
        mode,
        initial_backend,
        off_s,
        sample_s,
        full_s,
        overhead_sample_pct,
        overhead_full_pct,
        clean_frames,
        false_positives,
        submitted: plan.len(),
        injected_gemm,
        injected_pixels,
        injected_anchor,
        detected,
        undetected: (injected_gemm + injected_pixels).saturating_sub(detected),
        anchor_rejects,
        nonfinite_published,
        quarantine_events,
        final_backend: kernels::active_backend(),
        completed,
        failed,
        retries,
        cache_hits,
    }
}

fn integrity_json(
    o: &IntegrityOutcome,
    overhead_sample_pct: f64,
    overhead_full_pct: f64,
) -> String {
    format!(
        "{{\n  \"seed\": {},\n  \"seed_env\": \"{SEED_ENV}\",\n  \
         \"threads\": {},\n  \
         \"integrity_mode\": \"{}\",\n  \
         \"backend_initial\": \"{:?}\",\n  \"backend_final\": \"{:?}\",\n  \
         \"burst_off_s\": {:.3},\n  \"burst_sample_s\": {:.3},\n  \"burst_full_s\": {:.3},\n  \
         \"overhead_sample_pct\": {:.2},\n  \"overhead_full_pct\": {:.2},\n  \
         \"clean_frames\": {},\n  \"false_positives\": {},\n  \
         \"submitted\": {},\n  \"completed\": {},\n  \"failed\": {},\n  \
         \"injected_gemm\": {},\n  \"injected_pixels\": {},\n  \"injected_anchor\": {},\n  \
         \"detected\": {},\n  \"undetected\": {},\n  \
         \"anchor_rejects\": {},\n  \"nonfinite_published\": {},\n  \
         \"quarantine_events\": {},\n  \"retries\": {},\n  \"cache_hits\": {}\n}}\n",
        o.seed,
        gen_nerf_parallel::num_threads(),
        o.mode.name(),
        o.initial_backend,
        o.final_backend,
        o.off_s,
        o.sample_s,
        o.full_s,
        overhead_sample_pct,
        overhead_full_pct,
        o.clean_frames,
        o.false_positives,
        o.submitted,
        o.completed,
        o.failed,
        o.injected_gemm,
        o.injected_pixels,
        o.injected_anchor,
        o.detected,
        o.undetected,
        o.anchor_rejects,
        o.nonfinite_published,
        o.quarantine_events,
        o.retries,
        o.cache_hits,
    )
}

fn run_corrupt_mode(test_mode: bool, seed: u64) {
    // Honor an explicit GEN_NERF_INTEGRITY; default the replay to full
    // checking so every injection is checkable.
    if std::env::var("GEN_NERF_INTEGRITY").is_err() {
        integrity::set_mode(IntegrityMode::Full);
    }
    let out_path = std::env::var("GEN_NERF_INTEGRITY_OUT")
        .unwrap_or_else(|_| "BENCH_integrity.json".to_string());
    let (n_scenes, sessions, frames_per_session, fraction) = if test_mode {
        (2, 4, 6, 0.4)
    } else {
        (3, 12, 10, 0.3)
    };
    println!("preparing {n_scenes} scenes at 12x12 ...");
    let scenes = build_scenes(n_scenes, 12);
    let spec = LoadSpec {
        sessions,
        frames_per_session,
        // Closed-loop replay: arrival times are unused, only the pose
        // trajectories and deadline classes matter.
        rate_hz: 1000.0,
        best_effort_fraction: 0.25,
        scenes: n_scenes,
        seed,
    };
    println!(
        "corruption replay: {sessions} sessions x {frames_per_session} frames, \
         corruption fraction {fraction} (seed {seed}, mode {}) ...",
        integrity::mode().name()
    );
    let o = run_corrupt_replay(spec, fraction, &scenes);
    let overhead_sample_pct = o.overhead_sample_pct;
    let overhead_full_pct = o.overhead_full_pct;
    println!(
        "  submitted {}: ok {}, failed {}; injected {} gemm / {} pixel / {} anchor",
        o.submitted, o.completed, o.failed, o.injected_gemm, o.injected_pixels, o.injected_anchor,
    );
    println!(
        "  detected {} corrupt renders ({} undetected), {} anchor rejects, \
         {} non-finite published, {} retries",
        o.detected, o.undetected, o.anchor_rejects, o.nonfinite_published, o.retries,
    );
    println!(
        "  quarantine events {}, backend {:?} -> {:?}",
        o.quarantine_events, o.initial_backend, o.final_backend,
    );
    println!(
        "  overhead: sample {overhead_sample_pct:+.1}% / full {overhead_full_pct:+.1}% \
         (clean bursts: {} frames, {} false positives)",
        o.clean_frames, o.false_positives,
    );
    let json = integrity_json(&o, overhead_sample_pct, overhead_full_pct);
    std::fs::write(&out_path, &json).expect("write integrity report");
    println!("{json}");
    println!("wrote {out_path}");

    if test_mode {
        let mut fail = false;
        if o.undetected > 0 {
            eprintln!(
                "SERVE_INTEGRITY_GATE: FAIL — {} injected corruption(s) went undetected",
                o.undetected
            );
            fail = true;
        }
        if o.nonfinite_published > 0 {
            eprintln!(
                "SERVE_INTEGRITY_GATE: FAIL — {} corrupt frame(s) reached a client",
                o.nonfinite_published
            );
            fail = true;
        }
        if o.false_positives > 0 {
            eprintln!(
                "SERVE_INTEGRITY_GATE: FAIL — {} false positive(s) on clean runs",
                o.false_positives
            );
            fail = true;
        }
        if overhead_full_pct >= 15.0 {
            eprintln!(
                "SERVE_INTEGRITY_GATE: FAIL — full checking overhead \
                 {overhead_full_pct:.1}% >= 15%"
            );
            fail = true;
        }
        if overhead_sample_pct >= 5.0 {
            eprintln!(
                "SERVE_INTEGRITY_GATE: FAIL — sampled checking overhead \
                 {overhead_sample_pct:.1}% >= 5%"
            );
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
        println!(
            "SERVE_INTEGRITY_GATE: OK — {}/{} injected corruptions detected, \
             0 false positives, overhead sample {overhead_sample_pct:.1}% / \
             full {overhead_full_pct:.1}%",
            o.detected,
            o.injected_gemm + o.injected_pixels,
        );
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let chaos_mode = std::env::args().any(|a| a == "--chaos");
    let corrupt_mode = std::env::args().any(|a| a == "--corrupt");
    let seed = seed_from_env(42);
    if chaos_mode {
        run_chaos_mode(test_mode, seed);
    }
    if corrupt_mode {
        run_corrupt_mode(test_mode, seed);
    }
    if chaos_mode || corrupt_mode {
        telemetry_out::write_telemetry_artifacts();
        return;
    }
    let out_path =
        std::env::var("GEN_NERF_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());

    // Fixed constants, NOT calibrated against measured throughput at
    // run time: calibration would make the request schedule depend on
    // the host and break run-to-run schedule determinism.
    let (res, n_scenes, scenarios): (u32, usize, Vec<(usize, usize, f64)>) = if test_mode {
        // Smoke: a workload far below any plausible saturation point,
        // so the Interactive-shed gate below is meaningful.
        (12, 2, vec![(6, 3, 4.0)])
    } else {
        // (sessions, frames/session, per-session Hz): ~300 offered fps
        // at 100 sessions, overload at 1,000 and deep overload at
        // 5,000 — the shed/degrade story at scale.
        (16, 3, vec![(100, 12, 3.0), (1000, 6, 1.0), (5000, 3, 0.8)])
    };
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let intrinsics = Intrinsics::from_fov(res, res, 0.55);
    let admission = AdmissionConfig::with_capacity(if test_mode { 64 } else { 256 });
    let best_effort_fraction = 0.25;

    println!("preparing {n_scenes} scenes at {res}x{res} ...");
    let scenes = build_scenes(n_scenes, res as usize);
    println!("measuring saturation throughput (closed burst) ...");
    let burst = if test_mode { 24 } else { 240 };
    let saturation_fps = measure_saturation(&scenes, intrinsics, strategy, burst);
    println!("saturation: {saturation_fps:.1} frames/sec");

    let mut outcomes = Vec::new();
    for &(sessions, frames_per_session, rate_hz) in &scenarios {
        let spec = LoadSpec {
            sessions,
            frames_per_session,
            rate_hz,
            best_effort_fraction,
            scenes: n_scenes,
            seed,
        };
        println!(
            "open-loop: {sessions} sessions x {frames_per_session} frames at {rate_hz:.2} Hz \
             (offered {:.0} fps) ...",
            sessions as f64 * rate_hz
        );
        let o = run_scenario(
            spec,
            &scenes,
            intrinsics,
            strategy,
            admission,
            saturation_fps,
        );
        println!(
            "  completed {} / {} (degraded {}, shed BE {}, shed INT {}), \
             interactive p50 {:.1} ms p99 {:.1} ms p999 {:.1} ms",
            o.completed,
            spec.sessions * spec.frames_per_session,
            o.degraded,
            o.shed_best_effort,
            o.shed_interactive,
            o.p50_ms,
            o.p99_ms,
            o.p999_ms,
        );
        outcomes.push(o);
    }

    let rows: Vec<String> = outcomes.iter().map(outcome_json).collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"seed_env\": \"{SEED_ENV}\",\n  \
         \"threads\": {},\n  \"resolution\": {res},\n  \
         \"best_effort_fraction\": {best_effort_fraction},\n  \
         \"queue_capacity\": {},\n  \"interactive_capacity\": {},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        gen_nerf_parallel::num_threads(),
        admission.queue_capacity,
        admission.interactive_capacity,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write scale report");
    println!("{json}");
    println!("wrote {out_path}");
    telemetry_out::write_telemetry_artifacts();

    // CI gates: below the saturation point, admission control must
    // never shed an Interactive frame — and the telemetry snapshot
    // must have reconciled exactly with the harness ground truth.
    let shed_interactive: u64 = outcomes.iter().map(|o| o.shed_interactive).sum();
    if test_mode && !outcomes.iter().all(|o| o.telemetry_ok) {
        eprintln!(
            "SERVE_LOAD_GATE: FAIL — telemetry did not reconcile with harness ground truth \
             (see TELEMETRY_RECONCILE lines above)"
        );
        std::process::exit(1);
    }
    if test_mode {
        let offered: f64 = outcomes
            .iter()
            .map(|o| o.spec.sessions as f64 * o.spec.rate_hz)
            .fold(0.0, f64::max);
        assert!(
            offered < saturation_fps,
            "smoke workload is not below saturation ({offered:.0} >= \
             {saturation_fps:.0} fps); the shed gate would be vacuous"
        );
        if shed_interactive > 0 {
            eprintln!(
                "SERVE_LOAD_GATE: FAIL — {shed_interactive} Interactive frame(s) shed below \
                 the saturation point"
            );
            std::process::exit(1);
        }
        println!("SERVE_LOAD_GATE: OK — no Interactive frames shed below saturation");
    }
}
