//! Thousand-session scale harness for the sharded serve tier.
//!
//! Drives a [`RenderServer`] with **open-loop Poisson arrivals** from
//! [`gen_nerf_bench::loadgen`]: per-session pose trajectories and
//! request times are drawn up front from a fixed seed ([`SEED_ENV`]
//! overridable), so two runs replay the identical request schedule —
//! the arrival process does not slow down when the server saturates,
//! which is what exposes the admission-control behaviour (BestEffort
//! sheds first, Interactive degrades to the quarter tier before the
//! hard bound sheds it too).
//!
//! Each scenario records per-class completion counts, shed/degrade
//! counters, Interactive latency percentiles (p50/p99/p999) and the
//! configuration's saturation throughput (a closed burst through a
//! shed-free server) into `BENCH_scale.json` (current directory, or
//! the path in `GEN_NERF_SCALE_OUT`).
//!
//! `--test` runs a miniature below-saturation workload — the CI smoke
//! mode — and **exits non-zero if any Interactive frame was shed**,
//! the admission-control regression gate.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf_bench::loadgen::{load_plan, seed_from_env, Arrival, LoadSpec, SEED_ENV};
use gen_nerf_geometry::Intrinsics;
use gen_nerf_scene::{Dataset, DatasetKind};
use gen_nerf_serve::{
    AdmissionConfig, DeadlineClass, FrameRequest, RenderServer, SceneState, ServeError,
    ServerConfig, SessionConfig, SessionId,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// One scenario's outcome row.
struct Outcome {
    spec: LoadSpec,
    duration_s: f64,
    completed: u64,
    completed_interactive: u64,
    degraded: u64,
    shed_best_effort: u64,
    shed_interactive: u64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    saturation_fps: f64,
}

fn build_scenes(n: usize, res: usize) -> Vec<Arc<SceneState>> {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 4, 1, res, 5);
    (0..n)
        .map(|_| {
            let model = GenNerfModel::new(ModelConfig::fast());
            Arc::new(SceneState::prepare(
                model,
                &ds.source_views,
                ds.scene.bounds,
                ds.scene.background,
            ))
        })
        .collect()
}

fn make_server(scenes: &[Arc<SceneState>], admission: AdmissionConfig) -> RenderServer {
    RenderServer::new(
        ServerConfig::default()
            .with_max_shards(scenes.len())
            .with_admission(admission),
    )
}

fn create_sessions(
    server: &RenderServer,
    scenes: &[Arc<SceneState>],
    n: usize,
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
) -> Vec<SessionId> {
    (0..n)
        .map(|s| {
            server.create_session(
                Arc::clone(&scenes[s % scenes.len()]),
                SessionConfig::new(intrinsics, strategy),
            )
        })
        .collect()
}

/// Saturation throughput of this scene/shard/thread configuration: a
/// closed burst through a server whose admission bounds are far above
/// the burst size, so nothing sheds and the shards run flat out.
fn measure_saturation(
    scenes: &[Arc<SceneState>],
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    burst: usize,
) -> f64 {
    let server = make_server(scenes, AdmissionConfig::with_capacity(burst + 1));
    let sessions = create_sessions(&server, scenes, scenes.len() * 4, intrinsics, strategy);
    let plan = load_plan(&LoadSpec {
        sessions: sessions.len(),
        frames_per_session: burst.div_ceil(sessions.len()),
        rate_hz: 1.0,
        best_effort_fraction: 0.0,
        scenes: scenes.len(),
        seed: 17,
    });
    // Warm the shard pools before timing.
    server
        .submit(sessions[0], FrameRequest::new(plan[0].pose))
        .wait();
    let t0 = Instant::now();
    let handles: Vec<_> = plan
        .iter()
        .take(burst)
        .map(|a| server.submit(sessions[a.session], FrameRequest::new(a.pose)))
        .collect();
    let n = handles.len();
    for h in handles {
        h.wait();
    }
    n as f64 / t0.elapsed().as_secs_f64()
}

/// Replays `spec` open-loop against a fresh server and collects the
/// admission/latency outcome.
fn run_scenario(
    spec: LoadSpec,
    scenes: &[Arc<SceneState>],
    intrinsics: Intrinsics,
    strategy: SamplingStrategy,
    admission: AdmissionConfig,
    saturation_fps: f64,
) -> Outcome {
    let plan = load_plan(&spec);
    let server = make_server(scenes, admission);
    let sessions = create_sessions(&server, scenes, spec.sessions, intrinsics, strategy);
    // Warm every shard before the clock starts.
    for scene_idx in 0..scenes.len() {
        server
            .submit(sessions[scene_idx], FrameRequest::new(plan[0].pose))
            .wait();
    }

    let start = Instant::now();
    let mut handles: Vec<(DeadlineClass, _)> = Vec::with_capacity(plan.len());
    for arrival in &plan {
        let Arrival {
            at_ms,
            session,
            pose,
            deadline,
            ..
        } = *arrival;
        let target = Duration::from_secs_f64(at_ms / 1e3);
        if let Some(sleep) = target.checked_sub(start.elapsed()) {
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        let req = FrameRequest::new(pose).with_deadline(deadline);
        handles.push((deadline, server.submit(sessions[session], req)));
    }
    let mut interactive_ms: Vec<f64> = Vec::new();
    let mut completed = 0u64;
    let mut completed_interactive = 0u64;
    for (class, handle) in handles {
        match handle.wait_result() {
            Ok(frame) => {
                completed += 1;
                if class == DeadlineClass::Interactive {
                    completed_interactive += 1;
                    interactive_ms.push(frame.serve.latency.as_secs_f64() * 1e3);
                }
            }
            Err(ServeError::Shed { .. }) => {}
            Err(ServeError::Failed(msg)) => panic!("frame failed under load: {msg}"),
        }
    }
    let duration_s = start.elapsed().as_secs_f64();
    let adm = server.admission_stats();
    interactive_ms.sort_by(|a, b| a.total_cmp(b));
    Outcome {
        spec,
        duration_s,
        completed,
        completed_interactive,
        degraded: adm.degraded,
        shed_best_effort: adm.shed_best_effort,
        shed_interactive: adm.shed_interactive,
        p50_ms: percentile(&interactive_ms, 0.50),
        p99_ms: percentile(&interactive_ms, 0.99),
        p999_ms: percentile(&interactive_ms, 0.999),
        saturation_fps,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let offered = o.spec.sessions as f64 * o.spec.rate_hz;
    format!(
        "    {{\n      \"sessions\": {},\n      \
         \"frames_per_session\": {},\n      \
         \"scenes\": {},\n      \
         \"rate_hz_per_session\": {:.2},\n      \
         \"offered_fps\": {offered:.1},\n      \
         \"saturation_fps\": {:.1},\n      \
         \"duration_s\": {:.2},\n      \
         \"completed\": {},\n      \
         \"completed_interactive\": {},\n      \
         \"degraded\": {},\n      \
         \"shed_best_effort\": {},\n      \
         \"shed_interactive\": {},\n      \
         \"interactive_latency_ms_p50\": {:.2},\n      \
         \"interactive_latency_ms_p99\": {:.2},\n      \
         \"interactive_latency_ms_p999\": {:.2}\n    }}",
        o.spec.sessions,
        o.spec.frames_per_session,
        o.spec.scenes,
        o.spec.rate_hz,
        o.saturation_fps,
        o.duration_s,
        o.completed,
        o.completed_interactive,
        o.degraded,
        o.shed_best_effort,
        o.shed_interactive,
        o.p50_ms,
        o.p99_ms,
        o.p999_ms,
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let out_path =
        std::env::var("GEN_NERF_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    let seed = seed_from_env(42);

    // Fixed constants, NOT calibrated against measured throughput at
    // run time: calibration would make the request schedule depend on
    // the host and break run-to-run schedule determinism.
    let (res, n_scenes, scenarios): (u32, usize, Vec<(usize, usize, f64)>) = if test_mode {
        // Smoke: a workload far below any plausible saturation point,
        // so the Interactive-shed gate below is meaningful.
        (12, 2, vec![(6, 3, 4.0)])
    } else {
        // (sessions, frames/session, per-session Hz): ~300 offered fps
        // at 100 sessions, overload at 1,000 and deep overload at
        // 5,000 — the shed/degrade story at scale.
        (16, 3, vec![(100, 12, 3.0), (1000, 6, 1.0), (5000, 3, 0.8)])
    };
    let strategy = SamplingStrategy::coarse_then_focus(8, 8);
    let intrinsics = Intrinsics::from_fov(res, res, 0.55);
    let admission = AdmissionConfig::with_capacity(if test_mode { 64 } else { 256 });
    let best_effort_fraction = 0.25;

    println!("preparing {n_scenes} scenes at {res}x{res} ...");
    let scenes = build_scenes(n_scenes, res as usize);
    println!("measuring saturation throughput (closed burst) ...");
    let burst = if test_mode { 24 } else { 240 };
    let saturation_fps = measure_saturation(&scenes, intrinsics, strategy, burst);
    println!("saturation: {saturation_fps:.1} frames/sec");

    let mut outcomes = Vec::new();
    for &(sessions, frames_per_session, rate_hz) in &scenarios {
        let spec = LoadSpec {
            sessions,
            frames_per_session,
            rate_hz,
            best_effort_fraction,
            scenes: n_scenes,
            seed,
        };
        println!(
            "open-loop: {sessions} sessions x {frames_per_session} frames at {rate_hz:.2} Hz \
             (offered {:.0} fps) ...",
            sessions as f64 * rate_hz
        );
        let o = run_scenario(
            spec,
            &scenes,
            intrinsics,
            strategy,
            admission,
            saturation_fps,
        );
        println!(
            "  completed {} / {} (degraded {}, shed BE {}, shed INT {}), \
             interactive p50 {:.1} ms p99 {:.1} ms p999 {:.1} ms",
            o.completed,
            spec.sessions * spec.frames_per_session,
            o.degraded,
            o.shed_best_effort,
            o.shed_interactive,
            o.p50_ms,
            o.p99_ms,
            o.p999_ms,
        );
        outcomes.push(o);
    }

    let rows: Vec<String> = outcomes.iter().map(outcome_json).collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"seed_env\": \"{SEED_ENV}\",\n  \
         \"threads\": {},\n  \"resolution\": {res},\n  \
         \"best_effort_fraction\": {best_effort_fraction},\n  \
         \"queue_capacity\": {},\n  \"interactive_capacity\": {},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        gen_nerf_parallel::num_threads(),
        admission.queue_capacity,
        admission.interactive_capacity,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write scale report");
    println!("{json}");
    println!("wrote {out_path}");

    // CI gate: below the saturation point, admission control must
    // never shed an Interactive frame.
    let shed_interactive: u64 = outcomes.iter().map(|o| o.shed_interactive).sum();
    if test_mode {
        let offered: f64 = outcomes
            .iter()
            .map(|o| o.spec.sessions as f64 * o.spec.rate_hz)
            .fold(0.0, f64::max);
        assert!(
            offered < saturation_fps,
            "smoke workload is not below saturation ({offered:.0} >= \
             {saturation_fps:.0} fps); the shed gate would be vacuous"
        );
        if shed_interactive > 0 {
            eprintln!(
                "SERVE_LOAD_GATE: FAIL — {shed_interactive} Interactive frame(s) shed below \
                 the saturation point"
            );
            std::process::exit(1);
        }
        println!("SERVE_LOAD_GATE: OK — no Interactive frames shed below saturation");
    }
}
