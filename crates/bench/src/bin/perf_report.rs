//! Perf trajectory for the fused cross-ray inference path and the
//! SIMD kernel backends.
//!
//! Measures, on the current host:
//!
//! * **chunk inference rays/sec** on identical pre-aggregated chunks:
//!   1. the **seed baseline** — a faithful replica of the pre-fusion
//!      per-ray path (naive zero-skip GEMM, mixer padded to `N_max`,
//!      one 3-layer blend MLP call per point) — the stable origin of
//!      the trajectory,
//!   2. the **per-ray reference** ([`GenNerfModel::forward_ray`] loop)
//!      on the best backend — retained for bit-exactness pinning,
//!   3. the **fused path** ([`GenNerfModel::forward_rays`]), measured
//!      **per kernel backend** (scalar vs the detected SIMD backend);
//! * **end-to-end frame rays/sec** — `Renderer` fused per backend plus
//!   the per-ray reference (all include feature acquisition),
//! * **dense matmul and INT8 GEMM GFLOP/s per backend**,
//! * **allocations per frame** on each path, via a counting global
//!   allocator,
//! * **feature-acquisition throughput**: the seed per-point
//!   `aggregate_point` loop vs the zero-allocation SoA
//!   `aggregate_points_into` arena fill, in points/sec and acquire
//!   GFLOP/s, plus allocations per acquisition pass.
//!
//! Writes `BENCH_simd.json` (in the current directory, or to the path
//! in `GEN_NERF_PERF_OUT`) and `BENCH_arena.json` (or
//! `GEN_NERF_ARENA_OUT`) so successive PRs can track the trajectory,
//! and prints the backend it selected (recorded by the CI step).
//!
//! `--test` runs a miniature timing workload — the CI smoke mode (CI
//! runs it on both `GEN_NERF_KERNEL` legs). In **every** mode the
//! fused render's allocations/frame are measured on the full frame
//! workload and checked against [`ALLOC_CEILING`]; exceeding it exits
//! non-zero, failing CI — the arena win cannot silently rot. The same
//! workload also times the fused render with the global telemetry
//! switch off vs on and fails if the observability cost exceeds
//! [`TELEMETRY_OVERHEAD_CEILING_PCT`] (the `TELEMETRY_OVERHEAD_GATE`
//! line CI greps for).

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::{
    aggregate_point, aggregate_points_into, prepare_sources, AggregateArena, AggregateView,
    PointAggregate,
};
use gen_nerf::model::{density_from_logit, GenNerfModel, RayModule};
use gen_nerf::pipeline::Renderer;
use gen_nerf_geometry::Vec3;
use gen_nerf_nn::flops;
use gen_nerf_nn::kernels::{self, Backend};
use gen_nerf_nn::layers::Linear;
use gen_nerf_nn::quant::QuantTensor;
use gen_nerf_nn::Tensor2;
use gen_nerf_scene::{Dataset, DatasetKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation (the "allocations per frame" metric).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Ceiling on fused-schedule allocations per frame (the `perf_report`
/// frame workload, single-threaded); shared with
/// `tests/arena_regression.rs`. Exceeding it makes this binary — and
/// therefore CI — fail.
const ALLOC_CEILING: u64 = gen_nerf::pipeline::STEADY_STATE_ALLOC_CEILING;

/// Ceiling on the fused render's telemetry cost: the wall-clock delta
/// between rendering with the global telemetry switch off and on.
/// Stage timers and histogram observations are a handful of relaxed
/// atomics per chunk, so anything past a few percent means
/// instrumentation crept onto a per-point path.
const TELEMETRY_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Times `f` over `reps` repetitions, returning seconds per repetition
/// (best of five batches after one warm-up batch, to shrug off
/// scheduler noise on small shared hosts).
fn time_per_rep(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

// ---- Seed-baseline replica -------------------------------------------
//
// The pre-fusion renderer, reconstructed faithfully: the seed's dense
// kernel (`harness::seed_matmul_zero_skip`), the mixer padded to
// `N_max`, and one 3-layer blend MLP invocation per point. This is the
// per-ray path the fused schedule replaced; keeping it runnable pins
// the perf trajectory to a stable origin.

fn seed_linear(x: &Tensor2, l: &Linear) -> Tensor2 {
    gen_nerf_bench::harness::seed_matmul_zero_skip(x, &l.w.value).add_row_broadcast(&l.b.value)
}

fn seed_mlp3(x: &Tensor2, (l1, l2, l3): (&Linear, &Linear, &Linear)) -> Tensor2 {
    let h1 = seed_linear(x, l1).map(|v| v.max(0.0));
    let h2 = seed_linear(&h1, l2).map(|v| v.max(0.0));
    seed_linear(&h2, l3)
}

fn seed_forward_ray(model: &GenNerfModel, aggs: &[PointAggregate]) -> (Vec<f32>, Vec<Vec3>) {
    let n = aggs.len();
    let d_sigma = model.config.d_sigma;
    let x = Tensor2::from_fn(n, model.config.point_input_dim(), |r, c| aggs[r].stats[c]);
    let y = seed_mlp3(&x, model.point_mlp.layers());
    let f_sigma = Tensor2::from_fn(n, d_sigma, |r, c| y[(r, c)]);
    let logits = match &model.ray_module {
        RayModule::Mixer(mixer) => {
            // Seed convention: pad every ray to N_max before mixing.
            let nm = mixer.n_points();
            let padded = if n == nm {
                f_sigma.clone()
            } else {
                Tensor2::vstack(&[f_sigma.clone(), Tensor2::zeros(nm - n, d_sigma)])
            };
            let (token_fc, channel_fc, proj) = mixer.layers();
            let ht = seed_linear(&padded.transpose(), token_fc).map(|v| v.max(0.0));
            let f = &ht.transpose() + &padded;
            let c = seed_linear(&f, channel_fc).map(|v| v.max(0.0));
            seed_linear(&(&f + &c), proj).slice_rows(0, n)
        }
        // Non-default modules: fall back to the modern reference.
        _ => model.ray_module.forward_inference(&f_sigma),
    };
    let mut densities = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for (k, agg) in aggs.iter().enumerate() {
        if agg.n_valid == 0 {
            densities.push(0.0);
            colors.push(Vec3::ZERO);
            continue;
        }
        densities.push(density_from_logit(logits[(k, 0)]));
        // One blend-MLP invocation per point — the allocation pattern
        // the fused path hoists to chunk level.
        let valid_idx: Vec<usize> = (0..agg.valid.len()).filter(|&i| agg.valid[i]).collect();
        let input = Tensor2::from_fn(valid_idx.len(), 2, |r, c| agg.blend_inputs[valid_idx[r]][c]);
        let blend_logits = seed_mlp3(&input, model.blend.layers());
        let max = (0..valid_idx.len())
            .map(|r| blend_logits[(r, 0)])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut weights: Vec<f32> = (0..valid_idx.len())
            .map(|r| (blend_logits[(r, 0)] - max).exp())
            .collect();
        let total: f32 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= total);
        let mut blended = Vec3::ZERO;
        for (w, &i) in weights.iter().zip(&valid_idx) {
            blended += agg.view_colors[i] * *w;
        }
        let resid = Vec3::new(
            0.1 * y[(k, d_sigma)].tanh(),
            0.1 * y[(k, d_sigma + 1)].tanh(),
            0.1 * y[(k, d_sigma + 2)].tanh(),
        );
        colors.push((blended + resid).clamp(0.0, 1.0));
    }
    (densities, colors)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let out_path =
        std::env::var("GEN_NERF_PERF_OUT").unwrap_or_else(|_| "BENCH_simd.json".to_string());
    let arena_out_path =
        std::env::var("GEN_NERF_ARENA_OUT").unwrap_or_else(|_| "BENCH_arena.json".to_string());

    // The two backends to compare: the bit-exact scalar reference and
    // the "best" leg — `GEN_NERF_KERNEL` when set (so the CI scalar
    // smoke genuinely exercises the scalar acquisition/alloc path),
    // otherwise the best backend this host supports (identical when no
    // SIMD is available). The startup selection is reported so CI can
    // record what actually ran.
    let startup_backend = kernels::active_backend();
    let simd_backend = Backend::from_env();
    println!(
        "kernel backend: startup={} detected={}",
        startup_backend.name(),
        simd_backend.name()
    );

    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 6, 1, 32, 7);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let d_feat = model.config.d_features;

    // ---- Chunk inference: fused vs per-ray on identical inputs. ----
    let cam = &ds.eval_views[0].camera;
    let (w, h) = (cam.intrinsics.width, cam.intrinsics.height);
    let (n_rays, pts) = (128usize, 16usize);
    let mut sample_pts: Vec<Vec<Vec3>> = Vec::with_capacity(n_rays);
    let mut sample_dirs: Vec<Vec<Vec3>> = Vec::with_capacity(n_rays);
    let mut px = 0u32;
    while sample_pts.len() < n_rays {
        let ray = cam.pixel_center_ray(px % w, (px / w) % h);
        px += 1;
        let Some((t0, t1)) = ds.scene.bounds.intersect_ray(&ray) else {
            continue;
        };
        let depths = gen_nerf_geometry::Ray::uniform_depths(t0, t1, pts);
        sample_pts.push(depths.iter().map(|&t| ray.at(t)).collect());
        sample_dirs.push(vec![ray.direction; depths.len()]);
    }
    let rays: Vec<Vec<PointAggregate>> = sample_pts
        .iter()
        .zip(&sample_dirs)
        .map(|(ps, dirs)| {
            ps.iter()
                .zip(dirs)
                .map(|(&p, &dir)| aggregate_point(p, dir, &sources, d_feat))
                .collect()
        })
        .collect();
    let refs: Vec<&[PointAggregate]> = rays.iter().map(|r| r.as_slice()).collect();

    // Sanity, per backend: fused and per-ray paths agree bit-for-bit
    // under the *same* backend (the kernel contract), and the seed
    // baseline agrees within tolerance (it computes the same function
    // modulo the dynamic (unpadded) mixer inference and scalar
    // rounding).
    for backend in [Backend::Scalar, simd_backend] {
        kernels::set_active(backend);
        let fused_out = model.forward_rays(&refs);
        for (r, out) in refs.iter().zip(&fused_out) {
            assert_eq!(
                &model.forward_ray(r),
                out,
                "fused/per-ray divergence under {}; refusing to report",
                backend.name()
            );
        }
        for (r, out) in refs.iter().zip(&fused_out) {
            let (densities, _) = seed_forward_ray(&model, r);
            for (a, b) in densities.iter().zip(&out.densities) {
                assert!(
                    (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                    "seed baseline diverged under {}: {a} vs {b}",
                    backend.name()
                );
            }
        }
    }

    let reps = if test_mode { 1 } else { 8 };
    // Seed baseline replica on the scalar backend — the faithful
    // origin of the trajectory.
    kernels::set_active(Backend::Scalar);
    let t_baseline = time_per_rep(reps, || {
        for r in &refs {
            std::hint::black_box(seed_forward_ray(&model, r));
        }
    });
    let t_fused_scalar = time_per_rep(reps, || {
        std::hint::black_box(model.forward_rays(&refs));
    });
    // Best backend: fused plus the per-ray reference.
    kernels::set_active(simd_backend);
    let t_per_ray = time_per_rep(reps, || {
        for r in &refs {
            std::hint::black_box(model.forward_ray(r));
        }
    });
    let t_fused_simd = time_per_rep(reps, || {
        std::hint::black_box(model.forward_rays(&refs));
    });
    let rays_sec_baseline = n_rays as f64 / t_baseline;
    let rays_sec_fused_scalar = n_rays as f64 / t_fused_scalar;
    let rays_sec_per_ray = n_rays as f64 / t_per_ray;
    let rays_sec_fused_simd = n_rays as f64 / t_fused_simd;
    let speedup_vs_seed = rays_sec_fused_simd / rays_sec_baseline;
    let speedup_vs_scalar_fused = rays_sec_fused_simd / rays_sec_fused_scalar;

    // ---- End-to-end frame: fused schedule per backend + the per-ray
    // reference (all include feature acquisition). ----
    let strategy = SamplingStrategy::Uniform { n: 12 };
    let frame = |fused: bool| {
        Renderer::new(
            &model,
            &sources,
            strategy,
            ds.scene.bounds,
            ds.scene.background,
        )
        .with_fused(fused)
        .render(&ds.eval_views[0].camera)
    };
    let frame_reps = if test_mode { 1 } else { 2 };
    let frame_rays = (w as u64 * h as u64) as f64;
    kernels::set_active(Backend::Scalar);
    let t_frame_fused_scalar = time_per_rep(frame_reps, || {
        std::hint::black_box(frame(true));
    });
    kernels::set_active(simd_backend);
    let t_frame_per_ray = time_per_rep(frame_reps, || {
        std::hint::black_box(frame(false));
    });
    let t_frame_fused_simd = time_per_rep(frame_reps, || {
        std::hint::black_box(frame(true));
    });
    let frame_rays_per_sec_per_ray = frame_rays / t_frame_per_ray;
    let frame_rays_per_sec_fused_scalar = frame_rays / t_frame_fused_scalar;
    let frame_rays_per_sec_fused_simd = frame_rays / t_frame_fused_simd;

    // ---- Telemetry overhead on the fused render: stage timers and
    // histogram observations honor the global enable switch, so the
    // cost of observability is the off-vs-on delta on the identical
    // frame workload. Off and on batches are interleaved and each
    // adjacent pair ratioed, with the gate on the median pair —
    // back-to-back pairing cancels the frequency/thermal drift that
    // would otherwise dwarf a percent-level delta (the gate below
    // holds it under TELEMETRY_OVERHEAD_CEILING_PCT). ----
    let telemetry_reps = if test_mode { 12 } else { 4 };
    let time_batch = |reps: usize, f: &dyn Fn()| {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    // Single-threaded, like the allocation measurement below: worker
    // fan-out scheduling noise would swamp a percent-level delta.
    let run_frame = || {
        std::hint::black_box(
            Renderer::new(
                &model,
                &sources,
                strategy,
                ds.scene.bounds,
                ds.scene.background,
            )
            .with_fused(true)
            .with_threads(1)
            .render(&ds.eval_views[0].camera),
        );
    };
    let mut pair_ratios = Vec::new();
    let (mut t_frame_telemetry_off, mut t_frame_telemetry_on) = (f64::MAX, f64::MAX);
    run_frame(); // warm-up
    for pair in 0..7 {
        // Alternate which leg runs first: within-run clock decay would
        // otherwise systematically penalize whichever leg always came
        // second in its pair.
        let (t_off, t_on) = if pair % 2 == 0 {
            gen_nerf_telemetry::set_enabled(false);
            let t_off = time_batch(telemetry_reps, &run_frame);
            gen_nerf_telemetry::set_enabled(true);
            (t_off, time_batch(telemetry_reps, &run_frame))
        } else {
            gen_nerf_telemetry::set_enabled(true);
            let t_on = time_batch(telemetry_reps, &run_frame);
            gen_nerf_telemetry::set_enabled(false);
            (time_batch(telemetry_reps, &run_frame), t_on)
        };
        gen_nerf_telemetry::set_enabled(true);
        t_frame_telemetry_off = t_frame_telemetry_off.min(t_off);
        t_frame_telemetry_on = t_frame_telemetry_on.min(t_on);
        pair_ratios.push(t_on / t_off);
    }
    pair_ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Gate on the lower quartile of the paired ratios: a real
    // regression (instrumentation on a per-point path) shifts every
    // pair by tens of percent, while host noise mostly fattens the
    // upper tail — the low quantile keeps full sensitivity to the
    // former without flaking on the latter.
    let telemetry_overhead_pct = (pair_ratios[pair_ratios.len() / 4] - 1.0) * 100.0;

    // ---- Allocations per frame (single-threaded so worker-thread
    // bookkeeping doesn't blur the count; backend-independent). The
    // fused path is warmed first so the count is the steady state a
    // serving loop sees, not the arena's one-time growth. ----
    let frame_1t = |fused: bool| {
        Renderer::new(
            &model,
            &sources,
            strategy,
            ds.scene.bounds,
            ds.scene.background,
        )
        .with_fused(fused)
        .with_threads(1)
        .render(&ds.eval_views[0].camera)
    };
    let a0 = allocations();
    std::hint::black_box(frame_1t(false));
    let allocs_per_ray_path = allocations() - a0;
    std::hint::black_box(frame_1t(true)); // grow the worker scratch once
    let a1 = allocations();
    std::hint::black_box(frame_1t(true));
    let allocs_fused_path = allocations() - a1;

    // ---- Feature acquisition: seed per-point loop vs the SoA arena
    // fill, on the chunk workload's exact sample set. ----
    let acq_reps = if test_mode { 1 } else { 8 };
    let mut arena = AggregateArena::default();
    let fill_arena = |arena: &mut AggregateArena| {
        arena.reset(sources.len(), d_feat);
        for (ps, dirs) in sample_pts.iter().zip(&sample_dirs) {
            aggregate_points_into(ps, dirs, &sources, d_feat, arena);
        }
    };
    fill_arena(&mut arena);
    let total_points: usize = arena.total_points();
    // Acquire FLOPs of one pass: 4-tap bilinear fetches over the valid
    // (point, view) pairs — the same accounting the renderer reports.
    let acquire_flops: u64 = (0..total_points)
        .map(|k| arena.n_valid(k) as u64 * flops::bilinear_fetch(1, d_feat))
        .sum();
    let t_acq_arena = time_per_rep(acq_reps, || {
        fill_arena(&mut arena);
        std::hint::black_box(arena.total_points());
    });
    let t_acq_seed = time_per_rep(acq_reps, || {
        for (ps, dirs) in sample_pts.iter().zip(&sample_dirs) {
            for (&p, &dir) in ps.iter().zip(dirs) {
                std::hint::black_box(aggregate_point(p, dir, &sources, d_feat));
            }
        }
    });
    let acq_pts_sec_arena = total_points as f64 / t_acq_arena;
    let acq_pts_sec_seed = total_points as f64 / t_acq_seed;
    let acq_gflops_arena = acquire_flops as f64 / t_acq_arena / 1e9;
    // Allocations of one steady-state pass per layout.
    let b0 = allocations();
    fill_arena(&mut arena);
    let acq_allocs_arena = allocations() - b0;
    let b1 = allocations();
    for (ps, dirs) in sample_pts.iter().zip(&sample_dirs) {
        for (&p, &dir) in ps.iter().zip(dirs) {
            std::hint::black_box(aggregate_point(p, dir, &sources, d_feat));
        }
    }
    let acq_allocs_seed = allocations() - b1;

    // ---- Dense GEMM and INT8 GEMM throughput per backend. ----
    let (m, k, n) = (128usize, 128usize, 128usize);
    let a = Tensor2::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.11).sin());
    let b = Tensor2::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.05).cos());
    let qa = QuantTensor::quantize(&a);
    let qb = QuantTensor::quantize(&b);
    let gemm_flops = 2.0 * m as f64 * k as f64 * n as f64;
    let mut matmul_gflops = [0.0f64; 2];
    let mut int8_gops = [0.0f64; 2];
    for (slot, backend) in [Backend::Scalar, simd_backend].into_iter().enumerate() {
        kernels::set_active(backend);
        let t_mm = time_per_rep(20, || {
            std::hint::black_box(a.matmul(&b));
        });
        matmul_gflops[slot] = gemm_flops / t_mm / 1e9;
        let t_q = time_per_rep(20, || {
            std::hint::black_box(qa.matmul(&qb));
        });
        int8_gops[slot] = gemm_flops / t_q / 1e9;
    }
    kernels::set_active(startup_backend);

    let json = format!(
        "{{\n  \"backend_detected\": \"{}\",\n  \
         \"chunk\": {{\"rays\": {n_rays}, \"points_per_ray\": {pts}}},\n  \
         \"inference_rays_per_sec_seed_baseline\": {rays_sec_baseline:.1},\n  \
         \"inference_rays_per_sec_fused_scalar\": {rays_sec_fused_scalar:.1},\n  \
         \"inference_rays_per_sec_per_ray_simd\": {rays_sec_per_ray:.1},\n  \
         \"inference_rays_per_sec_fused_simd\": {rays_sec_fused_simd:.1},\n  \
         \"inference_speedup_vs_seed_baseline\": {speedup_vs_seed:.2},\n  \
         \"inference_speedup_vs_fused_scalar\": {speedup_vs_scalar_fused:.2},\n  \
         \"frame_rays_per_sec_per_ray_simd\": {frame_rays_per_sec_per_ray:.1},\n  \
         \"frame_rays_per_sec_fused_scalar\": {frame_rays_per_sec_fused_scalar:.1},\n  \
         \"frame_rays_per_sec_fused_simd\": {frame_rays_per_sec_fused_simd:.1},\n  \
         \"frame_speedup_simd_vs_scalar\": {:.2},\n  \
         \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2},\n  \
         \"allocations_per_frame_per_ray\": {allocs_per_ray_path},\n  \
         \"allocations_per_frame_fused\": {allocs_fused_path},\n  \
         \"matmul_gflops_128_scalar\": {:.2},\n  \
         \"matmul_gflops_128_simd\": {:.2},\n  \
         \"int8_gemm_gops_128_scalar\": {:.2},\n  \
         \"int8_gemm_gops_128_simd\": {:.2}\n}}\n",
        simd_backend.name(),
        frame_rays_per_sec_fused_simd / frame_rays_per_sec_fused_scalar,
        matmul_gflops[0],
        matmul_gflops[1],
        int8_gops[0],
        int8_gops[1],
    );
    std::fs::write(&out_path, &json).expect("write perf report");
    println!("{json}");
    println!("wrote {out_path}");

    // ---- BENCH_arena.json: the acquisition trajectory + the alloc
    // ceiling this binary enforces. ----
    let acq_speedup = acq_pts_sec_arena / acq_pts_sec_seed;
    let arena_json = format!(
        "{{\n  \"backend_detected\": \"{}\",\n  \
         \"test_mode\": {test_mode},\n  \
         \"acquisition\": {{\"rays\": {n_rays}, \"points_per_ray\": {pts}, \
         \"views\": {}, \"d_channels\": {d_feat}}},\n  \
         \"acquire_points_per_sec_seed\": {acq_pts_sec_seed:.1},\n  \
         \"acquire_points_per_sec_arena\": {acq_pts_sec_arena:.1},\n  \
         \"acquire_speedup_vs_seed\": {acq_speedup:.2},\n  \
         \"acquire_gflops_arena\": {acq_gflops_arena:.3},\n  \
         \"acquire_allocs_per_pass_seed\": {acq_allocs_seed},\n  \
         \"acquire_allocs_per_pass_arena\": {acq_allocs_arena},\n  \
         \"inference_rays_per_sec_fused_simd\": {rays_sec_fused_simd:.1},\n  \
         \"allocations_per_frame_per_ray\": {allocs_per_ray_path},\n  \
         \"allocations_per_frame_fused\": {allocs_fused_path},\n  \
         \"allocations_per_frame_ceiling\": {ALLOC_CEILING}\n}}\n",
        simd_backend.name(),
        sources.len(),
    );
    std::fs::write(&arena_out_path, &arena_json).expect("write arena report");
    println!("{arena_json}");
    println!("wrote {arena_out_path}");

    if allocs_fused_path > ALLOC_CEILING {
        eprintln!(
            "FAIL: fused render performed {allocs_fused_path} allocations/frame \
             (ceiling {ALLOC_CEILING}) — the arena acquisition path has regressed"
        );
        std::process::exit(1);
    }

    // ---- Telemetry overhead gate: observability must stay ~free on
    // the render hot path. ----
    if telemetry_overhead_pct > TELEMETRY_OVERHEAD_CEILING_PCT {
        eprintln!(
            "TELEMETRY_OVERHEAD_GATE: FAIL — fused render telemetry overhead \
             {telemetry_overhead_pct:+.2}% > {TELEMETRY_OVERHEAD_CEILING_PCT}% \
             ({}): instrumentation has crept onto the hot path",
            simd_backend.name()
        );
        std::process::exit(1);
    }
    println!(
        "TELEMETRY_OVERHEAD_GATE: OK — fused render telemetry overhead \
         {telemetry_overhead_pct:+.2}% (ceiling {TELEMETRY_OVERHEAD_CEILING_PCT}%, {})",
        simd_backend.name()
    );
}
