//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::tab01`.

fn main() {
    gen_nerf_bench::experiments::tab01::run();
}
