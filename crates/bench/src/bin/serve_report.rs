//! Serving-layer throughput report: N-session AR walkthrough through
//! `gen-nerf-serve` versus N independent `Renderer::render` loops.
//!
//! The workload reuses the `ar_walkthrough` trajectory shape: each of
//! `N` sessions walks a fine-grained arc around the same captured
//! scene (sessions share one `SceneState`, so their frames are
//! eligible for cross-session admission batching), submitting one
//! frame per head pose in per-step waves — the vsync cadence of a
//! headset. Completed frame buffers are recycled into the next wave's
//! requests.
//!
//! Measured, on the current host:
//!
//! * **frames/sec direct** — the same poses rendered by sequential
//!   `Renderer::render` calls (the pre-serve architecture),
//! * **frames/sec served** — through the server with the
//!   temporal-coherence cache on, plus per-frame latency percentiles,
//!   the coarse-cache hit rate, and the batch occupancy,
//! * **allocations per frame** on both paths (counting global
//!   allocator) — the serving loop's buffer recycling chips at the
//!   ROADMAP allocations/frame item,
//! * the **coarse-cache eviction counter** under a deliberately tight
//!   per-session anchor byte budget (`SessionConfig::with_cache_budget`),
//! * an **exactness check**: a cache-off served frame must be
//!   bitwise-identical to the direct render (the serve contract; the
//!   full matrix lives in `tests/serve_regression.rs`).
//!
//! Writes `BENCH_serve.json` (current directory, or the path in
//! `GEN_NERF_SERVE_OUT`). `--test` runs a miniature workload — the CI
//! smoke mode.

use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf_geometry::{Camera, Intrinsics, Pose, Vec3};
use gen_nerf_scene::{Dataset, DatasetKind, Image};
use gen_nerf_serve::{
    CoherenceConfig, FrameRequest, RenderServer, SceneState, ServerConfig, SessionConfig, SessionId,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every heap allocation (the "allocations per frame" metric).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The walkthrough pose of session `s` at step `k`: a fine-grained arc
/// around the object, each session phase-offset so the fleet spreads
/// around the scene.
fn walk_pose(session: usize, step: usize) -> Pose {
    let phi = -0.5 + session as f32 * 0.35 + step as f32 * 0.008;
    let eye = Vec3::new(4.0 * phi.cos(), 1.3, 4.0 * phi.sin());
    Pose::look_at(eye, Vec3::ZERO, Vec3::Y)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let out_path =
        std::env::var("GEN_NERF_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    let (res, n_sessions, n_steps) = if test_mode {
        (16u32, 4, 3)
    } else {
        (32u32, 4, 12)
    };
    let strategy = SamplingStrategy::coarse_then_focus(16, 12);
    // Arc step geometry: ~0.03 world units and ~0.01 rad per step, so
    // these deltas keep ~5 steps coherent with one anchor before a
    // re-probe — a realistic walkthrough hit pattern.
    let coherence = CoherenceConfig::within(0.2, 0.06);
    // A tight anchor budget (~1 coarse frame at the full-run
    // resolution) exercises the eviction path on the walkthrough; the
    // forward-moving trajectory rarely revisits old anchors, so the
    // hit rate is unaffected while the counter records the churn.
    let budget = 96 * 1024usize;

    println!("capturing scene + preparing sources (shared by all sessions) ...");
    let dataset = Dataset::build(
        DatasetKind::DeepVoxels,
        "pedestal",
        0.08,
        6,
        1,
        res as usize,
        11,
    );
    let model = GenNerfModel::new(ModelConfig::fast());
    let scene = Arc::new(SceneState::prepare(
        model,
        &dataset.source_views,
        dataset.scene.bounds,
        dataset.scene.background,
    ));
    let intrinsics = Intrinsics::from_fov(res, res, 0.55);
    let total_frames = (n_sessions * n_steps) as u64;

    // ---- Exactness: cache-off serving is bitwise direct rendering. ----
    {
        let server = RenderServer::new(ServerConfig::default());
        let session = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(intrinsics, strategy), // coherence off
        );
        let pose = walk_pose(0, 0);
        let served = server.submit(session, FrameRequest::new(pose)).wait();
        let direct = Renderer::new(
            &scene.model,
            &scene.sources,
            strategy,
            scene.bounds,
            scene.background,
        )
        .render(&Camera::new(intrinsics, pose));
        assert_eq!(
            served.image.as_slice(),
            direct.0.as_slice(),
            "cache-off serving diverged from direct rendering; refusing to report"
        );
    }

    // ---- Direct baseline: N independent render loops, same poses. ----
    println!("direct baseline: {n_sessions} sessions x {n_steps} frames ...");
    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    );
    let mut image = Image::new(0, 0);
    let mut stats = gen_nerf::pipeline::RenderStats::default();
    // Warm up caches/frequency before timing.
    renderer.render_into(
        &Camera::new(intrinsics, walk_pose(0, 0)),
        &mut image,
        &mut stats,
    );
    let a0 = allocations();
    let t0 = Instant::now();
    for s in 0..n_sessions {
        for k in 0..n_steps {
            let camera = Camera::new(intrinsics, walk_pose(s, k));
            renderer.render_into(&camera, &mut image, &mut stats);
            std::hint::black_box(image.as_slice());
        }
    }
    let direct_secs = t0.elapsed().as_secs_f64();
    let allocs_direct = (allocations() - a0) / total_frames;
    let fps_direct = total_frames as f64 / direct_secs;

    // ---- Served: one server, N sessions, per-step waves, recycled
    // frame buffers. ----
    println!("served walkthrough: {n_sessions} sessions x {n_steps} waves ...");
    let server = RenderServer::new(ServerConfig::default());
    let sessions: Vec<SessionId> = (0..n_sessions)
        .map(|_| {
            server.create_session(
                Arc::clone(&scene),
                SessionConfig::new(intrinsics, strategy)
                    .with_coherence(coherence)
                    .with_cache_budget(budget),
            )
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(total_frames as usize);
    let mut batched_sum = 0u64;
    let mut buffers: Vec<Option<Image>> = (0..n_sessions).map(|_| None).collect();
    let a1 = allocations();
    let t1 = Instant::now();
    for k in 0..n_steps {
        let handles: Vec<_> = (0..n_sessions)
            .map(|s| {
                let mut req = FrameRequest::new(walk_pose(s, k));
                if let Some(buf) = buffers[s].take() {
                    req = req.with_buffer(buf);
                }
                server.submit(sessions[s], req)
            })
            .collect();
        for (s, handle) in handles.into_iter().enumerate() {
            let frame = handle.wait();
            latencies_ms.push(frame.serve.latency.as_secs_f64() * 1e3);
            batched_sum += frame.serve.batched_frames as u64;
            buffers[s] = Some(frame.image); // recycle into the next wave
        }
    }
    let served_secs = t1.elapsed().as_secs_f64();
    let allocs_served = (allocations() - a1) / total_frames;
    let fps_served = total_frames as f64 / served_secs;

    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut evictions = 0u64;
    for &s in &sessions {
        let c = server.cache_stats(s);
        hits += c.hits;
        misses += c.misses;
        evictions += c.evictions;
    }
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let avg_batched = batched_sum as f64 / total_frames as f64;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95, p99) = (
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.95),
        percentile(&latencies_ms, 0.99),
    );
    let speedup = fps_served / fps_direct;
    drop(server);

    let json = format!(
        "{{\n  \"sessions\": {n_sessions},\n  \
         \"frames_per_session\": {n_steps},\n  \
         \"resolution\": {res},\n  \
         \"threads\": {},\n  \
         \"fps_direct\": {fps_direct:.2},\n  \
         \"fps_served\": {fps_served:.2},\n  \
         \"served_speedup_vs_direct\": {speedup:.2},\n  \
         \"latency_ms_p50\": {p50:.2},\n  \
         \"latency_ms_p95\": {p95:.2},\n  \
         \"latency_ms_p99\": {p99:.2},\n  \
         \"coarse_cache_hits\": {hits},\n  \
         \"coarse_cache_misses\": {misses},\n  \
         \"coarse_cache_hit_rate\": {hit_rate:.3},\n  \
         \"coarse_cache_evictions\": {evictions},\n  \
         \"cache_budget_bytes\": {budget},\n  \
         \"avg_batched_frames\": {avg_batched:.2},\n  \
         \"allocations_per_frame_direct\": {allocs_direct},\n  \
         \"allocations_per_frame_served\": {allocs_served}\n}}\n",
        gen_nerf_parallel::num_threads(),
    );
    std::fs::write(&out_path, &json).expect("write serve report");
    println!("{json}");
    println!("wrote {out_path}");
    // End-of-run telemetry exposition: the watch table on stdout, and
    // the Prometheus dump when GEN_NERF_TELEMETRY_OUT is set.
    gen_nerf_bench::telemetry_out::write_exposition(&gen_nerf_telemetry::snapshot());
    if !test_mode && speedup <= 1.0 {
        println!(
            "WARNING: serving did not beat the direct loops on this host \
             (speedup {speedup:.2})"
        );
    }
}
