//! Runs the entire evaluation: every table and figure of the paper,
//! in order. Control fidelity with `GEN_NERF_SCALE`, `GEN_NERF_STEPS`
//! and `GEN_NERF_HW_SCALE` (see `gen_nerf_bench::harness`).

use gen_nerf_bench::experiments;
use gen_nerf_bench::harness::ReproConfig;

fn main() {
    let cfg = ReproConfig::from_env();
    println!("Gen-NeRF reproduction — full evaluation");
    println!(
        "algorithm config: {cfg:?}; hw scale: {}",
        experiments::hw_scale()
    );
    experiments::fig02::run();
    experiments::motivation::run();
    experiments::tab01::run();
    experiments::fig09::run(&cfg);
    experiments::tab02::run(&cfg);
    experiments::tab03::run(&cfg);
    experiments::tab04::run();
    experiments::fig10::run();
    experiments::fig11::run();
    experiments::fig12::run();
}
