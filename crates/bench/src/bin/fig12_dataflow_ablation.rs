//! Regenerates the paper artifact; see `gen_nerf_bench::experiments::fig12`.

fn main() {
    gen_nerf_bench::experiments::fig12::run();
}
