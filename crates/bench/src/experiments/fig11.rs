//! Fig. 11 — FPS scalability on NeRF-Synthetic 800×800: sweeping the
//! number of source views {10, 6, 4, 2, 1} and the number of focused
//! samples {128, 112, 96, 80, 64} (paper: ≥208.8× speedup over the
//! GPUs everywhere).

use crate::experiments::{hw_scale, scaled_dim};
use crate::harness::{f, par_sweep, print_table};
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Swept axis name.
    pub axis: &'static str,
    /// Swept value.
    pub value: usize,
    /// Gen-NeRF FPS (extrapolated to 800×800).
    pub gen_nerf_fps: f64,
    /// RTX 2080Ti FPS.
    pub rtx_fps: f64,
    /// Jetson TX2 FPS.
    pub tx2_fps: f64,
}

fn measure(s_views: usize, n_focused: usize, threads: usize) -> (f64, f64, f64) {
    let scale = hw_scale();
    let dim = scaled_dim(800, scale);
    let scaled = WorkloadSpec::gen_nerf_default(dim, dim, s_views, n_focused);
    let full = WorkloadSpec::gen_nerf_default(800, 800, s_views, n_focused);
    let sim = Simulator::new(AcceleratorConfig::paper()).with_threads(threads);
    let ratio = (dim as f64 * dim as f64) / (800.0 * 800.0);
    (
        sim.simulate(&scaled).fps * ratio,
        GpuModel::rtx_2080ti().fps(&full),
        GpuModel::jetson_tx2().fps(&full),
    )
}

/// Computes both sweeps; the ten points run in parallel via
/// [`par_sweep`] (each point is an independent cycle-level simulation
/// plus two closed-form GPU models).
pub fn compute() -> Vec<Fig11Row> {
    let jobs: Vec<(&'static str, usize, usize, usize)> = [10usize, 6, 4, 2, 1]
        .iter()
        .map(|&views| ("#source views", views, views, 64))
        .chain(
            [128usize, 112, 96, 80, 64]
                .iter()
                .map(|&points| ("#sampled points", points, 6, points)),
        )
        .collect();
    par_sweep(&jobs, |&(axis, value, s_views, n_focused), inner| {
        let (g, r, t) = measure(s_views, n_focused, inner);
        Fig11Row {
            axis,
            value,
            gen_nerf_fps: g,
            rtx_fps: r,
            tx2_fps: t,
        }
    })
}

/// Prints Fig. 11.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.axis.to_string(),
                r.value.to_string(),
                f(r.gen_nerf_fps, 2),
                f(r.rtx_fps, 4),
                f(r.tx2_fps, 5),
                format!("{:.1}x", r.gen_nerf_fps / r.rtx_fps),
            ]
        })
        .collect();
    print_table(
        "Fig. 11 — FPS scalability on NeRF Synthetic 800x800",
        &[
            "Axis",
            "Value",
            "Gen-NeRF FPS",
            "2080Ti FPS",
            "TX2 FPS",
            "Speedup",
        ],
        &table,
    );
    println!("\nShape check (paper): >=208.8x speedup over both GPUs at every point.");
}
