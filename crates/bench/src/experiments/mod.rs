//! One module per paper artifact.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig02`] | Fig. 2 — GPU latency breakdown |
//! | [`fig09`] | Fig. 9 — PSNR vs points / MFLOPs |
//! | [`fig10`] | Fig. 10 — FPS vs GPUs on 3 datasets |
//! | [`fig11`] | Fig. 11 — FPS scalability (views, points) |
//! | [`fig12`] | Fig. 12 — dataflow ablation |
//! | [`tab01`] | Tab. 1 — area/power per module |
//! | [`motivation`] | Sec. 2.4 — occupancy grids don't generalize |
//! | [`tab02`] | Tab. 2 — component ablation |
//! | [`tab03`] | Tab. 3 — per-scene finetuning |
//! | [`tab04`] | Tab. 4 — device comparison |

pub mod fig02;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod motivation;
pub mod tab01;
pub mod tab02;
pub mod tab03;
pub mod tab04;

/// Resolution scale for the hardware-simulator experiments (the
/// cycle-level simulator at the paper's full 800×800 takes minutes;
/// FPS extrapolates by pixel count, which the binaries report).
pub fn hw_scale() -> f32 {
    std::env::var("GEN_NERF_HW_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// Scales a resolution, keeping it a multiple of 8 and at least 32.
pub fn scaled_dim(base: u32, scale: f32) -> u32 {
    (((base as f32 * scale) as u32) / 8 * 8).max(32)
}
