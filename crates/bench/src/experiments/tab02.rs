//! Tab. 2 — impact of each Gen-NeRF component on rendering quality
//! (PSNR / LPIPS-proxy) and efficiency (MFLOPs/pixel) over the four
//! LLFF scene analogs.
//!
//! Rows, following the paper: vanilla IBRNet (ray transformer,
//! hierarchical sampling) → remove the ray transformer → replace with
//! the Ray-Mixer → add coarse-then-focus sampling (16/48) → add 75%
//! channel pruning evaluated with 10/6/4 source views.

use crate::harness::{
    eval_dataset, f, pretrained_model, print_table, training_datasets, ReproConfig,
};
use gen_nerf::config::{RayModuleChoice, SamplingStrategy};
use gen_nerf::eval::{evaluate, EvalResult};
use gen_nerf::pruning::prune_point_mlp;
use gen_nerf_scene::{Dataset, DatasetKind};

/// The four Tab. 2 scenes.
pub const SCENES: [&str; 4] = ["fern", "fortress", "horns", "trex"];

/// One Tab. 2 row.
#[derive(Debug, Clone)]
pub struct Tab02Row {
    /// Method label.
    pub method: String,
    /// Mean MFLOPs/pixel across scenes.
    pub mflops_per_pixel: f64,
    /// Per-scene `(psnr, lpips)` in [`SCENES`] order.
    pub per_scene: Vec<(f32, f32)>,
}

fn eval_row(
    method: &str,
    model: &gen_nerf::model::GenNerfModel,
    datasets: &[Dataset],
    strategy: &SamplingStrategy,
    max_views: Option<usize>,
) -> Tab02Row {
    let mut per_scene = Vec::new();
    let mut mflops = 0.0;
    for ds in datasets {
        let r: EvalResult = evaluate(model, ds, strategy, max_views);
        per_scene.push((r.psnr, r.lpips));
        mflops += r.mflops_per_pixel;
    }
    Tab02Row {
        method: method.to_string(),
        mflops_per_pixel: mflops / datasets.len() as f64,
        per_scene,
    }
}

/// Computes every Tab. 2 row.
pub fn compute(cfg: &ReproConfig) -> Vec<Tab02Row> {
    let train = training_datasets(cfg);
    let datasets: Vec<Dataset> = SCENES
        .iter()
        .map(|s| eval_dataset(DatasetKind::Llff, s, cfg))
        .collect();

    let transformer = pretrained_model(cfg, RayModuleChoice::Transformer, &train);
    let none = pretrained_model(cfg, RayModuleChoice::None, &train);
    let mixer = pretrained_model(cfg, RayModuleChoice::Mixer, &train);
    // Prune-then-retrain, the standard structured-pruning recipe (the
    // paper's <0.5 dB pruning cost presumes recovery training).
    let pruned = {
        let mut m = prune_point_mlp(&mixer, 0.75);
        let mut trainer = gen_nerf::trainer::Trainer::new(gen_nerf::trainer::TrainConfig {
            steps: cfg.train_steps / 2,
            ..gen_nerf::trainer::TrainConfig::fast()
        });
        let refs: Vec<&Dataset> = train.iter().collect();
        trainer.pretrain(&mut m, &refs);
        m
    };

    // The paper's vanilla baseline samples ~3x more points (196 vs 64);
    // scaled to our runtime: 32+32 hierarchical (96 model evaluations)
    // vs coarse-then-focus 16/48 (48 full evaluations).
    let hier = SamplingStrategy::Hierarchical {
        n_coarse: 32,
        n_fine: 32,
    };
    let ctf = SamplingStrategy::coarse_then_focus(16, 48);

    let mut rows = vec![
        eval_row("vanilla IBRNet", &transformer, &datasets, &hier, Some(10)),
        eval_row("- ray transformer", &none, &datasets, &hier, Some(10)),
        eval_row("+ Ray-Mixer", &mixer, &datasets, &hier, Some(10)),
        eval_row(
            "+ Coarse-then-Focus (16/48)",
            &mixer,
            &datasets,
            &ctf,
            Some(10),
        ),
    ];
    for views in [10usize, 6, 4] {
        rows.push(eval_row(
            &format!("+ channel pruning, {views} views"),
            &pruned,
            &datasets,
            &ctf,
            Some(views),
        ));
    }
    rows
}

/// Prints Tab. 2.
pub fn run(cfg: &ReproConfig) {
    let rows = compute(cfg);
    let mut table = Vec::new();
    for r in &rows {
        let mut row = vec![r.method.clone(), f(r.mflops_per_pixel, 3)];
        for (psnr, lpips) in &r.per_scene {
            row.push(format!("{:.2}/{:.3}", psnr, lpips));
        }
        table.push(row);
    }
    print_table(
        "Tab. 2 — component ablation on LLFF analogs (PSNR↑/LPIPS-proxy↓)",
        &["Method", "MFLOPs/px", "fern", "fortress", "horns", "trex"],
        &table,
    );
    println!(
        "\nShape check (paper): removing the ray transformer costs several dB;\nRay-Mixer recovers it at similar FLOPs; CtF cuts FLOPs ~3x at comparable\nPSNR; pruning + fewer views gives a further >5x FLOPs cut for <1.3 dB."
    );
}
