//! Motivation experiment (paper Sec. 1 / Sec. 2.4): per-scene
//! occupancy-grid sparsity does *not* generalize to new scenes, while
//! coarse-then-focus estimates the sparsity distribution at run time.
//!
//! We build an occupancy grid on one scene, measure how much of other
//! scenes' occupied space it would skip, and contrast with the
//! run-time coarse pass (which by construction probes the actual
//! scene).

use crate::harness::{f, print_table};
use gen_nerf::occupancy::OccupancyGrid;
use gen_nerf_scene::datasets::scene_for;
use gen_nerf_scene::DatasetKind;

/// One row: grid trained on `trained_on`, applied to `applied_to`.
#[derive(Debug, Clone)]
pub struct MotivationRow {
    /// Scene the grid was built from.
    pub trained_on: &'static str,
    /// Scene the grid is applied to.
    pub applied_to: &'static str,
    /// Fraction of the target's occupied volume the grid skips.
    pub miss_rate: f32,
}

/// Computes the cross-scene miss-rate matrix over three scenes.
pub fn compute() -> Vec<MotivationRow> {
    let names = ["lego", "mic", "ship"];
    let scenes: Vec<_> = names
        .iter()
        .map(|n| (*n, scene_for(DatasetKind::NerfSynthetic, n, 7)))
        .collect();
    let mut rows = Vec::new();
    for (train_name, train_scene) in &scenes {
        let grid = OccupancyGrid::build(train_scene, 24, 0.5);
        for (apply_name, apply_scene) in &scenes {
            rows.push(MotivationRow {
                trained_on: train_name,
                applied_to: apply_name,
                miss_rate: grid.miss_rate_on(apply_scene, 20, 0.5),
            });
        }
    }
    rows
}

/// Prints the motivation table.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.trained_on.to_string(),
                r.applied_to.to_string(),
                f(r.miss_rate as f64 * 100.0, 1) + " %",
                if r.trained_on == r.applied_to {
                    "(same scene)".to_string()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print_table(
        "Motivation (Sec. 2.4) — occupied volume SKIPPED by a per-scene occupancy grid",
        &["Grid from", "Applied to", "Missed", ""],
        &table,
    );
    println!(
        "\nShape check (paper): per-scene sparsity structures skip large parts of\n*new* scenes (off-diagonal) while being near-perfect on their own scene\n(diagonal) — hence Gen-NeRF's run-time coarse-then-focus sampling."
    );
}
