//! Tab. 4 — device specifications and typical FPS: Gen-NeRF vs ICARUS
//! vs Jetson TX2 vs RTX 2080Ti.
//!
//! Gen-NeRF's FPS comes from the cycle-level simulator on the typical
//! workload (800×800, 64 focused points, 6 views). The simulator runs
//! at `GEN_NERF_HW_SCALE` resolution and FPS is extrapolated by pixel
//! count (latency is linear in rays at fixed per-ray work).

use crate::experiments::{hw_scale, scaled_dim};
use crate::harness::{f, print_table};
use gen_nerf_accel::area::area_power;
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::icarus::Icarus;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;

/// One Tab. 4 column.
#[derive(Debug, Clone)]
pub struct DeviceRow {
    /// Device name.
    pub name: String,
    /// On-chip SRAM, MB.
    pub sram_mb: f64,
    /// Area, mm².
    pub area_mm2: f64,
    /// Frequency, GHz.
    pub freq_ghz: f64,
    /// DRAM technology.
    pub dram: String,
    /// Bandwidth, GB/s (0 = not reported).
    pub bandwidth_gbps: f64,
    /// Technology node, nm.
    pub technology_nm: u32,
    /// Typical power, W.
    pub power_w: f64,
    /// Typical FPS on the canonical workload.
    pub fps: f64,
}

/// Simulated Gen-NeRF FPS on the typical workload at full 800×800
/// (extrapolated from the scaled simulation).
pub fn gen_nerf_fps(scale: f32) -> f64 {
    let dim = scaled_dim(800, scale);
    let spec = WorkloadSpec::gen_nerf_default(dim, dim, 6, 64);
    let sim = Simulator::new(AcceleratorConfig::paper());
    let report = sim.simulate(&spec);
    let pixel_ratio = (dim as f64 * dim as f64) / (800.0 * 800.0);
    report.fps * pixel_ratio
}

/// Computes all four device rows.
pub fn compute() -> Vec<DeviceRow> {
    let cfg = AcceleratorConfig::paper();
    let ap = area_power(&cfg);
    let gen_fps = gen_nerf_fps(hw_scale());
    let full_spec = WorkloadSpec::gen_nerf_default(800, 800, 6, 64);
    let icarus = Icarus::reported();
    let rtx = GpuModel::rtx_2080ti();
    let tx2 = GpuModel::jetson_tx2();
    vec![
        DeviceRow {
            name: "Gen-NeRF".into(),
            sram_mb: cfg.total_sram_kb() as f64 / 1024.0,
            area_mm2: ap.total_area_mm2(),
            freq_ghz: cfg.freq_ghz,
            dram: cfg.dram.name.into(),
            bandwidth_gbps: cfg.dram.bandwidth_gbps(),
            technology_nm: 28,
            power_w: ap.total_power_mw() / 1000.0,
            fps: gen_fps,
        },
        DeviceRow {
            name: "ICARUS".into(),
            sram_mb: icarus.sram_mb,
            area_mm2: icarus.area_mm2,
            freq_ghz: icarus.freq_ghz,
            dram: "-".into(),
            bandwidth_gbps: 0.0,
            technology_nm: icarus.technology_nm,
            power_w: icarus.power_w,
            fps: icarus.typical_fps,
        },
        DeviceRow {
            name: tx2.name.into(),
            sram_mb: tx2.sram_mb,
            area_mm2: tx2.area_mm2,
            freq_ghz: tx2.freq_ghz,
            dram: tx2.dram_name.into(),
            bandwidth_gbps: tx2.bandwidth_gbps,
            technology_nm: 16,
            power_w: tx2.power_w,
            fps: tx2.fps(&full_spec),
        },
        DeviceRow {
            name: rtx.name.into(),
            sram_mb: rtx.sram_mb,
            area_mm2: rtx.area_mm2,
            freq_ghz: rtx.freq_ghz,
            dram: rtx.dram_name.into(),
            bandwidth_gbps: rtx.bandwidth_gbps,
            technology_nm: 12,
            power_w: rtx.power_w,
            fps: rtx.fps(&full_spec),
        },
    ]
}

/// Prints Tab. 4.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f(r.sram_mb, 2),
                f(r.area_mm2, 1),
                f(r.freq_ghz, 2),
                r.dram.clone(),
                if r.bandwidth_gbps > 0.0 {
                    f(r.bandwidth_gbps, 1)
                } else {
                    "-".into()
                },
                format!("{} nm", r.technology_nm),
                f(r.power_w, 2),
                f(r.fps, 3),
            ]
        })
        .collect();
    print_table(
        "Tab. 4 — device comparison (typical workload: 800x800, 64 pts, 6 views)",
        &[
            "Device",
            "SRAM(MB)",
            "Area(mm²)",
            "Freq(GHz)",
            "DRAM",
            "BW(GB/s)",
            "Tech",
            "Power(W)",
            "FPS",
        ],
        &table,
    );
    let gen = rows[0].fps;
    println!(
        "\nSpeedups: vs ICARUS {:.0}x (paper >1000x), vs TX2 {:.0}x, vs 2080Ti {:.0}x\nPaper reference FPS: Gen-NeRF 24.9, ICARUS 0.02, TX2 0.003, 2080Ti 0.096.",
        gen / rows[1].fps,
        gen / rows[2].fps,
        gen / rows[3].fps,
    );
}
