//! Fig. 12 — dataflow and feature-storage ablation: latency breakdown
//! (data movement vs compute) and PE utilization for Var-1/2/3 vs the
//! full Gen-NeRF design, at 10/6/2 source views.
//!
//! Var-1 drops the greedy 3D-point-patch partition (fixed `{k,k,D}`
//! patches); Var-2 additionally stores features row-major; Var-3 uses
//! view-wise interleaving instead.

use crate::experiments::{hw_scale, scaled_dim};
use crate::harness::{f, print_table};
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::dataflow::DataflowVariant;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;

/// One bar pair of Fig. 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Variant label.
    pub variant: &'static str,
    /// Source views.
    pub views: usize,
    /// Data-movement cycles (summed over patches).
    pub data_cycles: u64,
    /// Compute cycles.
    pub compute_cycles: u64,
    /// Pipeline cycles.
    pub total_cycles: u64,
    /// PE utilization.
    pub pe_utilization: f64,
    /// Whether the pipeline is memory-bound.
    pub memory_bound: bool,
}

/// Computes every bar. Uses a prefetch buffer scaled with the test
/// resolution so the capacity constraint binds as it does at full
/// scale.
pub fn compute() -> Vec<Fig12Row> {
    let scale = hw_scale();
    let dim = scaled_dim(800, scale);
    let mut cfg = AcceleratorConfig::paper();
    // Scale the buffer *linearly* with resolution: the binding quantity
    // is the epipolar-band footprint of a fixed pixel tile, whose
    // length grows linearly with the source resolution.
    cfg.prefetch_buffer_kb = ((256.0 * scale as f64) as usize).max(8);
    let mut rows = Vec::new();
    for views in [10usize, 6, 2] {
        for variant in DataflowVariant::all() {
            let spec = WorkloadSpec::gen_nerf_default(dim, dim, views, 64);
            let sim = Simulator::with_variant(cfg, variant);
            let r = sim.simulate(&spec);
            rows.push(Fig12Row {
                variant: variant.label(),
                views,
                data_cycles: r.data_cycles(),
                compute_cycles: r.compute_cycles(),
                total_cycles: r.total_cycles,
                pe_utilization: r.pe_utilization,
                memory_bound: r.memory_bound,
            });
        }
    }
    rows
}

/// Prints Fig. 12.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} views", r.views),
                r.variant.to_string(),
                format!("{:.2}M", r.data_cycles as f64 / 1e6),
                format!("{:.2}M", r.compute_cycles as f64 / 1e6),
                format!("{:.2}M", r.total_cycles as f64 / 1e6),
                f(r.pe_utilization, 3),
                if r.memory_bound { "memory" } else { "compute" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 12 — dataflow/storage ablation (data vs compute, PE utilization)",
        &[
            "#Views",
            "Variant",
            "Data cyc",
            "Compute cyc",
            "Total cyc",
            "PE util",
            "Bound",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): Var-1 is memory-bound with low PE utilization;\nVar-2/Var-3 are worse still (bank conflicts); Ours hides data movement\nbehind compute and reaches the highest utilization."
    );
}
