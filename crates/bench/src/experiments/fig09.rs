//! Fig. 9 — rendering quality vs sampling budget: Gen-NeRF
//! (coarse-then-focus + Ray-Mixer) vs IBRNet (hierarchical + ray
//! transformer) on the three dataset analogs.
//!
//! Paper configurations: Gen-NeRF samples 8/8, 8/16, 16/32 and 32/64
//! coarse/focused points; IBRNet sweeps matched total budgets. Both
//! the point axis and the MFLOPs/pixel axis are *measured* from the
//! instrumented pipeline.

use crate::harness::{
    eval_dataset, f, par_sweep, pretrained_model, print_table, training_datasets, ReproConfig,
};
use gen_nerf::config::{RayModuleChoice, SamplingStrategy};
use gen_nerf::eval::evaluate_with_threads;
use gen_nerf::model::GenNerfModel;
use gen_nerf_scene::DatasetKind;

/// One point of a Fig. 9 series.
#[derive(Debug, Clone)]
pub struct Fig09Point {
    /// Dataset label.
    pub dataset: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Nominal sampled points per ray.
    pub nominal_points: usize,
    /// Measured average points per ray.
    pub measured_points: f64,
    /// Measured MFLOPs per pixel.
    pub mflops_per_pixel: f64,
    /// PSNR, dB.
    pub psnr: f32,
}

/// The per-dataset scene used for the sweep (one representative scene
/// per suite keeps the runtime tractable; the full per-scene metrics
/// live in Tab. 2).
fn scene_for(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Llff => "fern",
        DatasetKind::NerfSynthetic => "lego",
        DatasetKind::DeepVoxels => "cube",
    }
}

/// Runs the sweep and returns all series points.
///
/// Sweep points fan out across threads via [`par_sweep`]: both trained
/// models are shared by reference between all workers — `evaluate`
/// renders through the model's `&self` inference path, so no clones
/// are needed and the results are identical to a sequential sweep.
pub fn compute(cfg: &ReproConfig) -> Vec<Fig09Point> {
    let train = training_datasets(cfg);
    let gen_nerf = pretrained_model(cfg, RayModuleChoice::Mixer, &train);
    let ibrnet = pretrained_model(cfg, RayModuleChoice::Transformer, &train);

    let gen_configs: [(usize, usize); 4] = [(8, 8), (8, 16), (16, 32), (32, 64)];
    let ibr_budgets = [16usize, 24, 48, 96];

    let mut points = Vec::new();
    for kind in DatasetKind::all() {
        let ds = eval_dataset(kind, scene_for(kind), cfg);
        let jobs: Vec<(&GenNerfModel, &'static str, usize, SamplingStrategy)> = gen_configs
            .iter()
            .map(|&(nc, nf)| {
                (
                    &gen_nerf,
                    "Gen-NeRF",
                    nc + nf,
                    SamplingStrategy::coarse_then_focus(nc, nf),
                )
            })
            .chain(ibr_budgets.iter().map(|&n| {
                (
                    &ibrnet,
                    "IBRNet",
                    n,
                    SamplingStrategy::Hierarchical {
                        n_coarse: n / 2,
                        n_fine: n - n / 2,
                    },
                )
            }))
            .collect();
        points.extend(par_sweep(
            &jobs,
            |&(model, method, nominal, strategy), inner| {
                let r = evaluate_with_threads(model, &ds, &strategy, Some(6), inner);
                Fig09Point {
                    dataset: kind.label(),
                    method,
                    nominal_points: nominal,
                    measured_points: r.avg_points_per_ray,
                    mflops_per_pixel: r.mflops_per_pixel,
                    psnr: r.psnr,
                }
            },
        ));
    }
    points
}

/// Prints both Fig. 9 panels (PSNR vs points; PSNR vs MFLOPs/pixel).
pub fn run(cfg: &ReproConfig) {
    let pts = compute(cfg);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dataset.to_string(),
                p.method.to_string(),
                p.nominal_points.to_string(),
                f(p.measured_points, 1),
                f(p.mflops_per_pixel, 3),
                f(p.psnr as f64, 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — PSNR vs sampled points and MFLOPs/pixel (Gen-NeRF vs IBRNet)",
        &[
            "Dataset",
            "Method",
            "Points",
            "Meas.pts",
            "MFLOPs/px",
            "PSNR(dB)",
        ],
        &rows,
    );
    println!(
        "\nShape check (paper): Gen-NeRF >= IBRNet PSNR at matched budgets, with the\ngap widening at small budgets; Gen-NeRF also spends fewer MFLOPs at equal\npoints thanks to the lightweight coarse pass."
    );
}
