//! Fig. 9 — rendering quality vs sampling budget: Gen-NeRF
//! (coarse-then-focus + Ray-Mixer) vs IBRNet (hierarchical + ray
//! transformer) on the three dataset analogs.
//!
//! Paper configurations: Gen-NeRF samples 8/8, 8/16, 16/32 and 32/64
//! coarse/focused points; IBRNet sweeps matched total budgets. Both
//! the point axis and the MFLOPs/pixel axis are *measured* from the
//! instrumented pipeline.

use crate::harness::{
    eval_dataset, f, pretrained_model, print_table, training_datasets, ReproConfig,
};
use gen_nerf::config::{RayModuleChoice, SamplingStrategy};
use gen_nerf::eval::evaluate;
use gen_nerf_scene::DatasetKind;

/// One point of a Fig. 9 series.
#[derive(Debug, Clone)]
pub struct Fig09Point {
    /// Dataset label.
    pub dataset: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Nominal sampled points per ray.
    pub nominal_points: usize,
    /// Measured average points per ray.
    pub measured_points: f64,
    /// Measured MFLOPs per pixel.
    pub mflops_per_pixel: f64,
    /// PSNR, dB.
    pub psnr: f32,
}

/// The per-dataset scene used for the sweep (one representative scene
/// per suite keeps the runtime tractable; the full per-scene metrics
/// live in Tab. 2).
fn scene_for(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Llff => "fern",
        DatasetKind::NerfSynthetic => "lego",
        DatasetKind::DeepVoxels => "cube",
    }
}

/// Runs the sweep and returns all series points.
pub fn compute(cfg: &ReproConfig) -> Vec<Fig09Point> {
    let train = training_datasets(cfg);
    let gen_nerf = pretrained_model(cfg, RayModuleChoice::Mixer, &train);
    let ibrnet = pretrained_model(cfg, RayModuleChoice::Transformer, &train);

    let gen_configs: [(usize, usize); 4] = [(8, 8), (8, 16), (16, 32), (32, 64)];
    let ibr_budgets = [16usize, 24, 48, 96];

    let mut points = Vec::new();
    for kind in DatasetKind::all() {
        let ds = eval_dataset(kind, scene_for(kind), cfg);
        for &(nc, nf) in &gen_configs {
            let strategy = SamplingStrategy::coarse_then_focus(nc, nf);
            let r = evaluate(&gen_nerf, &ds, &strategy, Some(6));
            points.push(Fig09Point {
                dataset: kind.label(),
                method: "Gen-NeRF",
                nominal_points: nc + nf,
                measured_points: r.avg_points_per_ray,
                mflops_per_pixel: r.mflops_per_pixel,
                psnr: r.psnr,
            });
        }
        for &n in &ibr_budgets {
            let strategy = SamplingStrategy::Hierarchical {
                n_coarse: n / 2,
                n_fine: n - n / 2,
            };
            let r = evaluate(&ibrnet, &ds, &strategy, Some(6));
            points.push(Fig09Point {
                dataset: kind.label(),
                method: "IBRNet",
                nominal_points: n,
                measured_points: r.avg_points_per_ray,
                mflops_per_pixel: r.mflops_per_pixel,
                psnr: r.psnr,
            });
        }
    }
    points
}

/// Prints both Fig. 9 panels (PSNR vs points; PSNR vs MFLOPs/pixel).
pub fn run(cfg: &ReproConfig) {
    let pts = compute(cfg);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dataset.to_string(),
                p.method.to_string(),
                p.nominal_points.to_string(),
                f(p.measured_points, 1),
                f(p.mflops_per_pixel, 3),
                f(p.psnr as f64, 2),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — PSNR vs sampled points and MFLOPs/pixel (Gen-NeRF vs IBRNet)",
        &["Dataset", "Method", "Points", "Meas.pts", "MFLOPs/px", "PSNR(dB)"],
        &rows,
    );
    println!(
        "\nShape check (paper): Gen-NeRF >= IBRNet PSNR at matched budgets, with the\ngap widening at small budgets; Gen-NeRF also spends fewer MFLOPs at equal\npoints thanks to the lightweight coarse pass."
    );
}
