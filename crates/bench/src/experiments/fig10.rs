//! Fig. 10 — Gen-NeRF accelerator FPS vs two GPUs across the three
//! dataset resolutions (the paper reports 239–256× over the 2080Ti and
//! ~7449× over the TX2, with Gen-NeRF clearing the 24 FPS real-time
//! bar).

use crate::experiments::{hw_scale, scaled_dim};
use crate::harness::{f, print_table};
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;
use gen_nerf_scene::DatasetKind;

/// One dataset's FPS bars.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Gen-NeRF simulated FPS (extrapolated to full resolution).
    pub gen_nerf_fps: f64,
    /// RTX 2080Ti model FPS.
    pub rtx_fps: f64,
    /// Jetson TX2 model FPS.
    pub tx2_fps: f64,
}

/// Computes the three rows.
pub fn compute() -> Vec<Fig10Row> {
    let scale = hw_scale();
    let rtx = GpuModel::rtx_2080ti();
    let tx2 = GpuModel::jetson_tx2();
    DatasetKind::all()
        .into_iter()
        .map(|kind| {
            let (bw, bh) = kind.base_resolution();
            // GPU models evaluate the full-resolution workload directly.
            let full = WorkloadSpec::gen_nerf_default(bw, bh, 6, 64);
            // The cycle simulator runs scaled and extrapolates by rays.
            let (sw, sh) = (scaled_dim(bw, scale), scaled_dim(bh, scale));
            let scaled = WorkloadSpec::gen_nerf_default(sw, sh, 6, 64);
            let sim = Simulator::new(AcceleratorConfig::paper());
            let report = sim.simulate(&scaled);
            let ratio = (sw as f64 * sh as f64) / (bw as f64 * bh as f64);
            Fig10Row {
                dataset: kind.label(),
                gen_nerf_fps: report.fps * ratio,
                rtx_fps: rtx.fps(&full),
                tx2_fps: tx2.fps(&full),
            }
        })
        .collect()
}

/// Prints Fig. 10.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                f(r.gen_nerf_fps, 2),
                f(r.rtx_fps, 4),
                f(r.tx2_fps, 5),
                format!("{:.1}x", r.gen_nerf_fps / r.rtx_fps),
                format!("{:.0}x", r.gen_nerf_fps / r.tx2_fps),
            ]
        })
        .collect();
    print_table(
        "Fig. 10 — FPS: Gen-NeRF accelerator vs GPUs (64 pts, 6 views)",
        &[
            "Dataset",
            "Gen-NeRF FPS",
            "2080Ti FPS",
            "TX2 FPS",
            "vs 2080Ti",
            "vs TX2",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): 239x/246x/256x over the 2080Ti, ~7449x over the TX2\non LLFF; Gen-NeRF clears the >=24 FPS real-time bar on 800x800."
    );
}
