//! Fig. 2 — latency breakdown of the vanilla generalizable NeRF on two
//! GPUs across three datasets (plus the Sec. 2.3 profiling claims).
//!
//! Workload: the paper's profiling setup — 10 source views, 196 points
//! per ray, ray transformer, per-dataset resolutions.

use crate::harness::{f, print_table};
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::workload::{Stage, WorkloadSpec};
use gen_nerf_scene::DatasetKind;

/// One bar of Fig. 2.
#[derive(Debug, Clone)]
pub struct Fig02Row {
    /// Device name.
    pub device: &'static str,
    /// Dataset label.
    pub dataset: &'static str,
    /// Acquire-features seconds.
    pub acquire_s: f64,
    /// Ray-transformer seconds.
    pub ray_s: f64,
    /// MLP seconds.
    pub mlp_s: f64,
    /// Others seconds.
    pub others_s: f64,
    /// Frames per second.
    pub fps: f64,
}

/// Computes every bar of Fig. 2.
pub fn compute() -> Vec<Fig02Row> {
    let devices = [GpuModel::rtx_2080ti(), GpuModel::jetson_tx2()];
    let mut rows = Vec::new();
    for gpu in devices {
        for kind in DatasetKind::all() {
            let (w, h) = kind.base_resolution();
            let spec = WorkloadSpec::ibrnet_default(w, h, 10, 196);
            let bd = gpu.breakdown(&spec);
            rows.push(Fig02Row {
                device: gpu.name,
                dataset: kind.label(),
                acquire_s: bd.acquire_s,
                ray_s: bd.ray_module_s,
                mlp_s: bd.mlp_s,
                others_s: bd.others_s,
                fps: 1.0 / bd.total_s(),
            });
        }
    }
    rows
}

/// Prints the figure plus the Sec. 2.3 claims.
pub fn run() {
    let rows = compute();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.to_string(),
                r.dataset.to_string(),
                f(r.acquire_s, 2),
                f(r.ray_s, 2),
                f(r.mlp_s, 2),
                f(r.others_s, 2),
                f(r.acquire_s + r.ray_s + r.mlp_s + r.others_s, 2),
                f(r.fps, 3),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — vanilla generalizable NeRF latency breakdown (10 views, 196 pts/ray)",
        &[
            "Device",
            "Dataset",
            "Acquire(s)",
            "RayTrans(s)",
            "MLP(s)",
            "Others(s)",
            "Total(s)",
            "FPS",
        ],
        &table,
    );

    // Sec. 2.3 supporting claims on the LLFF / 2080Ti bar.
    let gpu = GpuModel::rtx_2080ti();
    let (w, h) = DatasetKind::Llff.base_resolution();
    let spec = WorkloadSpec::ibrnet_default(w, h, 10, 196);
    let bd = gpu.breakdown(&spec);
    let ray_flops = 2.0 * spec.ray_macs_total(Stage::Focused) as f64;
    let mlp_flops = 2.0 * spec.mlp_macs(Stage::Focused) as f64;
    println!(
        "\nSec. 2.3 claims (LLFF, RTX 2080Ti):\n  ray transformer share of DNN time: {:.1}% (paper: 44.1%)\n  ray transformer share of DNN FLOPs: {:.1}% (paper: 13.8%)\n  800x800 FPS: {:.3} (paper: <= 0.249)",
        100.0 * bd.ray_module_dnn_share(),
        100.0 * ray_flops / (ray_flops + mlp_flops),
        gpu.fps(&WorkloadSpec::ibrnet_default(800, 800, 10, 196)),
    );
}
