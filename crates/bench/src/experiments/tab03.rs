//! Tab. 3 — rendering quality/efficiency under per-scene finetuning,
//! with 4 and 10 source views (IBRNet vs Gen-NeRF).
//!
//! Finetuning substitution: the paper finetunes on held-in photographs
//! of the target scene; we continue training against the target
//! scene's analytic fields (DESIGN.md §2).

use crate::harness::{
    eval_dataset, f, pretrained_model, print_table, training_datasets, ReproConfig,
};
use gen_nerf::config::{RayModuleChoice, SamplingStrategy};
use gen_nerf::eval::evaluate;
use gen_nerf::pruning::prune_point_mlp;
use gen_nerf::trainer::{TrainConfig, Trainer};
use gen_nerf_scene::{Dataset, DatasetKind};

/// The Tab. 3 scenes (same as Tab. 2).
pub const SCENES: [&str; 4] = ["fern", "fortress", "horns", "trex"];

/// One Tab. 3 row.
#[derive(Debug, Clone)]
pub struct Tab03Row {
    /// Number of source views.
    pub views: usize,
    /// Method label.
    pub method: &'static str,
    /// Mean MFLOPs/pixel.
    pub mflops_per_pixel: f64,
    /// Per-scene `(psnr, lpips)`.
    pub per_scene: Vec<(f32, f32)>,
}

/// Computes all four rows (2 view counts × 2 methods).
pub fn compute(cfg: &ReproConfig) -> Vec<Tab03Row> {
    let train = training_datasets(cfg);
    let datasets: Vec<Dataset> = SCENES
        .iter()
        .map(|s| eval_dataset(DatasetKind::Llff, s, cfg))
        .collect();

    let ibr_base = pretrained_model(cfg, RayModuleChoice::Transformer, &train);
    // Prune-then-retrain (see tab02).
    let gen_base = {
        let mut m = prune_point_mlp(&pretrained_model(cfg, RayModuleChoice::Mixer, &train), 0.75);
        let mut trainer = Trainer::new(TrainConfig {
            steps: cfg.train_steps / 2,
            ..TrainConfig::fast()
        });
        let refs: Vec<&Dataset> = train.iter().collect();
        trainer.pretrain(&mut m, &refs);
        m
    };

    let hier = SamplingStrategy::Hierarchical {
        n_coarse: 32,
        n_fine: 32,
    };
    let ctf = SamplingStrategy::coarse_then_focus(8, 16);

    let mut rows = Vec::new();
    for views in [4usize, 10] {
        for (method, base, strategy) in
            [("IBRNet", &ibr_base, &hier), ("Gen-NeRF", &gen_base, &ctf)]
        {
            let mut per_scene = Vec::new();
            let mut mflops = 0.0;
            for ds in &datasets {
                // Per-scene finetuning from the shared pretrained model.
                let mut model = base.clone();
                let mut trainer = Trainer::new(TrainConfig {
                    steps: cfg.train_steps / 2,
                    finetune_steps: cfg.train_steps / 2,
                    ..TrainConfig::fast()
                });
                trainer.finetune(&mut model, ds);
                let r = evaluate(&model, ds, strategy, Some(views));
                per_scene.push((r.psnr, r.lpips));
                mflops += r.mflops_per_pixel;
            }
            rows.push(Tab03Row {
                views,
                method,
                mflops_per_pixel: mflops / datasets.len() as f64,
                per_scene,
            });
        }
    }
    rows
}

/// Prints Tab. 3.
pub fn run(cfg: &ReproConfig) {
    let rows = compute(cfg);
    let mut table = Vec::new();
    for r in &rows {
        let mut row = vec![
            r.views.to_string(),
            r.method.to_string(),
            f(r.mflops_per_pixel, 3),
        ];
        for (psnr, lpips) in &r.per_scene {
            row.push(format!("{:.2}/{:.3}", psnr, lpips));
        }
        table.push(row);
    }
    print_table(
        "Tab. 3 — per-scene finetuning (PSNR↑/LPIPS-proxy↓)",
        &[
            "#Views",
            "Method",
            "MFLOPs/px",
            "fern",
            "fortress",
            "horns",
            "trex",
        ],
        &table,
    );
    println!(
        "\nShape check (paper): Gen-NeRF cuts IBRNet's FLOPs by >17x while staying\nwithin ~1 dB PSNR after finetuning."
    );
}
