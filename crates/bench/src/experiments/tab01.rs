//! Tab. 1 — area and power of Gen-NeRF's hardware modules (28 nm,
//! 1 GHz).

use crate::harness::{f, print_table};
use gen_nerf_accel::area::{area_power, AreaPowerReport};
use gen_nerf_accel::config::AcceleratorConfig;

/// Computes the report for the paper configuration.
pub fn compute() -> AreaPowerReport {
    area_power(&AcceleratorConfig::paper())
}

/// Prints Tab. 1 with the paper's reference values.
pub fn run() {
    let r = compute();
    let rows = vec![
        vec![
            "Workload Scheduler".to_string(),
            f(r.scheduler.area_mm2, 2),
            f(r.scheduler.power_mw, 1),
            "0.24".into(),
            "156.2".into(),
        ],
        vec![
            "Preprocessing Unit".to_string(),
            f(r.preprocessing.area_mm2, 2),
            f(r.preprocessing.power_mw, 1),
            "1.24".into(),
            "696.0".into(),
        ],
        vec![
            "Rendering Engine (excl. PPU)".to_string(),
            f(r.rendering_engine.area_mm2, 2),
            f(r.rendering_engine.power_mw, 1),
            "14.98".into(),
            "8359.2".into(),
        ],
        vec![
            "Prefetch Buffer".to_string(),
            f(r.prefetch_buffer.area_mm2, 2),
            f(r.prefetch_buffer.power_mw, 1),
            "1.34".into(),
            "473.6".into(),
        ],
        vec![
            "Total".to_string(),
            f(r.total_area_mm2(), 2),
            f(r.total_power_mw(), 1),
            "17.80".into(),
            "9685.0".into(),
        ],
    ];
    print_table(
        "Tab. 1 — area and power of Gen-NeRF's hardware modules",
        &["Module", "Area(mm²)", "Power(mW)", "Paper mm²", "Paper mW"],
        &rows,
    );
}
