//! Criterion benches for the algorithm pipeline — the machinery behind
//! Fig. 9 and Tabs. 2–3 (feature aggregation, per-ray model inference,
//! full-frame rendering with each sampling strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_nerf::config::{ModelConfig, SamplingStrategy};
use gen_nerf::features::{aggregate_point, prepare_sources};
use gen_nerf::model::GenNerfModel;
use gen_nerf::pipeline::Renderer;
use gen_nerf_geometry::Vec3;
use gen_nerf_scene::{Dataset, DatasetKind};

fn fixture() -> (
    Dataset,
    Vec<gen_nerf::features::SourceViewData>,
    GenNerfModel,
) {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 6, 1, 32, 7);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    (ds, sources, model)
}

fn bench_aggregate(c: &mut Criterion) {
    let (_, sources, _) = fixture();
    c.bench_function("aggregate_point_6views", |b| {
        b.iter(|| {
            aggregate_point(
                Vec3::new(0.1, 0.2, 0.3),
                Vec3::new(0.0, 0.0, -1.0),
                &sources,
                12,
            )
        })
    });
}

fn bench_forward_ray(c: &mut Criterion) {
    let (ds, sources, model) = fixture();
    let cam = ds.eval_views[0].camera;
    let ray = cam.pixel_center_ray(cam.intrinsics.width / 2, cam.intrinsics.height / 2);
    let aggs: Vec<_> = (0..32)
        .map(|k| {
            let t = 2.5 + k as f32 * 0.1;
            aggregate_point(ray.at(t), ray.direction, &sources, 12)
        })
        .collect();
    c.bench_function("forward_ray_32pts", |b| b.iter(|| model.forward_ray(&aggs)));
}

fn bench_render(c: &mut Criterion) {
    let (ds, sources, model) = fixture();
    let mut group = c.benchmark_group("render_frame");
    group.sample_size(10);
    let strategies = [
        ("uniform16", SamplingStrategy::Uniform { n: 16 }),
        (
            "hierarchical8+8",
            SamplingStrategy::Hierarchical {
                n_coarse: 8,
                n_fine: 8,
            },
        ),
        ("ctf8/8", SamplingStrategy::coarse_then_focus(8, 8)),
    ];
    for (label, strategy) in strategies {
        group.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, s| {
            b.iter(|| {
                let r = Renderer::new(&model, &sources, *s, ds.scene.bounds, ds.scene.background);
                r.render(&ds.eval_views[0].camera)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregate, bench_forward_ray, bench_render);
criterion_main!(benches);
