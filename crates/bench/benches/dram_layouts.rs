//! Criterion benches for the DRAM model under the three feature
//! layouts — the machinery behind Fig. 6 and Fig. 12's Var-2/3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_nerf_dram::{Dram, DramConfig, FeatureLayout, FeatureRequest};

fn region(n: usize) -> Vec<FeatureRequest> {
    (0..n)
        .map(|i| FeatureRequest {
            view: i % 4,
            x: (10 + (i % 16)) as u32,
            y: (20 + (i / 16)) as u32,
            bytes: 64,
        })
        .collect()
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_serve_batch");
    let reqs = region(256);
    for layout in FeatureLayout::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.label()),
            &layout,
            |b, &layout| {
                b.iter(|| {
                    let mut dram = Dram::new(DramConfig::lpddr4_2400(), layout);
                    dram.serve_batch(&reqs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
