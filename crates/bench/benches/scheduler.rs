//! Criterion benches for the greedy 3D-point-patch scheduler — the
//! machinery behind Fig. 5 and the workload-scheduler block of Tab. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_nerf_accel::scheduler::{CameraRig, Scheduler};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_partition");
    group.sample_size(10);
    let rig = CameraRig::orbit(128, 128, 6);
    let sched = Scheduler::new(64 * 1024);
    group.bench_function(BenchmarkId::new("greedy", "128px"), |b| {
        b.iter(|| sched.partition(&rig, 128, 128, 64, 12))
    });
    group.bench_function(BenchmarkId::new("fixed", "128px"), |b| {
        b.iter(|| sched.partition_fixed(&rig, 128, 128, 64, 12))
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
