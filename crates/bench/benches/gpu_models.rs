//! Criterion benches for the GPU roofline models — the machinery
//! behind Fig. 2 (and the GPU bars of Figs. 10–11 / Tab. 4).

use criterion::{criterion_group, criterion_main, Criterion};
use gen_nerf_accel::gpu::GpuModel;
use gen_nerf_accel::workload::WorkloadSpec;

fn bench_breakdown(c: &mut Criterion) {
    let spec = WorkloadSpec::ibrnet_default(1008, 756, 10, 196);
    let gpu = GpuModel::rtx_2080ti();
    c.bench_function("gpu_breakdown_fig2", |b| b.iter(|| gpu.breakdown(&spec)));
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
