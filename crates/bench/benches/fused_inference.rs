//! Criterion benches for fused cross-ray batched inference: one chunk
//! of pre-aggregated rays pushed through [`GenNerfModel::forward_rays`]
//! (one point-MLP GEMM + one blend GEMM per chunk) versus the per-ray
//! reference loop over [`GenNerfModel::forward_ray`] (one GEMM chain
//! per ray, one blend MLP call per point). Same inputs, bit-identical
//! outputs — the gap is pure dispatch/allocation/GEMM-shape overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use gen_nerf::config::ModelConfig;
use gen_nerf::features::{aggregate_point, prepare_sources, PointAggregate};
use gen_nerf::model::GenNerfModel;
use gen_nerf_scene::{Dataset, DatasetKind};

fn chunk_fixture(n_rays: usize, points_per_ray: usize) -> (GenNerfModel, Vec<Vec<PointAggregate>>) {
    let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.05, 6, 1, 32, 7);
    let sources = prepare_sources(&ds.source_views);
    let model = GenNerfModel::new(ModelConfig::fast());
    let cam = &ds.eval_views[0].camera;
    let (w, h) = (cam.intrinsics.width, cam.intrinsics.height);
    let mut rays = Vec::with_capacity(n_rays);
    let mut px = 0u32;
    while rays.len() < n_rays {
        let (x, y) = (px % w, (px / w) % h);
        px += 1;
        let ray = cam.pixel_center_ray(x, y);
        let Some((t0, t1)) = ds.scene.bounds.intersect_ray(&ray) else {
            continue;
        };
        rays.push(
            gen_nerf_geometry::Ray::uniform_depths(t0, t1, points_per_ray)
                .into_iter()
                .map(|t| aggregate_point(ray.at(t), ray.direction, &sources, 12))
                .collect(),
        );
    }
    (model, rays)
}

fn bench_chunk_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_inference");
    group.sample_size(10);
    for (n_rays, pts) in [(64usize, 16usize), (256, 8)] {
        let (model, rays) = chunk_fixture(n_rays, pts);
        let refs: Vec<&[PointAggregate]> = rays.iter().map(|r| r.as_slice()).collect();
        group.bench_function(format!("fused_forward_rays/{n_rays}x{pts}"), |b| {
            b.iter(|| model.forward_rays(&refs))
        });
        group.bench_function(format!("per_ray_forward_ray/{n_rays}x{pts}"), |b| {
            b.iter(|| {
                refs.iter()
                    .map(|r| model.forward_ray(r))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunk_inference);
criterion_main!(benches);
