//! Criterion benches for the cycle-level accelerator simulator — the
//! machinery behind Tab. 4, Fig. 10 and Fig. 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gen_nerf_accel::config::AcceleratorConfig;
use gen_nerf_accel::dataflow::DataflowVariant;
use gen_nerf_accel::simulator::Simulator;
use gen_nerf_accel::workload::WorkloadSpec;

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for views in [2usize, 6] {
        let spec = WorkloadSpec::gen_nerf_default(96, 96, views, 64);
        group.bench_with_input(
            BenchmarkId::new("gen_nerf_96px", views),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let sim = Simulator::new(AcceleratorConfig::paper());
                    sim.simulate(spec)
                })
            },
        );
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_variants");
    group.sample_size(10);
    let mut cfg = AcceleratorConfig::paper();
    cfg.prefetch_buffer_kb = 24;
    let spec = WorkloadSpec::gen_nerf_default(64, 64, 4, 32);
    for variant in DataflowVariant::all() {
        group.bench_with_input(
            BenchmarkId::new("fig12", variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let sim = Simulator::with_variant(cfg, variant);
                    sim.simulate(&spec)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_variants);
criterion_main!(benches);
