//! Criterion benches for the neural kernels: Ray-Mixer vs ray
//! transformer forward passes (the workload-heterogeneity argument of
//! Sec. 3.3), INT8 GEMM, and the dense f32 GEMM kernel — including the
//! branchless-vs-zero-skip comparison that justified removing the
//! data-dependent branch from the dense hot path, and the
//! scalar-vs-SIMD backend comparison behind `GEN_NERF_KERNEL`.

use criterion::{criterion_group, criterion_main, Criterion};
use gen_nerf_bench::harness::seed_matmul_zero_skip;
use gen_nerf_nn::attention::SelfAttention;
use gen_nerf_nn::init::Rng;
use gen_nerf_nn::kernels::{kernel_for, Backend};
use gen_nerf_nn::mixer::RayMixer;
use gen_nerf_nn::quant::QuantTensor;
use gen_nerf_nn::Tensor2;

fn bench_dense_matmul(c: &mut Criterion) {
    // Dense activations (the render hot path: no zeros to skip, so the
    // branch is pure pessimization there).
    let mut group = c.benchmark_group("dense_matmul");
    for (m, k, n) in [(16usize, 26usize, 48usize), (256, 48, 48), (128, 128, 128)] {
        let a = Tensor2::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.13).sin() + 1.1);
        let b = Tensor2::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.07).cos());
        group.bench_function(format!("blocked_branchless/{m}x{k}x{n}"), |bch| {
            bch.iter(|| a.matmul(&b))
        });
        group.bench_function(format!("naive_zero_skip/{m}x{k}x{n}"), |bch| {
            bch.iter(|| seed_matmul_zero_skip(&a, &b))
        });
    }
    group.finish();
}

fn bench_kernel_backends(c: &mut Criterion) {
    // The scalar-vs-SIMD comparison behind `GEN_NERF_KERNEL`: each
    // backend runs the identical GEMM through an explicit kernel, so
    // the numbers are comparable within one process.
    let mut group = c.benchmark_group("kernel_backends");
    let (m, k, n) = (128usize, 128usize, 128usize);
    let a = Tensor2::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.11).sin());
    let b = Tensor2::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.05).cos());
    let mut backends = vec![Backend::Scalar];
    if Backend::Avx2.available() {
        backends.push(Backend::Avx2);
    }
    for backend in backends {
        let kernel = kernel_for(backend);
        let mut out = Tensor2::zeros(m, n);
        group.bench_function(format!("matmul_{}/{m}x{k}x{n}", backend.name()), |bch| {
            bch.iter(|| a.matmul_into_with(&b, &mut out, kernel))
        });
    }
    group.finish();
}

fn bench_ray_modules(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let mut mixer = RayMixer::new(64, 16, &mut rng);
    let mut attn = SelfAttention::new(16, 8, &mut rng);
    let x = Tensor2::from_fn(64, 16, |r, c| ((r * 16 + c) as f32 * 0.1).sin());
    c.bench_function("ray_mixer_64pts", |b| b.iter(|| mixer.forward(&x)));
    c.bench_function("ray_transformer_64pts", |b| b.iter(|| attn.forward(&x)));
}

fn bench_int8_gemm(c: &mut Criterion) {
    let a = Tensor2::from_fn(64, 48, |r, c| ((r + c) as f32 * 0.2).sin());
    let w = Tensor2::from_fn(48, 48, |r, c| ((r * 48 + c) as f32 * 0.05).cos());
    let qa = QuantTensor::quantize(&a);
    let qw = QuantTensor::quantize(&w);
    c.bench_function("int8_gemm_64x48x48", |b| b.iter(|| qa.matmul(&qw)));
    c.bench_function("f32_gemm_64x48x48", |b| b.iter(|| a.matmul(&w)));
}

criterion_group!(
    benches,
    bench_ray_modules,
    bench_int8_gemm,
    bench_dense_matmul,
    bench_kernel_backends
);
criterion_main!(benches);
