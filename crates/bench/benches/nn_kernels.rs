//! Criterion benches for the neural kernels: Ray-Mixer vs ray
//! transformer forward passes (the workload-heterogeneity argument of
//! Sec. 3.3) and INT8 GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use gen_nerf_nn::attention::SelfAttention;
use gen_nerf_nn::init::Rng;
use gen_nerf_nn::mixer::RayMixer;
use gen_nerf_nn::quant::QuantTensor;
use gen_nerf_nn::Tensor2;

fn bench_ray_modules(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let mut mixer = RayMixer::new(64, 16, &mut rng);
    let mut attn = SelfAttention::new(16, 8, &mut rng);
    let x = Tensor2::from_fn(64, 16, |r, c| ((r * 16 + c) as f32 * 0.1).sin());
    c.bench_function("ray_mixer_64pts", |b| b.iter(|| mixer.forward(&x)));
    c.bench_function("ray_transformer_64pts", |b| b.iter(|| attn.forward(&x)));
}

fn bench_int8_gemm(c: &mut Criterion) {
    let a = Tensor2::from_fn(64, 48, |r, c| ((r + c) as f32 * 0.2).sin());
    let w = Tensor2::from_fn(48, 48, |r, c| ((r * 48 + c) as f32 * 0.05).cos());
    let qa = QuantTensor::quantize(&a);
    let qw = QuantTensor::quantize(&w);
    c.bench_function("int8_gemm_64x48x48", |b| b.iter(|| qa.matmul(&qw)));
    c.bench_function("f32_gemm_64x48x48", |b| b.iter(|| a.matmul(&w)));
}

criterion_group!(benches, bench_ray_modules, bench_int8_gemm);
criterion_main!(benches);
