//! The kernel quarantine latch, in its own test binary: latching
//! flips the process-global active backend, so these assertions must
//! not share a process with the dispatched bitwise property tests of
//! the unit suite.

use gen_nerf_nn::kernels::{self, integrity, Backend};

#[test]
fn quarantine_latch_is_sticky_and_blocks_reactivation() {
    assert_eq!(integrity::quarantined(), None);

    // Latching is an event exactly once.
    assert!(integrity::quarantine(Backend::Avx2));
    assert!(!integrity::quarantine(Backend::Avx2));
    assert!(integrity::is_quarantined(Backend::Avx2));
    assert_eq!(integrity::quarantined(), Some(Backend::Avx2));

    // The latched backend cannot be installed, explicitly or on the
    // next dispatch.
    assert_eq!(kernels::set_active(Backend::Avx2), Backend::Scalar);
    assert_eq!(kernels::active_backend(), Backend::Scalar);
    assert_eq!(kernels::active().backend(), Backend::Scalar);

    // Cleared (tests only), the backend is installable again where
    // the host supports it.
    integrity::clear_quarantine_for_tests();
    if Backend::Avx2.available() {
        assert_eq!(kernels::set_active(Backend::Avx2), Backend::Avx2);
    }
    kernels::set_active(Backend::from_env());
}
