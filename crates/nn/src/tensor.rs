//! A row-major 2D `f32` tensor.
//!
//! # The dense `matmul` kernel and its exactness contract
//!
//! [`Tensor2::matmul`] (and [`Tensor2::matmul_into`]) execute through
//! the runtime-dispatched kernel backend ([`crate::kernels`]): the
//! register-blocked scalar reference by default, AVX2+FMA where the
//! host supports it (`GEN_NERF_KERNEL` selects). Every backend holds
//! one accumulator per output element and walks the shared dimension
//! `k` **in ascending order**; blocking tiles `i`/`j` only. Two
//! consequences the workspace relies on:
//!
//! * **Row independence.** Each output row depends only on the matching
//!   input row, so concatenating inputs row-wise (the fused cross-ray
//!   path) produces bit-for-bit the rows a per-row call would — under
//!   whichever backend is active.
//! * **Blocking is invisible.** Under the scalar backend the blocked
//!   kernel equals the naive triple loop bit-for-bit (pinned by a
//!   property test below). The AVX2 backend fuses each multiply-add
//!   (one rounding instead of two), so it matches scalar only to the
//!   tolerance pinned in [`crate::kernels`]'s parity tests.
//!
//! The dense kernel has no data-dependent branches; zero-skipping
//! survives only in the gradient-side [`Tensor2::t_matmul`], where
//! ReLU-masked rows make sparsity real.

use crate::kernels::{self, MicroKernel};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Rows per register tile of the blocked scalar `matmul` kernel
/// (re-exported from [`crate::kernels::scalar`]).
pub use crate::kernels::scalar::{MR, NR};

/// A dense, row-major 2D tensor of `f32`.
///
/// This is deliberately minimal: just the operations the Gen-NeRF models
/// need, each implemented straightforwardly so the FLOPs accounting in
/// [`crate::flops`] matches what actually executes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs` through the active dense kernel
    /// backend (see the module docs for the k-order exactness
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhs` written into `out` (resized as
    /// needed), so hot loops can reuse one scratch buffer instead of
    /// allocating a fresh tensor per product. Bit-identical to
    /// [`Tensor2::matmul`].
    ///
    /// This dispatched path runs through the ABFT integrity wrapper
    /// ([`crate::kernels::integrity`]): with `GEN_NERF_INTEGRITY` off
    /// (the default) that adds one relaxed atomic load; in `sample`/
    /// `full` mode elected calls verify their output rows against the
    /// row-checksum identity, recording miscompares in the process
    /// fault sink. The output values themselves are untouched either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) {
        self.matmul_prepare(rhs, out);
        kernels::integrity::checked_matmul(
            kernels::active(),
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// [`Tensor2::matmul_into`] through an explicit kernel, bypassing
    /// the integrity wrapper (tests and benchmarks compare backends
    /// this way; ordinary code uses the dispatched
    /// [`Tensor2::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul_into_with(&self, rhs: &Self, out: &mut Self, kernel: &dyn MicroKernel) {
        self.matmul_prepare(rhs, out);
        kernel.matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// Shared shape check + `out` resize of the `matmul_into` family.
    fn matmul_prepare(&self, rhs: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dims: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.rows = self.rows;
        out.cols = rhs.cols;
        // The kernel overwrites every element, so the resize fill value
        // never survives.
        out.data.resize(self.rows * rhs.cols, 0.0);
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// This is the gradient-side kernel (`xᵀ · ∂L/∂y` in
    /// `Linear::backward`); its inputs carry genuinely sparse rows
    /// (ReLU masks, padded tokens), so it keeps the zero-skip branch
    /// the dense forward kernel dropped.
    pub fn t_matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "t_matmul dims");
        let mut out = Self::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.cols, "matmul_t dims");
        let mut out = Self::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise map in place (the allocation-free sibling of
    /// [`Tensor2::map`]; identical arithmetic).
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard dims"
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Adds a 1×cols row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        let mut out = self.clone();
        out.add_row_broadcast_in_place(bias);
        out
    }

    /// Adds a 1×cols row vector to every row in place (the
    /// allocation-free sibling of [`Tensor2::add_row_broadcast`];
    /// identical arithmetic, through the active kernel backend).
    pub fn add_row_broadcast_in_place(&mut self, bias: &Self) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        kernels::active().add_bias_rows(&mut self.data, self.cols, &bias.data);
    }

    /// In-place ReLU (`v ← max(v, 0)`) through the active kernel
    /// backend — the vectorized sibling of
    /// `map_in_place(|v| v.max(0.0))`.
    pub fn relu_in_place(&mut self) {
        kernels::active().relu(&mut self.data);
    }

    /// Reshapes to `rows × cols` and fills with zeros, reusing the
    /// existing buffer — the reset step of a reused scratch tensor.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `0 × cols`, reusing the existing buffer — the reset
    /// step of a row-appended tensor (see
    /// [`Tensor2::push_row_zeroed`]).
    pub fn reset_rows(&mut self, cols: usize) {
        self.rows = 0;
        self.cols = cols;
        self.data.clear();
    }

    /// Appends one zeroed row and returns it for filling. Capacity is
    /// retained across [`Tensor2::reset_rows`] cycles, so a steady-state
    /// producer (e.g. an aggregation arena growing one stats row per
    /// sampled point) stops allocating once the buffer has grown.
    pub fn push_row_zeroed(&mut self) -> &mut [f32] {
        let start = self.data.len();
        self.data.resize(start + self.cols, 0.0);
        self.rows += 1;
        &mut self.data[start..]
    }

    /// Column-wise sum, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Fills the tensor with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Extracts rows `[start, end)` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks tensors vertically.
    ///
    /// # Panics
    ///
    /// Panics when widths disagree or `parts` is empty.
    pub fn vstack(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vstack width mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Self { rows, cols, data }
    }

    /// Concatenates tensors horizontally.
    ///
    /// # Panics
    ///
    /// Panics when heights disagree or `parts` is empty.
    pub fn hstack(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack height mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Tensor2> for &Tensor2 {
    type Output = Tensor2;
    fn add(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add dims");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Tensor2> for &Tensor2 {
    type Output = Tensor2;
    fn sub(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub dims");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f32> for &Tensor2 {
    type Output = Tensor2;
    fn mul(self, s: f32) -> Tensor2 {
        self.scale(s)
    }
}

impl fmt::Display for Tensor2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor2 {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Tensor2::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor2::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_rejects_mismatch() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Tensor2::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Tensor2::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!((&fast - &slow).norm() < 1e-5);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor2::from_fn(4, 3, |r, c| (r + 2 * c) as f32 * 0.3);
        let b = Tensor2::from_fn(5, 3, |r, c| r as f32 * 0.7 - c as f32);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!((&fast - &slow).norm() < 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor2::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let x = Tensor2::zeros(2, 3);
        let b = Tensor2::row_vector(vec![1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_collapses() {
        let x = Tensor2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.sum_rows().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn vstack_hstack_shapes() {
        let a = Tensor2::full(2, 3, 1.0);
        let b = Tensor2::full(1, 3, 2.0);
        let v = Tensor2::vstack(&[a.clone(), b]);
        assert_eq!((v.rows(), v.cols()), (3, 3));
        let c = Tensor2::full(2, 2, 3.0);
        let h = Tensor2::hstack(&[a, c]);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn slice_rows_extracts() {
        let a = Tensor2::from_fn(4, 2, |r, _| r as f32);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn mean_and_norm() {
        let a = Tensor2::from_vec(1, 4, vec![3.0, 4.0, 0.0, 1.0]);
        assert_eq!(a.mean(), 2.0);
        assert!((a.norm() - (26.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor2::from_vec(2, 2, vec![1.0]);
    }

    /// The textbook triple loop — the reference the blocked kernel
    /// must match bit-for-bit (no zero-skipping, k ascending).
    fn matmul_naive(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        assert_eq!(a.cols(), b.rows());
        let mut out = Tensor2::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let a = Tensor2::from_fn(5, 7, |r, c| ((r * 7 + c) as f32 * 0.37).sin());
        let b = Tensor2::from_fn(7, 3, |r, c| ((r + c) as f32 * 0.21).cos());
        let mut out = Tensor2::full(9, 9, f32::NAN); // wrong shape, poisoned
        a.matmul_into(&b, &mut out);
        assert_eq!((out.rows(), out.cols()), (5, 3));
        assert_eq!(out, a.matmul(&b));
        // Second use with a different shape reuses the same tensor.
        let c = Tensor2::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        b.matmul_into(&c, &mut out);
        assert_eq!((out.rows(), out.cols()), (7, 2));
        assert_eq!(out, b.matmul(&c));
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let x = Tensor2::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.7);
        let bias = Tensor2::row_vector((0..6).map(|c| c as f32 * 0.3 - 1.0).collect());
        let mut y = x.clone();
        y.add_row_broadcast_in_place(&bias);
        assert_eq!(y, x.add_row_broadcast(&bias));
        let mut z = x.clone();
        z.map_in_place(|v| v.max(0.0));
        assert_eq!(z, x.map(|v| v.max(0.0)));
    }

    #[test]
    fn reset_zeroed_reshapes_and_clears() {
        let mut t = Tensor2::full(2, 3, 7.0);
        t.reset_zeroed(4, 2);
        assert_eq!((t.rows(), t.cols()), (4, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn push_row_zeroed_grows_without_reallocating_after_reset() {
        let mut t = Tensor2::full(2, 3, 7.0);
        t.reset_rows(4);
        assert_eq!((t.rows(), t.cols()), (0, 4));
        t.push_row_zeroed().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.push_row_zeroed();
        assert_eq!(r, &[0.0; 4]);
        assert_eq!((t.rows(), t.cols()), (2, 4));
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0, 4.0]);
        // A reset + refill of the same shape must not reallocate.
        let cap_ptr = t.as_slice().as_ptr();
        t.reset_rows(4);
        t.push_row_zeroed();
        t.push_row_zeroed();
        assert_eq!(t.as_slice().as_ptr(), cap_ptr);
    }

    fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor2> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Tensor2::from_vec(rows, cols, v))
    }

    proptest! {
        #[test]
        fn prop_matmul_distributes_over_add(
            a in arb_tensor(3, 4),
            b in arb_tensor(4, 2),
            c in arb_tensor(4, 2),
        ) {
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!((&lhs - &rhs).norm() < 1e-3);
        }

        #[test]
        fn prop_transpose_of_product(
            a in arb_tensor(3, 4),
            b in arb_tensor(4, 2),
        ) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!((&lhs - &rhs).norm() < 1e-3);
        }

        #[test]
        fn prop_hadamard_commutative(a in arb_tensor(2, 5), b in arb_tensor(2, 5)) {
            prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
        }

        #[test]
        fn prop_sum_rows_preserves_total(a in arb_tensor(4, 3)) {
            prop_assert!((a.sum_rows().sum() - a.sum()).abs() < 1e-3);
        }

        #[test]
        fn prop_blocked_matmul_matches_naive_bitwise(
            m in 1usize..11,
            k in 1usize..19,
            n in 1usize..23,
            raw in proptest::collection::vec(-6.0f32..6.0, 11 * 19 + 19 * 23),
        ) {
            // Arbitrary shapes spanning partial MR×NR edge tiles, with
            // exact zeros injected so the branchless kernel is checked
            // where the old zero-skip branch used to fire. The bitwise
            // claim is the *scalar* backend's contract, so pin that
            // kernel explicitly (the active backend may be SIMD, whose
            // FMA rounding legitimately differs — see crate::kernels).
            let sparsify = |v: f32| if v.abs() < 1.5 { 0.0 } else { v };
            let a = Tensor2::from_fn(m, k, |r, c| sparsify(raw[r * k + c]));
            let b = Tensor2::from_fn(k, n, |r, c| sparsify(raw[11 * 19 + r * n + c]));
            let mut blocked = Tensor2::zeros(0, 0);
            a.matmul_into_with(
                &b,
                &mut blocked,
                kernels::kernel_for(kernels::Backend::Scalar),
            );
            let naive = matmul_naive(&a, &b);
            let lb: Vec<u32> = blocked.as_slice().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = naive.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(lb, rb, "blocked != naive for {}x{}x{}", m, k, n);
        }

        #[test]
        fn prop_fused_rows_equal_per_row_calls(
            rows in 1usize..9,
            raw in proptest::collection::vec(-3.0f32..3.0, 9 * 5),
        ) {
            // The row-independence half of the bit-exactness contract:
            // multiplying a stacked input equals stacking per-row
            // products (what makes fused cross-ray inference exact).
            let w = Tensor2::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.77).sin());
            let x = Tensor2::from_fn(rows, 5, |r, c| raw[r * 5 + c]);
            let fused = x.matmul(&w);
            for r in 0..rows {
                let single = x.slice_rows(r, r + 1).matmul(&w);
                let fb: Vec<u32> = fused.row(r).iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u32> = single.row(0).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&fb, &sb, "row {} diverged", r);
            }
        }
    }
}
