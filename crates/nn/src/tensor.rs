//! A row-major 2D `f32` tensor.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major 2D tensor of `f32`.
///
/// This is deliberately minimal: just the operations the Gen-NeRF models
/// need, each implemented straightforwardly so the FLOPs accounting in
/// [`crate::flops`] matches what actually executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dims: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "t_matmul dims");
        let mut out = Self::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.cols, "matmul_t dims");
        let mut out = Self::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard dims"
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Adds a 1×cols row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Column-wise sum, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Fills the tensor with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Extracts rows `[start, end)` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks tensors vertically.
    ///
    /// # Panics
    ///
    /// Panics when widths disagree or `parts` is empty.
    pub fn vstack(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vstack width mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Self { rows, cols, data }
    }

    /// Concatenates tensors horizontally.
    ///
    /// # Panics
    ///
    /// Panics when heights disagree or `parts` is empty.
    pub fn hstack(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack height mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Tensor2> for &Tensor2 {
    type Output = Tensor2;
    fn add(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add dims");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Tensor2> for &Tensor2 {
    type Output = Tensor2;
    fn sub(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub dims");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f32> for &Tensor2 {
    type Output = Tensor2;
    fn mul(self, s: f32) -> Tensor2 {
        self.scale(s)
    }
}

impl fmt::Display for Tensor2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor2 {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor2::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Tensor2::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor2::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_rejects_mismatch() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Tensor2::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Tensor2::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!((&fast - &slow).norm() < 1e-5);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor2::from_fn(4, 3, |r, c| (r + 2 * c) as f32 * 0.3);
        let b = Tensor2::from_fn(5, 3, |r, c| r as f32 * 0.7 - c as f32);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!((&fast - &slow).norm() < 1e-4);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor2::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let x = Tensor2::zeros(2, 3);
        let b = Tensor2::row_vector(vec![1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_collapses() {
        let x = Tensor2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.sum_rows().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn vstack_hstack_shapes() {
        let a = Tensor2::full(2, 3, 1.0);
        let b = Tensor2::full(1, 3, 2.0);
        let v = Tensor2::vstack(&[a.clone(), b]);
        assert_eq!((v.rows(), v.cols()), (3, 3));
        let c = Tensor2::full(2, 2, 3.0);
        let h = Tensor2::hstack(&[a, c]);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn slice_rows_extracts() {
        let a = Tensor2::from_fn(4, 2, |r, _| r as f32);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn mean_and_norm() {
        let a = Tensor2::from_vec(1, 4, vec![3.0, 4.0, 0.0, 1.0]);
        assert_eq!(a.mean(), 2.0);
        assert!((a.norm() - (26.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor2::from_vec(2, 2, vec![1.0]);
    }

    fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor2> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Tensor2::from_vec(rows, cols, v))
    }

    proptest! {
        #[test]
        fn prop_matmul_distributes_over_add(
            a in arb_tensor(3, 4),
            b in arb_tensor(4, 2),
            c in arb_tensor(4, 2),
        ) {
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!((&lhs - &rhs).norm() < 1e-3);
        }

        #[test]
        fn prop_transpose_of_product(
            a in arb_tensor(3, 4),
            b in arb_tensor(4, 2),
        ) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!((&lhs - &rhs).norm() < 1e-3);
        }

        #[test]
        fn prop_hadamard_commutative(a in arb_tensor(2, 5), b in arb_tensor(2, 5)) {
            prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
        }

        #[test]
        fn prop_sum_rows_preserves_total(a in arb_tensor(4, 3)) {
            prop_assert!((a.sum_rows().sum() - a.sum()).abs() < 1e-3);
        }
    }
}
