//! Single-head self-attention — the *ray transformer* baseline.
//!
//! SOTA generalizable NeRFs (IBRNet and follow-ups) run a transformer
//! over the density features of all points on a ray to contextualize
//! density prediction (paper Sec. 2.2, Step 4). Gen-NeRF replaces it
//! with the Ray-Mixer; both must exist here so the ablation of Tab. 2
//! and the workload-heterogeneity argument of Fig. 2 can be reproduced.

use crate::init::Rng;
use crate::kernels;
use crate::layers::{softmax_rows, softmax_rows_backward, Linear, Param};
use crate::tensor::Tensor2;
use serde::{Deserialize, Serialize};

/// Reusable buffers for the batched inference path
/// ([`SelfAttention::forward_inference_batch_into`]): one instance per
/// long-lived render worker replaces the seven fresh `Tensor2`
/// allocations the per-ray `forward_inference` pays per call.
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    x_all: Tensor2,
    q: Tensor2,
    k: Tensor2,
    v: Tensor2,
    scores: Tensor2,
    ctx_all: Tensor2,
    /// The stacked output of the latest
    /// [`SelfAttention::forward_inference_batch_into`] (one row per
    /// input token, sequence-major in input order).
    pub out: Tensor2,
}

/// Single-head self-attention with a residual connection:
/// `Y = X + softmax(XWq (XWk)ᵀ / √d_k) · XWv · Wo`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    head_dim: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AttnCache {
    q: Tensor2,
    k: Tensor2,
    v: Tensor2,
    attn: Tensor2,
}

impl SelfAttention {
    /// Creates an attention block over `dim`-wide tokens with a
    /// `head_dim`-wide head.
    pub fn new(dim: usize, head_dim: usize, rng: &mut Rng) -> Self {
        Self {
            wq: Linear::new(dim, head_dim, rng),
            wk: Linear::new(dim, head_dim, rng),
            wv: Linear::new(dim, head_dim, rng),
            wo: Linear::new(head_dim, dim, rng),
            head_dim,
            cache: None,
        }
    }

    /// Token width.
    pub fn dim(&self) -> usize {
        self.wq.in_dim()
    }

    /// Forward pass over `x` (`n_tokens × dim`).
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scores = q.matmul_t(&k).scale(scale);
        let attn = softmax_rows(&scores);
        let ctx = attn.matmul(&v);
        let y = self.wo.forward(&ctx);
        self.cache = Some(AttnCache { q, k, v, attn });
        &y + x
    }

    /// Forward pass without caching (inference only) — the `&self`
    /// path render workers share across threads.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let q = self.wq.forward_inference(x);
        let k = self.wk.forward_inference(x);
        let v = self.wv.forward_inference(x);
        let attn = softmax_rows(&q.matmul_t(&k).scale(scale));
        let y = self.wo.forward_inference(&attn.matmul(&v));
        &y + x
    }

    /// Fused inference over many independent token sequences (the
    /// rays of a chunk): the row-independent phases — the q/k/v input
    /// projections and the output projection + residual — each run as
    /// **one** GEMM over all sequences stacked row-wise, while the
    /// intrinsically per-sequence attention core (scores, softmax,
    /// context) runs per sequence over slices of the stacked
    /// activations. Temporaries live in `scratch`; the result lands in
    /// `scratch.out`, sequence-major in input order.
    ///
    /// Per-sequence output rows are **bit-identical** to calling
    /// [`SelfAttention::forward_inference`] on each sequence under the
    /// same kernel backend: GEMM rows are independent of their batch
    /// (the kernel contract), and the per-sequence phases replay the
    /// reference arithmetic exactly.
    pub fn forward_inference_batch_into(&self, xs: &[&Tensor2], scratch: &mut AttnScratch) {
        let dim = self.dim();
        let dk = self.head_dim;
        let total: usize = xs.iter().map(|x| x.rows()).sum();
        scratch.out.reset_zeroed(total, dim);
        if total == 0 {
            return;
        }
        // Stack every sequence's tokens into one input tensor, then
        // run each input projection as a single GEMM.
        scratch.x_all.reset_zeroed(total, dim);
        let mut r = 0;
        for x in xs {
            assert_eq!(x.cols(), dim, "attention input width mismatch");
            for i in 0..x.rows() {
                scratch.x_all.row_mut(r).copy_from_slice(x.row(i));
                r += 1;
            }
        }
        self.wq.forward_into(&scratch.x_all, &mut scratch.q);
        self.wk.forward_into(&scratch.x_all, &mut scratch.k);
        self.wv.forward_into(&scratch.x_all, &mut scratch.v);

        // Attention core, per sequence over stacked-row slices.
        let scale = 1.0 / (dk as f32).sqrt();
        scratch.ctx_all.reset_zeroed(total, dk);
        let kern = kernels::active();
        let mut off = 0;
        for x in xs {
            let n = x.rows();
            if n == 0 {
                continue;
            }
            // scores = (Q_i · K_iᵀ) · scale — per element an
            // ascending-t dot product followed by one multiply,
            // matching `matmul_t(..).scale(scale)` bit-for-bit.
            scratch.scores.reset_zeroed(n, n);
            for rr in 0..n {
                let q_row = scratch.q.row(off + rr);
                for cc in 0..n {
                    let k_row = scratch.k.row(off + cc);
                    let mut acc = 0.0f32;
                    for (qv, kv) in q_row.iter().zip(k_row) {
                        acc += qv * kv;
                    }
                    scratch.scores[(rr, cc)] = acc * scale;
                }
            }
            kern.softmax_rows(scratch.scores.as_mut_slice(), n);
            // ctx_i = attn · V_i — the same dispatched GEMM the
            // reference `attn.matmul(&v)` runs, on the stacked slice.
            kern.matmul(
                scratch.scores.as_slice(),
                &scratch.v.as_slice()[off * dk..(off + n) * dk],
                &mut scratch.ctx_all.as_mut_slice()[off * dk..(off + n) * dk],
                n,
                n,
                dk,
            );
            off += n;
        }

        // Output projection as one GEMM, then the residual (an exact
        // element-wise add, identical to the reference `&y + x`).
        self.wo.forward_into(&scratch.ctx_all, &mut scratch.out);
        for (o, &xv) in scratch
            .out
            .as_mut_slice()
            .iter_mut()
            .zip(scratch.x_all.as_slice())
        {
            *o += xv;
        }
    }

    /// Allocating wrapper around
    /// [`SelfAttention::forward_inference_batch_into`]: returns the
    /// stacked output (one row per input token, sequence-major).
    pub fn forward_inference_batch(&self, xs: &[&Tensor2]) -> Tensor2 {
        let mut scratch = AttnScratch::default();
        self.forward_inference_batch_into(xs, &mut scratch);
        scratch.out
    }

    /// Backward pass; accumulates parameter gradients and returns
    /// `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        let cache = self
            .cache
            .take()
            .expect("SelfAttention::backward before forward");
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Residual.
        let mut grad_x = grad_out.clone();
        // Through Wo.
        let g_ctx = self.wo.backward(grad_out);
        // ctx = attn · v
        let g_attn = g_ctx.matmul_t(&cache.v);
        let g_v = cache.attn.t_matmul(&g_ctx);
        // attn = softmax(scores)
        let g_scores = softmax_rows_backward(&cache.attn, &g_attn).scale(scale);
        // scores(pre-scale) = q · kᵀ
        let g_q = g_scores.matmul(&cache.k);
        let g_k = g_scores.t_matmul(&cache.q);
        grad_x = &grad_x + &self.wq.backward(&g_q);
        grad_x = &grad_x + &self.wk.backward(&g_k);
        grad_x = &grad_x + &self.wv.backward(&g_v);
        grad_x
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.wq.params_mut());
        out.extend(self.wk.params_mut());
        out.extend(self.wv.params_mut());
        out.extend(self.wo.params_mut());
        out
    }

    /// FLOPs for a sequence of `n` tokens (the quadratic attention cost
    /// that makes the ray transformer workload-heterogeneous).
    pub fn flops(&self, n: usize) -> u64 {
        let d = self.dim();
        let dk = self.head_dim;
        let proj = 3 * 2 * n * d * dk + 2 * n * dk * d; // q,k,v,o projections
        let attn = 2 * n * n * dk /* qkᵀ */ + 2 * n * n * dk /* attn·v */ + 5 * n * n /* softmax */;
        (proj + attn) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::mse_loss;

    #[test]
    fn forward_shape_preserved() {
        let mut rng = Rng::seed_from(11);
        let mut attn = SelfAttention::new(8, 4, &mut rng);
        let x = Tensor2::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.13).sin());
        let y = attn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (6, 8));
        assert!(y.is_finite());
    }

    #[test]
    fn attention_mixes_across_tokens() {
        let mut rng = Rng::seed_from(12);
        let mut attn = SelfAttention::new(4, 4, &mut rng);
        // Two inputs identical except in token 0; outputs must differ in
        // *other* tokens too (information flows along the ray).
        let x1 = Tensor2::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1);
        let mut x2 = x1.clone();
        x2[(0, 0)] += 2.0;
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        let row3_diff: f32 = (0..4).map(|c| (y1[(3, c)] - y2[(3, c)]).abs()).sum();
        assert!(row3_diff > 1e-5, "no cross-token flow: {row3_diff}");
    }

    #[test]
    fn gradcheck_input() {
        let mut rng = Rng::seed_from(13);
        let mut attn = SelfAttention::new(5, 3, &mut rng);
        let mut x = Tensor2::from_fn(4, 5, |r, c| ((r * 5 + c) as f32 * 0.29).sin() * 0.5);
        let target = Tensor2::zeros(4, 5);

        let y = attn.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let gin = attn.backward(&g);
        let analytic: Vec<f32> = gin.as_slice().to_vec();

        let eps = 1e-2;
        for i in (0..analytic.len()).step_by(3) {
            let (r, c) = (i / 5, i % 5);
            let orig = x[(r, c)];
            x[(r, c)] = orig + eps;
            let lp = mse_loss(&attn.forward(&x), &target).0;
            x[(r, c)] = orig - eps;
            let lm = mse_loss(&attn.forward(&x), &target).0;
            x[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL * 2.5,
                "x[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradcheck_weight() {
        let mut rng = Rng::seed_from(14);
        let mut attn = SelfAttention::new(4, 2, &mut rng);
        let x = Tensor2::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.41).cos() * 0.7);
        let target = Tensor2::full(3, 4, 0.25);

        for p in attn.params_mut() {
            p.zero_grad();
        }
        let y = attn.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let _ = attn.backward(&g);
        // Check the first few entries of Wq's gradient.
        let analytic: Vec<f32> = attn.wq.w.grad.as_slice().to_vec();

        let eps = 1e-2;
        for i in 0..4 {
            let cols = attn.wq.w.value.cols();
            let (r, c) = (i / cols, i % cols);
            let orig = attn.wq.w.value[(r, c)];
            attn.wq.w.value[(r, c)] = orig + eps;
            let lp = mse_loss(&attn.forward(&x), &target).0;
            attn.wq.w.value[(r, c)] = orig - eps;
            let lm = mse_loss(&attn.forward(&x), &target).0;
            attn.wq.w.value[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL * 2.5,
                "wq[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn batched_inference_matches_per_sequence_bitwise() {
        // The fused q/k/v/o contract: stacking sequences changes
        // nothing, bit-for-bit, including empty sequences in the batch
        // and reused scratch buffers across calls.
        let mut rng = Rng::seed_from(19);
        let attn = SelfAttention::new(7, 4, &mut rng);
        let seqs: Vec<Tensor2> = [5usize, 1, 0, 12, 3]
            .iter()
            .map(|&n| Tensor2::from_fn(n, 7, |r, c| ((r * 7 + c) as f32 * 0.23).sin() * 1.7))
            .collect();
        let refs: Vec<&Tensor2> = seqs.iter().collect();
        let mut scratch = AttnScratch::default();
        for round in 0..2 {
            attn.forward_inference_batch_into(&refs, &mut scratch);
            let mut off = 0;
            for (i, x) in seqs.iter().enumerate() {
                let single = attn.forward_inference(x);
                for r in 0..x.rows() {
                    let sb: Vec<u32> = single.row(r).iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u32> = scratch
                        .out
                        .row(off + r)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(sb, bb, "round {round}, seq {i}, row {r} diverged");
                }
                off += x.rows();
            }
            assert_eq!(off, scratch.out.rows());
        }
    }

    #[test]
    fn flops_grow_quadratically_with_tokens() {
        let mut rng = Rng::seed_from(15);
        let attn = SelfAttention::new(16, 16, &mut rng);
        let f1 = attn.flops(32) as f64;
        let f2 = attn.flops(64) as f64;
        // Projection part is linear, attention part quadratic; doubling
        // tokens must more than double the cost.
        assert!(f2 > 2.0 * f1, "f1={f1} f2={f2}");
    }

    #[test]
    fn training_reduces_loss() {
        use crate::optim::Adam;
        let mut rng = Rng::seed_from(16);
        let mut attn = SelfAttention::new(6, 4, &mut rng);
        let x = Tensor2::from_fn(5, 6, |r, c| ((r * 6 + c) as f32 * 0.17).sin());
        let target = Tensor2::from_fn(5, 6, |r, c| ((r * 6 + c) as f32 * 0.17).sin() * 0.5 + 0.1);
        let mut adam = Adam::new(1e-2);
        let (first, _) = mse_loss(&attn.forward(&x), &target);
        let mut last = first;
        for _ in 0..60 {
            for p in attn.params_mut() {
                p.zero_grad();
            }
            let y = attn.forward(&x);
            let (loss, g) = mse_loss(&y, &target);
            attn.backward(&g);
            adam.step(&mut attn.params_mut());
            last = loss;
        }
        assert!(
            last < first * 0.2,
            "training failed: first={first} last={last}"
        );
    }
}
