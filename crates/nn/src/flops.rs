//! FLOPs accounting.
//!
//! Every efficiency number in the paper's tables (MFLOPs/pixel in
//! Tabs. 2–3, the 0.328 TFLOPs workload of Sec. 5.1, the 13.8%-of-FLOPs
//! ray-transformer share of Sec. 2.3) is a FLOPs count; this module
//! centralizes the counting conventions so model code and the tables
//! agree: one multiply–accumulate = 2 FLOPs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// FLOPs of a dense layer on `n` rows.
pub fn linear(n: usize, in_dim: usize, out_dim: usize) -> u64 {
    (2 * n * in_dim * out_dim + n * out_dim) as u64
}

/// FLOPs of single-head self-attention over `n` tokens of width `d`
/// with head width `dk`.
pub fn attention(n: usize, d: usize, dk: usize) -> u64 {
    let proj = 3 * 2 * n * d * dk + 2 * n * dk * d;
    let attn = 2 * n * n * dk + 2 * n * n * dk + 5 * n * n;
    (proj + attn) as u64
}

/// FLOPs of the Ray-Mixer over `n` points of width `d`.
pub fn mixer(n: usize, d: usize) -> u64 {
    (2 * n * n * d + 2 * n * d * d + 2 * n * d) as u64
}

/// FLOPs of bilinearly interpolating `n` fetches of `d`-wide features:
/// 4 taps, 3 multiply–adds per channel plus weight computation.
pub fn bilinear_fetch(n: usize, d: usize) -> u64 {
    (n * (8 * d + 12)) as u64
}

/// FLOPs of compositing `n` samples with the volume-rendering
/// quadrature (Eq. 2): per sample, one `exp`, a transmittance update and
/// a weighted color accumulation (counting `exp` as 4 FLOPs).
pub fn volume_render(n: usize) -> u64 {
    (n * 12) as u64
}

/// A labelled FLOPs accumulator used to build latency/compute
/// breakdowns (Fig. 2's stacked bars).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlopsCounter {
    buckets: BTreeMap<String, u64>,
}

impl FlopsCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `flops` to the named bucket.
    pub fn add(&mut self, bucket: &str, flops: u64) {
        *self.buckets.entry(bucket.to_string()).or_insert(0) += flops;
    }

    /// Total across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// The count in one bucket (0 if absent).
    pub fn get(&self, bucket: &str) -> u64 {
        self.buckets.get(bucket).copied().unwrap_or(0)
    }

    /// Fraction of the total contributed by `bucket` (0 when empty).
    pub fn fraction(&self, bucket: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }

    /// Iterates `(bucket, flops)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.buckets {
            *self.buckets.entry(k.clone()).or_insert(0) += v;
        }
    }
}

impl fmt::Display for FlopsCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FLOPs total: {}", self.total())?;
        for (k, v) in &self.buckets {
            writeln!(f, "  {k:<24} {v:>14}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_layer() {
        use crate::init::Rng;
        use crate::layers::Linear as L;
        let mut rng = Rng::seed_from(31);
        let l = L::new(48, 24, &mut rng);
        assert_eq!(l.flops(7), linear(7, 48, 24));
    }

    #[test]
    fn attention_matches_module() {
        use crate::attention::SelfAttention;
        use crate::init::Rng;
        let mut rng = Rng::seed_from(32);
        let a = SelfAttention::new(16, 8, &mut rng);
        assert_eq!(a.flops(20), attention(20, 16, 8));
    }

    #[test]
    fn mixer_matches_module() {
        use crate::init::Rng;
        use crate::mixer::RayMixer;
        let mut rng = Rng::seed_from(33);
        let m = RayMixer::new(32, 12, &mut rng);
        assert_eq!(m.flops(), mixer(32, 12));
    }

    #[test]
    fn counter_accumulates_and_fractions() {
        let mut c = FlopsCounter::new();
        c.add("mlp", 75);
        c.add("mlp", 25);
        c.add("attn", 100);
        assert_eq!(c.total(), 200);
        assert_eq!(c.get("mlp"), 100);
        assert!((c.fraction("attn") - 0.5).abs() < 1e-12);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn counter_merge() {
        let mut a = FlopsCounter::new();
        a.add("x", 10);
        let mut b = FlopsCounter::new();
        b.add("x", 5);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 15);
        assert_eq!(a.get("y"), 7);
    }

    #[test]
    fn empty_counter_fraction_is_zero() {
        assert_eq!(FlopsCounter::new().fraction("anything"), 0.0);
    }

    #[test]
    fn attention_quadratic_mixer_saves_at_high_dim() {
        // For equal n and d = dk, attention adds softmax + projection
        // overhead on top of mixer-like GEMMs.
        let n = 64;
        let d = 32;
        assert!(attention(n, d, d) > mixer(n, d));
    }
}
