//! Neural-network layers with explicit forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward` and
//! accumulates parameter gradients during `backward`. Training loops
//! zero gradients, run forward/backward, then hand each [`Param`] to an
//! optimizer from [`crate::optim`].

use crate::init::Rng;
use crate::tensor::Tensor2;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value, gradient accumulator and Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor2,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor2,
    /// Adam first-moment state.
    pub m: Tensor2,
    /// Adam second-moment state.
    pub v: Tensor2,
}

impl Param {
    /// Wraps a value with zeroed gradient and optimizer state.
    pub fn new(value: Tensor2) -> Self {
        let grad = Tensor2::zeros(value.rows(), value.cols());
        Self {
            m: grad.clone(),
            v: grad.clone(),
            grad,
            value,
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A fully connected layer `y = x·W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Param,
    /// Bias row vector, `1 × out_dim`.
    pub b: Param,
    cache_input: Option<Tensor2>,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            w: Param::new(rng.kaiming(in_dim, out_dim)),
            b: Param::new(Tensor2::zeros(1, out_dim)),
            cache_input: None,
        }
    }

    /// Builds a layer from explicit weights (used by channel pruning).
    ///
    /// # Panics
    ///
    /// Panics when `b` is not a `1 × w.cols()` row vector.
    pub fn from_weights(w: Tensor2, b: Tensor2) -> Self {
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), w.cols(), "bias width must match weight columns");
        Self {
            w: Param::new(w),
            b: Param::new(b),
            cache_input: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass; caches the input for `backward`.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let y = self.forward_inference(x);
        self.cache_input = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass written into a reusable scratch tensor (resized as
    /// needed) — bit-identical to [`Linear::forward_inference`] but
    /// allocation-free once `out`'s buffer has grown to size. This is
    /// what lets the fused render path stop allocating a fresh tensor
    /// per layer per ray.
    pub fn forward_into(&self, x: &Tensor2, out: &mut Tensor2) {
        x.matmul_into(&self.w.value, out);
        out.add_row_broadcast_in_place(&self.b.value);
    }

    /// Backward pass: accumulates `∂L/∂W`, `∂L/∂b` and returns
    /// `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        let x = self
            .cache_input
            .as_ref()
            .expect("Linear::backward before forward");
        self.w.grad = &self.w.grad + &x.t_matmul(grad_out);
        self.b.grad = &self.b.grad + &grad_out.sum_rows();
        grad_out.matmul_t(&self.w.value)
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Multiply–accumulate count for a batch of `n` rows.
    pub fn flops(&self, n: usize) -> u64 {
        // One MAC = 2 FLOPs; plus the bias add.
        (2 * self.in_dim() * self.out_dim() * n + self.out_dim() * n) as u64
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Option<Tensor2>,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the activation mask.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        self.mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        self.forward_inference(x)
    }

    /// Forward pass without caching (inference only) — usable through
    /// `&self`, so shared references to a model are `Sync`-safe across
    /// render worker threads. Runs through the active kernel backend.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.clone();
        y.relu_in_place();
        y
    }

    /// In-place inference forward — bit-identical to
    /// [`Relu::forward_inference`], for scratch-buffer pipelines.
    pub fn forward_inference_in_place(&self, x: &mut Tensor2) {
        x.relu_in_place();
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&self, grad_out: &Tensor2) -> Tensor2 {
        grad_out.hadamard(self.mask.as_ref().expect("Relu::backward before forward"))
    }
}

/// Logistic sigmoid.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sigmoid {
    out: Option<Tensor2>,
}

impl Sigmoid {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the output.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let y = self.forward_inference(x);
        self.out = Some(y.clone());
        y
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        x.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Backward pass: `g · y · (1 − y)`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&self, grad_out: &Tensor2) -> Tensor2 {
        let y = self.out.as_ref().expect("Sigmoid::backward before forward");
        grad_out.hadamard(&y.map(|v| v * (1.0 - v)))
    }
}

/// Row-wise layer normalization with learnable scale and shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Learnable scale, `1 × dim`.
    pub gamma: Param,
    /// Learnable shift, `1 × dim`.
    pub beta: Param,
    eps: f32,
    cache: Option<(Tensor2, Vec<f32>)>, // normalized x̂ and per-row inv-std
}

impl LayerNorm {
    /// Creates a layer with unit scale and zero shift.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Tensor2::full(1, dim, 1.0)),
            beta: Param::new(Tensor2::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let (n, d) = (x.rows(), x.cols());
        let mut xhat = Tensor2::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for c in 0..d {
                xhat[(r, c)] = (row[c] - mean) * inv_std;
            }
        }
        let mut y = Tensor2::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                y[(r, c)] = xhat[(r, c)] * self.gamma.value[(0, c)] + self.beta.value[(0, c)];
            }
        }
        self.cache = Some((xhat, inv_stds));
        y
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        let (xhat, inv_stds) = self
            .cache
            .as_ref()
            .expect("LayerNorm::backward before forward");
        let (n, d) = (grad_out.rows(), grad_out.cols());
        let mut grad_in = Tensor2::zeros(n, d);
        for r in 0..n {
            // dL/dx̂ = g ⊙ γ
            let mut gxhat = vec![0.0f32; d];
            for c in 0..d {
                gxhat[c] = grad_out[(r, c)] * self.gamma.value[(0, c)];
                self.gamma.grad[(0, c)] += grad_out[(r, c)] * xhat[(r, c)];
                self.beta.grad[(0, c)] += grad_out[(r, c)];
            }
            let sum_g: f32 = gxhat.iter().sum();
            let sum_gx: f32 = gxhat.iter().zip(xhat.row(r)).map(|(g, x)| g * x).sum();
            let inv_std = inv_stds[r];
            for c in 0..d {
                grad_in[(r, c)] =
                    inv_std / d as f32 * (d as f32 * gxhat[c] - sum_g - xhat[(r, c)] * sum_gx);
            }
        }
        grad_in
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Row-wise softmax (numerically stabilized), through the active
/// kernel backend.
pub fn softmax_rows(x: &Tensor2) -> Tensor2 {
    let mut y = x.clone();
    softmax_rows_in_place(&mut y);
    y
}

/// In-place sibling of [`softmax_rows`] — identical arithmetic, no
/// allocation.
pub fn softmax_rows_in_place(x: &mut Tensor2) {
    let cols = x.cols();
    crate::kernels::active().softmax_rows(x.as_mut_slice(), cols);
}

/// Backward of [`softmax_rows`] given its output `y` and upstream
/// gradient: `gᵢ = yᵢ (ĝᵢ − Σⱼ ĝⱼ yⱼ)` per row.
pub fn softmax_rows_backward(y: &Tensor2, grad_out: &Tensor2) -> Tensor2 {
    let mut grad_in = Tensor2::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let dot: f32 = y
            .row(r)
            .iter()
            .zip(grad_out.row(r))
            .map(|(a, b)| a * b)
            .sum();
        for c in 0..y.cols() {
            grad_in[(r, c)] = y[(r, c)] * (grad_out[(r, c)] - dot);
        }
    }
    grad_in
}

/// Mean-squared-error loss; returns `(loss, ∂L/∂pred)`.
///
/// # Panics
///
/// Panics when shapes disagree or tensors are empty.
pub fn mse_loss(pred: &Tensor2, target: &Tensor2) -> (f32, Tensor2) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let diff = pred - target;
    let n = pred.len() as f32;
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar loss w.r.t. a
    /// parameter tensor accessed through closures.
    fn grad_check(
        mut loss_fn: impl FnMut() -> f32,
        get_set: &mut dyn FnMut(Option<f32>, usize) -> f32,
        analytic: &[f32],
        n_check: usize,
    ) {
        let eps = 1e-2;
        for i in 0..n_check.min(analytic.len()) {
            let orig = get_set(None, i);
            get_set(Some(orig + eps), i);
            let lp = loss_fn();
            get_set(Some(orig - eps), i);
            let lm = loss_fn();
            get_set(Some(orig), i);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[i];
            let denom = numeric.abs().max(a.abs()).max(1e-3);
            assert!(
                ((numeric - a) / denom).abs() < crate::GRAD_CHECK_TOL,
                "param {i}: numeric={numeric} analytic={a}"
            );
        }
    }

    #[test]
    fn linear_forward_shape_and_values() {
        let mut rng = Rng::seed_from(1);
        let mut l = Linear::new(3, 2, &mut rng);
        // Overwrite with known weights.
        l.w.value = Tensor2::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        l.b.value = Tensor2::row_vector(vec![0.5, -0.5]);
        let x = Tensor2::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[1.0 + 3.0 + 0.5, 2.0 + 3.0 - 0.5]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = Rng::seed_from(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor2::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let target = Tensor2::from_fn(5, 3, |r, c| ((r + c) as f32 * 0.21).cos());

        // Analytic gradients.
        l.w.zero_grad();
        l.b.zero_grad();
        let y = l.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let _ = l.backward(&g);
        let wg: Vec<f32> = l.w.grad.as_slice().to_vec();

        let mut w = l.w.value.clone();
        let b = l.b.value.clone();
        let eval = |wt: &Tensor2| {
            let y = x.matmul(wt).add_row_broadcast(&b);
            mse_loss(&y, &target).0
        };
        let analytic = wg.clone();
        let eps = 1e-2;
        let cols = w.cols();
        for i in 0..8 {
            let (r, c) = (i / cols, i % cols);
            let orig = w[(r, c)];
            w[(r, c)] = orig + eps;
            let lp = eval(&w);
            w[(r, c)] = orig - eps;
            let lm = eval(&w);
            w[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[i];
            let denom = numeric.abs().max(a.abs()).max(1e-3);
            assert!(
                ((numeric - a) / denom).abs() < crate::GRAD_CHECK_TOL,
                "w[{i}]: numeric={numeric} analytic={a}"
            );
        }
    }

    #[test]
    fn linear_input_gradcheck() {
        let mut rng = Rng::seed_from(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let mut x = Tensor2::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.4);
        let target = Tensor2::zeros(2, 2);
        let y = l.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let gin = l.backward(&g);
        let analytic: Vec<f32> = gin.as_slice().to_vec();

        let eps = 1e-2;
        for i in 0..analytic.len() {
            let (r, c) = (i / 3, i % 3);
            let orig = x[(r, c)];
            x[(r, c)] = orig + eps;
            let lp = mse_loss(&l.forward_inference(&x), &target).0;
            x[(r, c)] = orig - eps;
            let lm = mse_loss(&l.forward_inference(&x), &target).0;
            x[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL,
                "x[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn forward_into_matches_forward_inference_bitwise() {
        let mut rng = Rng::seed_from(5);
        let l = Linear::new(6, 4, &mut rng);
        let relu = Relu::new();
        let x = Tensor2::from_fn(9, 6, |r, c| ((r * 6 + c) as f32 * 0.43).sin() * 2.0);
        let fresh = relu.forward_inference(&l.forward_inference(&x));
        let mut scratch = Tensor2::full(1, 1, f32::NAN);
        l.forward_into(&x, &mut scratch);
        relu.forward_inference_in_place(&mut scratch);
        let fb: Vec<u32> = fresh.as_slice().iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u32> = scratch.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, sb);
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor2::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor2::full(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor2::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
        let g = s.backward(&Tensor2::full(1, 3, 1.0));
        // Max derivative at 0 is 0.25.
        assert!((g.as_slice()[1] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[0] < 1e-4);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8);
        let x = Tensor2::from_fn(3, 8, |r, c| (r * 8 + c) as f32 * 1.7 + 3.0);
        let y = ln.forward(&x);
        for r in 0..3 {
            let mean = y.row(r).iter().sum::<f32>() / 8.0;
            let var = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_input_gradcheck() {
        let mut ln = LayerNorm::new(5);
        let mut x = Tensor2::from_fn(2, 5, |r, c| ((r * 5 + c) as f32 * 0.61).sin() * 2.0);
        let target = Tensor2::from_fn(2, 5, |r, c| ((r + 2 * c) as f32 * 0.3).cos());
        let y = ln.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        ln.gamma.zero_grad();
        ln.beta.zero_grad();
        let gin = ln.backward(&g);
        let analytic: Vec<f32> = gin.as_slice().to_vec();

        let eps = 1e-2;
        for i in 0..analytic.len() {
            let (r, c) = (i / 5, i % 5);
            let orig = x[(r, c)];
            x[(r, c)] = orig + eps;
            let lp = mse_loss(&ln.forward(&x), &target).0;
            x[(r, c)] = orig - eps;
            let lm = mse_loss(&ln.forward(&x), &target).0;
            x[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL * 2.0,
                "x[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor2::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.8);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let x = Tensor2::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let shifted = x.map(|v| v + 100.0);
        let a = softmax_rows(&x);
        let b = softmax_rows(&shifted);
        assert!((&a - &b).norm() < 1e-5);
    }

    #[test]
    fn softmax_backward_gradcheck() {
        let mut x = Tensor2::from_vec(2, 4, vec![0.3, -0.7, 1.1, 0.2, -0.5, 0.9, 0.0, 0.4]);
        let target = Tensor2::from_vec(2, 4, vec![0.2, 0.3, 0.1, 0.4, 0.25, 0.25, 0.25, 0.25]);
        let y = softmax_rows(&x);
        let (_, g) = mse_loss(&y, &target);
        let gin = softmax_rows_backward(&y, &g);
        let analytic: Vec<f32> = gin.as_slice().to_vec();
        let eps = 1e-3;
        for i in 0..analytic.len() {
            let (r, c) = (i / 4, i % 4);
            let orig = x[(r, c)];
            x[(r, c)] = orig + eps;
            let lp = mse_loss(&softmax_rows(&x), &target).0;
            x[(r, c)] = orig - eps;
            let lm = mse_loss(&softmax_rows(&x), &target).0;
            x[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-4);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < 0.05,
                "x[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn mse_loss_zero_for_equal() {
        let x = Tensor2::full(2, 2, 3.0);
        let (loss, grad) = mse_loss(&x, &x);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn mse_loss_known_value() {
        let p = Tensor2::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Tensor2::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn linear_flops_counts_macs() {
        let mut rng = Rng::seed_from(4);
        let l = Linear::new(64, 32, &mut rng);
        assert_eq!(l.flops(1), (2 * 64 * 32 + 32) as u64);
    }

    #[test]
    fn grad_check_helper_is_used() {
        // Keep the shared helper exercised (and the compiler quiet about
        // dead code) with a trivial quadratic.
        let mut p = vec![0.5f32, -1.0];
        let analytic: Vec<f32> = p.iter().map(|v| 2.0 * v).collect();
        let p_cell = std::cell::RefCell::new(&mut p);
        grad_check(
            || {
                let p = p_cell.borrow();
                p.iter().map(|v| v * v).sum::<f32>()
            },
            &mut |set, i| {
                let mut p = p_cell.borrow_mut();
                if let Some(v) = set {
                    p[i] = v;
                }
                p[i]
            },
            &analytic,
            2,
        );
    }
}
