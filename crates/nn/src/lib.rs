//! Minimal neural-network substrate for the Gen-NeRF reproduction.
//!
//! The Gen-NeRF paper's model side needs: per-point MLPs, a ray
//! transformer baseline (attention over the points of a ray), the
//! proposed Ray-Mixer (paper Eqs. 4–5), a feature encoder, and INT8
//! execution on the accelerator's systolic arrays. This crate implements
//! all of that from scratch:
//!
//! * [`Tensor2`] — a row-major 2D `f32` tensor with the handful of BLAS
//!   operations the models need,
//! * [`kernels`] — runtime-dispatched micro-kernel backends for the
//!   dense hot paths (GEMM, bias+ReLU, softmax, INT8 GEMM): a portable
//!   bit-exact scalar reference plus AVX2+FMA, selected at startup via
//!   `GEN_NERF_KERNEL={auto,scalar,avx2}`,
//! * [`layers`] — `Linear`, activations, `LayerNorm`, `Softmax`, each
//!   with explicit, tested backward passes,
//! * [`attention`] — single-head self-attention (the ray transformer),
//! * [`mixer`] — the Ray-Mixer module (token-mixing + channel-mixing FCs
//!   with residuals, Eqs. 4–5),
//! * [`optim`] — Adam and SGD,
//! * [`quant`] — symmetric INT8 per-tensor quantization and a quantized
//!   matmul mirroring what the PE pool executes,
//! * [`flops`] — FLOPs accounting used by every efficiency table in the
//!   paper.
//!
//! Determinism: all weight initialization flows through [`init::Rng`]
//! (a seeded ChaCha8 stream), so experiments reproduce bit-for-bit.
//!
//! # Example
//!
//! ```
//! use gen_nerf_nn::{layers::Linear, init::Rng, Tensor2};
//!
//! let mut rng = Rng::seed_from(42);
//! let mut layer = Linear::new(4, 2, &mut rng);
//! let x = Tensor2::from_fn(3, 4, |r, c| (r + c) as f32);
//! let y = layer.forward(&x);
//! assert_eq!((y.rows(), y.cols()), (3, 2));
//! ```

pub mod attention;
pub mod flops;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod mixer;
pub mod optim;
pub mod quant;
pub mod tensor;

pub use tensor::Tensor2;

/// Numerical tolerance for gradient checks in tests.
pub const GRAD_CHECK_TOL: f32 = 2e-2;
