//! The Ray-Mixer module (paper Sec. 3.3, Eqs. 4–5).
//!
//! The Ray-Mixer replaces the ray transformer's attention with two
//! fully connected mixing steps so the PE pool's systolic arrays can
//! execute the whole model:
//!
//! * **token mixing** (Eq. 4): one FC along the *point* dimension fuses
//!   information across all `N` samples of a ray, column by column:
//!   `F_{*,i} = f_{*,i} + φ(W₁ f_{*,i})`;
//! * **channel mixing + projection** (Eq. 5): one FC along the feature
//!   dimension processes each point independently, then `W₃` projects
//!   to a scalar density: `σ_j = W₃ (F_{j,*} + φ(W₂ F_{j,*}))`.

use crate::init::Rng;
use crate::layers::{Linear, Param, Relu};
use crate::tensor::Tensor2;
use serde::{Deserialize, Serialize};

/// The Ray-Mixer: token-mixing FC (`W₁`, over `n_points`), channel-mixing
/// FC (`W₂`, over `dim`) and a density projection (`W₃`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RayMixer {
    token_fc: Linear,
    channel_fc: Linear,
    proj: Linear,
    token_act: Relu,
    channel_act: Relu,
    n_points: usize,
    cache: Option<()>,
}

impl RayMixer {
    /// Creates a mixer for rays of exactly `n_points` samples with
    /// `dim`-wide density features.
    ///
    /// During training the paper pads every ray to `N_max` points; the
    /// same convention applies here — callers pad (with
    /// zero-contribution samples) to `n_points`.
    pub fn new(n_points: usize, dim: usize, rng: &mut Rng) -> Self {
        Self {
            token_fc: Linear::new(n_points, n_points, rng),
            channel_fc: Linear::new(dim, dim, rng),
            proj: Linear::new(dim, 1, rng),
            token_act: Relu::new(),
            channel_act: Relu::new(),
            n_points,
            cache: None,
        }
    }

    /// Number of points (tokens) the mixer was built for.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.channel_fc.in_dim()
    }

    /// Forward pass over `x` (`n_points × dim`); returns per-point
    /// density logits (`n_points × 1`).
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() != n_points`.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        assert_eq!(
            x.rows(),
            self.n_points,
            "RayMixer built for {} points, got {}",
            self.n_points,
            x.rows()
        );
        // Eq. 4 — token mixing along the point dimension: operate on
        // columns by transposing to (dim × n_points).
        let xt = x.transpose();
        let ht = self.token_act.forward(&self.token_fc.forward(&xt));
        let f = &ht.transpose() + x;
        // Eq. 5 — channel mixing per point, then density projection.
        let c = self.channel_act.forward(&self.channel_fc.forward(&f));
        let g = &f + &c;
        self.cache = Some(());
        self.proj.forward(&g)
    }

    /// Forward pass without caching (inference only) — the `&self`
    /// path render workers share across threads.
    ///
    /// Unlike the training pass, inference takes `n ≤ N_max` rows
    /// directly and computes only the live `n × n` token block (the
    /// paper's hardware claim behind
    /// `ModelConfig::ray_module_macs`: zero-padded tokens contribute
    /// nothing, so the PE pool never schedules them). This is the
    /// dynamic-cost path the FLOPs accounting has always assumed.
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() > n_points`.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let f = self.mix_tokens_inference(x);
        self.finish_inference(&f)
    }

    /// The token-mixing phase of inference (Eq. 4): `F = x + φ(W₁ x)`
    /// restricted to the live `n × n` block of `W₁`. Per ray — token
    /// mixing crosses the ray's own samples only.
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() > n_points`.
    pub fn mix_tokens_inference(&self, x: &Tensor2) -> Tensor2 {
        let n = x.rows();
        assert!(
            n <= self.n_points,
            "RayMixer built for {} points, got {}",
            self.n_points,
            n
        );
        let d = self.dim();
        // Live n×n sub-block of W₁ and the matching bias slice: rows
        // beyond n would only ever multiply zero-padded tokens.
        let w1 = &self.token_fc.w.value;
        let sub_w = Tensor2::from_fn(n, n, |r, c| w1[(r, c)]);
        let sub_b = Tensor2::from_fn(1, n, |_, c| self.token_fc.b.value[(0, c)]);
        let xt = x.transpose();
        let mut ht = xt.matmul(&sub_w);
        ht.add_row_broadcast_in_place(&sub_b);
        ht.relu_in_place();
        let mut f = ht.transpose();
        for r in 0..n {
            for c in 0..d {
                f[(r, c)] += x[(r, c)];
            }
        }
        f
    }

    /// The token-mixing phase for a *group* of rays sharing one point
    /// count: every ray's transposed features stack into a single
    /// GEMM against the live `n × n` block of `W₁`, so a chunk of
    /// equal-length rays pays one token GEMM instead of one per ray.
    /// Per-ray results are bit-identical to
    /// [`RayMixer::mix_tokens_inference`] (GEMM rows are independent
    /// of their batch; bias/ReLU/residual are element-wise).
    ///
    /// # Panics
    ///
    /// Panics when rays disagree in length or exceed `n_points`.
    pub fn mix_tokens_inference_group(&self, xs: &[&Tensor2]) -> Vec<Tensor2> {
        let Some(first) = xs.first() else {
            return Vec::new();
        };
        let n = first.rows();
        assert!(
            n <= self.n_points,
            "RayMixer built for {} points, got {}",
            self.n_points,
            n
        );
        let d = self.dim();
        let w1 = &self.token_fc.w.value;
        let sub_w = Tensor2::from_fn(n, n, |r, c| w1[(r, c)]);
        let sub_b = Tensor2::from_fn(1, n, |_, c| self.token_fc.b.value[(0, c)]);
        // Stack every ray's xᵀ (d × n) into one (G·d × n) operand.
        let mut xt = Tensor2::zeros(xs.len() * d, n);
        for (g, x) in xs.iter().enumerate() {
            assert_eq!(x.rows(), n, "mixed ray lengths in one token group");
            for r in 0..n {
                for (c, &v) in x.row(r).iter().enumerate() {
                    xt[(g * d + c, r)] = v;
                }
            }
        }
        let mut ht = xt.matmul(&sub_w);
        ht.add_row_broadcast_in_place(&sub_b);
        ht.relu_in_place();
        xs.iter()
            .enumerate()
            .map(|(g, x)| Tensor2::from_fn(n, d, |r, c| ht[(g * d + c, r)] + x[(r, c)]))
            .collect()
    }

    /// The channel-mixing + projection phase of inference (Eq. 5):
    /// `σ = W₃ (F + φ(W₂ F))`, row by row. Rows are independent, so the
    /// fused cross-ray path may stack many rays' `F` tensors and run
    /// this once for a whole chunk — the result rows are bit-identical
    /// to per-ray calls (the GEMM kernel's k-order contract).
    pub fn finish_inference(&self, f: &Tensor2) -> Tensor2 {
        let c = self
            .channel_act
            .forward_inference(&self.channel_fc.forward_inference(f));
        let g = f + &c;
        self.proj.forward_inference(&g)
    }

    /// Backward pass; accumulates parameter gradients and returns
    /// `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor2) -> Tensor2 {
        self.cache
            .take()
            .expect("RayMixer::backward before forward");
        // Through W₃.
        let g_g = self.proj.backward(grad_out);
        // g = f + channel_act(channel_fc(f))
        let g_c = self.channel_act.backward(&g_g);
        let g_f = &g_g + &self.channel_fc.backward(&g_c);
        // f = x + transpose(token_act(token_fc(xᵀ)))
        let g_ht = g_f.transpose();
        let g_pre = self.token_act.backward(&g_ht);
        let g_xt = self.token_fc.backward(&g_pre);
        &g_f + &g_xt.transpose()
    }

    /// Shared access to the three FC layers `(W₁, W₂, W₃)` (used by
    /// INT8 re-execution and baseline replicas in the bench harness).
    pub fn layers(&self) -> (&Linear, &Linear, &Linear) {
        (&self.token_fc, &self.channel_fc, &self.proj)
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.token_fc.params_mut());
        out.extend(self.channel_fc.params_mut());
        out.extend(self.proj.params_mut());
        out
    }

    /// FLOPs for one ray. All terms are plain GEMMs — the point of the
    /// module: `O(N²D + ND²)` with *no* attention softmax, executable on
    /// the same systolic arrays as the backbone MLP.
    pub fn flops(&self) -> u64 {
        let n = self.n_points;
        let d = self.dim();
        (2 * n * n * d          // token FC applied to d columns
            + 2 * n * d * d     // channel FC applied to n rows
            + 2 * n * d)        // projection
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::mse_loss;
    use crate::optim::Adam;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(21);
        let mut mixer = RayMixer::new(8, 6, &mut rng);
        let x = Tensor2::from_fn(8, 6, |r, c| ((r * 6 + c) as f32 * 0.19).sin());
        let y = mixer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (8, 1));
        assert!(y.is_finite());
    }

    #[test]
    #[should_panic(expected = "RayMixer built for")]
    fn rejects_wrong_point_count() {
        let mut rng = Rng::seed_from(22);
        let mut mixer = RayMixer::new(8, 6, &mut rng);
        let _ = mixer.forward(&Tensor2::zeros(4, 6));
    }

    #[test]
    fn token_mixing_crosses_points() {
        let mut rng = Rng::seed_from(23);
        let mut mixer = RayMixer::new(6, 4, &mut rng);
        let x1 = Tensor2::from_fn(6, 4, |r, c| (r + c) as f32 * 0.1);
        let mut x2 = x1.clone();
        for c in 0..4 {
            x2[(0, c)] += 1.5;
        }
        let y1 = mixer.forward(&x1);
        let y2 = mixer.forward(&x2);
        // Densities of *different* points must change: information flows
        // across the ray like it does through the ray transformer.
        let diff: f32 = (1..6).map(|r| (y1[(r, 0)] - y2[(r, 0)]).abs()).sum();
        assert!(diff > 1e-6, "no cross-point flow: {diff}");
    }

    #[test]
    fn gradcheck_input() {
        let mut rng = Rng::seed_from(24);
        let mut mixer = RayMixer::new(5, 4, &mut rng);
        let mut x = Tensor2::from_fn(5, 4, |r, c| ((r * 4 + c) as f32 * 0.31).cos() * 0.6);
        let target = Tensor2::from_fn(5, 1, |r, _| (r as f32 * 0.4).sin());

        let y = mixer.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let gin = mixer.backward(&g);
        let analytic: Vec<f32> = gin.as_slice().to_vec();

        let eps = 1e-2;
        for i in 0..analytic.len() {
            let (r, c) = (i / 4, i % 4);
            let orig = x[(r, c)];
            x[(r, c)] = orig + eps;
            let lp = mse_loss(&mixer.forward(&x), &target).0;
            x[(r, c)] = orig - eps;
            let lm = mse_loss(&mixer.forward(&x), &target).0;
            x[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL * 2.5,
                "x[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradcheck_token_weight() {
        let mut rng = Rng::seed_from(25);
        let mut mixer = RayMixer::new(4, 3, &mut rng);
        let x = Tensor2::from_fn(4, 3, |r, c| ((r * 3 + c) as f32 * 0.53).sin() * 0.8);
        let target = Tensor2::zeros(4, 1);

        for p in mixer.params_mut() {
            p.zero_grad();
        }
        let y = mixer.forward(&x);
        let (_, g) = mse_loss(&y, &target);
        let _ = mixer.backward(&g);
        let analytic: Vec<f32> = mixer.token_fc.w.grad.as_slice().to_vec();

        let eps = 1e-2;
        for i in 0..6 {
            let cols = mixer.token_fc.w.value.cols();
            let (r, c) = (i / cols, i % cols);
            let orig = mixer.token_fc.w.value[(r, c)];
            mixer.token_fc.w.value[(r, c)] = orig + eps;
            let lp = mse_loss(&mixer.forward(&x), &target).0;
            mixer.token_fc.w.value[(r, c)] = orig - eps;
            let lm = mse_loss(&mixer.forward(&x), &target).0;
            mixer.token_fc.w.value[(r, c)] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                ((numeric - analytic[i]) / denom).abs() < crate::GRAD_CHECK_TOL * 2.5,
                "w1[{i}]: numeric={numeric} analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from(26);
        let mut mixer = RayMixer::new(8, 5, &mut rng);
        let x = Tensor2::from_fn(8, 5, |r, c| ((r * 5 + c) as f32 * 0.23).sin());
        let target = Tensor2::from_fn(8, 1, |r, _| if (2..5).contains(&r) { 1.0 } else { 0.0 });
        let mut adam = Adam::new(5e-3);
        let (first, _) = mse_loss(&mixer.forward(&x), &target);
        let mut last = first;
        for _ in 0..200 {
            for p in mixer.params_mut() {
                p.zero_grad();
            }
            let y = mixer.forward(&x);
            let (loss, g) = mse_loss(&y, &target);
            mixer.backward(&g);
            adam.step(&mut mixer.params_mut());
            last = loss;
        }
        assert!(last < first * 0.1, "first={first} last={last}");
    }

    #[test]
    fn flops_has_no_softmax_term() {
        let mut rng = Rng::seed_from(27);
        let mixer = RayMixer::new(64, 16, &mut rng);
        let expect = 2 * 64 * 64 * 16 + 2 * 64 * 16 * 16 + 2 * 64 * 16;
        assert_eq!(mixer.flops(), expect as u64);
    }
}
