//! Deterministic weight initialization.
//!
//! All randomness in the workspace flows through [`Rng`], a thin wrapper
//! over a ChaCha8 stream, so that every experiment is reproducible from
//! a single seed.

use crate::tensor::Tensor2;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded random stream for initialization and sampling.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: ChaCha8Rng,
}

impl Rng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Forks an independent stream (used to give workers decorrelated
    /// substreams that remain reproducible).
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.inner.gen())
    }

    /// Xavier/Glorot-uniform initialized `fan_in × fan_out` matrix.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Tensor2 {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor2::from_fn(fan_in, fan_out, |_, _| self.uniform(-limit, limit))
    }

    /// Kaiming/He-normal initialized `fan_in × fan_out` matrix (for ReLU
    /// networks).
    pub fn kaiming(&mut self, fan_in: usize, fan_out: usize) -> Tensor2 {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor2::from_fn(fan_in, fan_out, |_, _| self.normal() * std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..16).filter(|_| a.normal() == b.normal()).count();
        assert!(same < 16);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rng::seed_from(3);
        let w = rng.xavier(64, 64);
        let limit = (6.0 / 128.0f32).sqrt();
        assert!(w.max_abs() <= limit + 1e-6);
        // Mean should be near zero.
        assert!(w.mean().abs() < 0.02);
    }

    #[test]
    fn kaiming_variance_close_to_target() {
        let mut rng = Rng::seed_from(4);
        let w = rng.kaiming(128, 128);
        let var: f32 = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let target = 2.0 / 128.0;
        assert!(
            (var - target).abs() < target * 0.3,
            "var = {var}, target = {target}"
        );
    }

    #[test]
    fn normal_roughly_standard() {
        let mut rng = Rng::seed_from(5);
        let n = 4000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.08, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.12, "var = {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::seed_from(6);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn fork_is_deterministic_but_distinct() {
        let mut a = Rng::seed_from(9);
        let mut b = Rng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
        // Fork output differs from parent continuation.
        assert_ne!(fa.uniform(0.0, 1.0), a.uniform(0.0, 1.0));
    }
}
