//! Symmetric per-tensor INT8 quantization.
//!
//! The Gen-NeRF accelerator's PE pool executes INT8 systolic-array GEMMs
//! (paper Sec. 5.1: "40 16*16 INT8 systolic arrays"). This module
//! provides the quantize/dequantize path plus an integer GEMM whose
//! arithmetic mirrors what the arrays compute, so algorithm-level
//! results can be produced with accelerator-faithful numerics.

use crate::tensor::Tensor2;
use serde::{Deserialize, Serialize};

/// A quantized tensor: `value ≈ scale · q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    /// Quantized values.
    pub q: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl QuantTensor {
    /// Quantizes a tensor symmetrically: `scale = max|x| / 127`.
    ///
    /// An all-zero tensor quantizes with scale 1 (any scale represents
    /// it exactly).
    pub fn quantize(x: &Tensor2) -> Self {
        let max_abs = x.max_abs();
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let q = x
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            q,
            scale,
            rows: x.rows(),
            cols: x.cols(),
        }
    }

    /// Reconstructs the `f32` tensor.
    pub fn dequantize(&self) -> Tensor2 {
        Tensor2::from_vec(
            self.rows,
            self.cols,
            self.q.iter().map(|&v| v as f32 * self.scale).collect(),
        )
    }

    /// Integer GEMM with i32 accumulation, rescaled to `f32` — what one
    /// systolic-array pass computes. Runs through the active kernel
    /// backend; integer accumulation is exact, so every backend
    /// produces bit-identical results here.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Tensor2 {
        assert_eq!(self.cols, rhs.rows, "quant matmul dims");
        let mut out = Tensor2::zeros(self.rows, rhs.cols);
        crate::kernels::active().int8_matmul(
            &self.q,
            &rhs.q,
            out.as_mut_slice(),
            self.rows,
            self.cols,
            rhs.cols,
            self.scale,
            rhs.scale,
        );
        out
    }

    /// Worst-case absolute quantization error of a single element.
    pub fn quantization_step(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Relative Frobenius error introduced by quantizing `x`.
pub fn quantization_error(x: &Tensor2) -> f32 {
    let q = QuantTensor::quantize(x);
    let err = (&q.dequantize() - x).norm();
    let n = x.norm();
    if n > 0.0 {
        err / n
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let x = Tensor2::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin() * 4.0);
        let q = QuantTensor::quantize(&x);
        let back = q.dequantize();
        let max_err = (&back - &x).max_abs();
        assert!(
            max_err <= q.quantization_step() + 1e-6,
            "err {max_err} > step {}",
            q.quantization_step()
        );
    }

    #[test]
    fn extremes_map_to_127() {
        let x = Tensor2::from_vec(1, 3, vec![-2.0, 0.0, 2.0]);
        let q = QuantTensor::quantize(&x);
        assert_eq!(q.q, vec![-127, 0, 127]);
    }

    #[test]
    fn zero_tensor_quantizes_exactly() {
        let x = Tensor2::zeros(4, 4);
        let q = QuantTensor::quantize(&x);
        assert_eq!(q.dequantize(), x);
    }

    #[test]
    fn quant_matmul_close_to_float() {
        let a = Tensor2::from_fn(6, 10, |r, c| ((r * 10 + c) as f32 * 0.21).sin());
        let b = Tensor2::from_fn(10, 4, |r, c| ((r * 4 + c) as f32 * 0.47).cos());
        let exact = a.matmul(&b);
        let qa = QuantTensor::quantize(&a);
        let qb = QuantTensor::quantize(&b);
        let approx = qa.matmul(&qb);
        let rel = (&approx - &exact).norm() / exact.norm();
        assert!(rel < 0.03, "relative error {rel}");
    }

    #[test]
    fn quantization_error_small_for_well_scaled() {
        let x = Tensor2::from_fn(16, 16, |r, c| ((r + c) as f32 * 0.11).sin());
        assert!(quantization_error(&x) < 0.01);
    }

    #[test]
    fn quantization_error_zero_for_zero() {
        assert_eq!(quantization_error(&Tensor2::zeros(3, 3)), 0.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bounded(v in proptest::collection::vec(-50.0f32..50.0, 16)) {
            let x = Tensor2::from_vec(4, 4, v);
            let q = QuantTensor::quantize(&x);
            let err = (&q.dequantize() - &x).max_abs();
            prop_assert!(err <= q.quantization_step() + 1e-5);
        }

        #[test]
        fn prop_scale_positive(v in proptest::collection::vec(-10.0f32..10.0, 9)) {
            let x = Tensor2::from_vec(3, 3, v);
            prop_assert!(QuantTensor::quantize(&x).scale > 0.0);
        }
    }
}
