//! Optimizers (Adam, SGD) operating on [`Param`]s.

use crate::layers::Param;
use serde::{Deserialize, Serialize};

/// The Adam optimizer (Kingma & Ba), the paper's training optimizer
/// (Sec. 5.1: Adam, initial LR 5e-4 with exponential decay).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential-decay factor applied per call of
    /// [`Adam::decay_lr`].
    pub lr_decay: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl Adam {
    /// Creates Adam with standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            lr_decay: 1.0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Sets a per-step exponential learning-rate decay.
    pub fn with_decay(mut self, decay: f32) -> Self {
        self.lr_decay = decay;
        self
    }

    /// Applies one update step to every parameter.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.as_slice()[i];
                let m = self.beta1 * p.m.as_slice()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                p.m.as_mut_slice()[i] = m;
                p.v.as_mut_slice()[i] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                p.value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        self.lr *= self.lr_decay;
    }

    /// Explicitly decays the learning rate by `lr_decay`.
    pub fn decay_lr(&mut self) {
        self.lr *= self.lr_decay;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one update step.
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let n = p.value.len();
            for i in 0..n {
                p.value.as_mut_slice()[i] -= self.lr * p.grad.as_slice()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor2;

    fn quadratic_param(at: f32) -> Param {
        Param::new(Tensor2::from_vec(1, 1, vec![at]))
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut p = quadratic_param(-5.0);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            p.zero_grad();
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * (x - 3.0);
            adam.step(&mut [&mut p]);
        }
        let x = p.value.as_slice()[0];
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = quadratic_param(10.0);
        let sgd = Sgd::new(0.1);
        for _ in 0..200 {
            p.zero_grad();
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * (x + 1.0);
            sgd.step(&mut [&mut p]);
        }
        let x = p.value.as_slice()[0];
        assert!((x + 1.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_lr_decay_applies() {
        let mut adam = Adam::new(1.0).with_decay(0.5);
        let mut p = quadratic_param(0.0);
        adam.step(&mut [&mut p]);
        assert!((adam.lr - 0.5).abs() < 1e-6);
        adam.step(&mut [&mut p]);
        assert!((adam.lr - 0.25).abs() < 1e-6);
    }

    #[test]
    fn adam_step_counter() {
        let mut adam = Adam::new(0.01);
        assert_eq!(adam.steps(), 0);
        let mut p = quadratic_param(1.0);
        adam.step(&mut [&mut p]);
        adam.step(&mut [&mut p]);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction the very first Adam step has magnitude ~lr
        // regardless of gradient scale.
        for g0 in [0.01f32, 100.0] {
            let mut p = quadratic_param(0.0);
            p.grad.as_mut_slice()[0] = g0;
            let mut adam = Adam::new(0.1);
            adam.step(&mut [&mut p]);
            let x = p.value.as_slice()[0];
            assert!((x.abs() - 0.1).abs() < 1e-3, "g0={g0}, step={x}");
        }
    }
}
