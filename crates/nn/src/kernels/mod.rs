//! Pluggable SIMD kernel backends with runtime dispatch.
//!
//! Every dense hot path of the workspace — the register-blocked GEMM
//! behind [`crate::Tensor2::matmul`], the bias-add and ReLU of
//! [`crate::layers`], [`crate::layers::softmax_rows`] in the attention
//! path, and the INT8 GEMM of [`crate::quant`] — executes through a
//! [`MicroKernel`]. Which implementation runs is decided once at
//! startup:
//!
//! * [`Backend::Scalar`] — the portable register-blocked reference
//!   kernel ([`scalar`]). Bit-for-bit identical to the pre-SIMD
//!   workspace: every regression baseline (fused ≡ per-ray renders,
//!   blocked ≡ naive GEMM) is stated against this backend.
//! * [`Backend::Avx2`] — AVX2+FMA vectorized kernels ([`avx2`]),
//!   compiled on x86/x86_64 and selected only when
//!   `is_x86_feature_detected!` confirms both features at runtime.
//!
//! Selection order: the `GEN_NERF_KERNEL` environment variable
//! (`auto`, `scalar`, `avx2`) if set, otherwise auto-detection.
//! [`set_active`] overrides the choice at runtime (benchmarks compare
//! backends in one process this way; tests serialize around it).
//!
//! # Exactness contract
//!
//! The scalar backend preserves the workspace's historical bit-exact
//! results. The AVX2 backend changes float rounding (FMA contracts
//! mul+add into one rounding; reductions tree-sum), so scalar and AVX2
//! agree only to tight tolerances — pinned by the property tests in
//! this module (the INT8 GEMM is the exception: integer accumulation
//! is exact, so both backends match bit-for-bit).
//!
//! What every backend **must** preserve is *positional independence*:
//! an output element's value may depend only on its logical inputs,
//! never on where the element sits in a buffer or how many other rows
//! share the batch. That is what keeps the fused cross-ray schedule
//! bit-identical to per-ray execution *within* a backend, for any
//! chunking. Concretely: a vector lane and the scalar remainder of the
//! same loop must compute the same function (e.g. FMA lanes pair with
//! scalar `mul_add`, never plain `mul`+`add`).
//!
//! # Adding a backend
//!
//! Implement [`MicroKernel`] (a ZST with a `'static` instance), extend
//! [`Backend`]/[`Backend::parse`]/[`kernel_for`], gate availability in
//! [`Backend::available`], and add the new backend to the parity
//! property tests below. Keep the positional-independence rule above
//! or the fused-inference regression suite will catch you.

pub mod integrity;
pub mod scalar;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub mod avx2;

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the kernel backend
/// (`auto` | `scalar` | `avx2`).
pub const KERNEL_ENV: &str = "GEN_NERF_KERNEL";

/// A kernel backend identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable register-blocked scalar kernels — the bit-exact
    /// reference.
    Scalar,
    /// AVX2 + FMA vectorized kernels (x86/x86_64 only).
    Avx2,
}

impl Backend {
    /// The backend's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a `GEN_NERF_KERNEL` value. `auto` (or empty) yields
    /// `None` — detect the best available backend; unknown values are
    /// an error carrying the offending string.
    pub fn parse(value: &str) -> Result<Option<Backend>, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(Backend::Scalar)),
            "avx2" => Ok(Some(Backend::Avx2)),
            other => Err(format!(
                "unknown {KERNEL_ENV} value {other:?} (expected auto, scalar or avx2)"
            )),
        }
    }

    /// `true` when this backend can run on the current machine.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2 => {
                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
                {
                    false
                }
            }
        }
    }

    /// The best backend the current machine supports.
    pub fn detect() -> Backend {
        if Backend::Avx2.available() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    }

    /// Resolves the backend from `GEN_NERF_KERNEL` (falling back to
    /// [`Backend::detect`] on `auto`/unset). Unknown values and
    /// requests for an unavailable backend degrade to the best
    /// available backend with a one-line warning on stderr.
    pub fn from_env() -> Backend {
        let requested = match std::env::var(KERNEL_ENV) {
            Ok(v) => match Backend::parse(&v) {
                Ok(b) => b,
                Err(msg) => {
                    eprintln!("gen-nerf-nn: {msg}; using auto detection");
                    None
                }
            },
            Err(_) => None,
        };
        match requested {
            Some(b) if b.available() => b,
            Some(b) => {
                eprintln!(
                    "gen-nerf-nn: {KERNEL_ENV}={} requested but unavailable on this CPU; \
                     using {}",
                    b.name(),
                    Backend::detect().name()
                );
                Backend::detect()
            }
            None => Backend::detect(),
        }
    }
}

/// The micro-kernel surface every backend implements. All slices are
/// row-major; `data.len()` must be a multiple of `cols` where a width
/// is given.
pub trait MicroKernel: Sync {
    /// The backend this kernel implements.
    fn backend(&self) -> Backend;

    /// Dense GEMM `out = a · b` with `a` of shape `m × k` and `b` of
    /// shape `k × n`. `out` (length `m · n`) is fully overwritten.
    /// Every output element accumulates over the shared dimension in
    /// ascending order independently of `m` (row independence — the
    /// fused-inference contract).
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Adds the `cols`-wide `bias` row vector to every row of `data`
    /// in place.
    fn add_bias_rows(&self, data: &mut [f32], cols: usize, bias: &[f32]);

    /// In-place ReLU.
    fn relu(&self, data: &mut [f32]);

    /// In-place numerically-stabilized softmax over each `cols`-wide
    /// row of `data`.
    fn softmax_rows(&self, data: &mut [f32], cols: usize);

    /// Elementwise accumulate: `acc[i] += x[i]`. One exactly-rounded
    /// binary add per element, so every backend agrees **bit-for-bit**
    /// (like the INT8 GEMM) — the per-view mean-accumulation step of
    /// feature aggregation relies on this to keep SoA acquisition
    /// bitwise equal to the seed AoS path on every backend.
    ///
    /// `x.len()` must not exceed `acc.len()`; trailing `acc` elements
    /// are untouched.
    fn add_assign(&self, acc: &mut [f32], x: &[f32]);

    /// Elementwise squared-difference accumulate:
    /// `acc[i] += (x[i] − mean[i]) · (x[i] − mean[i])`, computed as a
    /// subtract, a multiply and an add — three exactly-rounded ops,
    /// **never** contracted into an FMA — so every backend agrees
    /// bit-for-bit (the per-view variance-accumulation step of feature
    /// aggregation).
    ///
    /// `x.len()` must not exceed `acc.len()` or `mean.len()`.
    fn sq_diff_add(&self, acc: &mut [f32], x: &[f32], mean: &[f32]);

    /// `true` when every element of `data` is finite — the
    /// stage-boundary sentinel scan of the render pipeline. Finiteness
    /// of an `f32` is exactly "exponent bits ≠ all-ones", a pure bit
    /// predicate with no rounding, so every backend agrees on every
    /// input (including NaN payloads and ±0.0) — parity is pinned
    /// bitwise by the property tests below.
    fn is_finite_all(&self, data: &[f32]) -> bool;

    /// INT8 GEMM with i32 accumulation: `out[i,j] = (Σₖ a[i,k]·b[k,j])
    /// as f32 · scale_a · scale_b` (two rescale multiplications, in
    /// that order — the historical arithmetic). Integer accumulation
    /// is exact, so all backends agree bit-for-bit here.
    #[allow(clippy::too_many_arguments)] // mirrors the GEMM signature plus the two scales
    fn int8_matmul(
        &self,
        a: &[i8],
        b: &[i8],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        scale_a: f32,
        scale_b: f32,
    );
}

static SCALAR_KERNEL: scalar::ScalarKernel = scalar::ScalarKernel;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
static AVX2_KERNEL: avx2::Avx2Kernel = avx2::Avx2Kernel;

/// `ACTIVE` holds the selected backend: 0 = not yet selected,
/// otherwise `backend_code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn backend_code(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
    }
}

fn backend_from_code(c: u8) -> Backend {
    match c {
        1 => Backend::Scalar,
        2 => Backend::Avx2,
        _ => unreachable!("invalid backend code {c}"),
    }
}

/// The kernel implementing `backend`, degraded to scalar when the
/// requested backend is unavailable on this machine.
pub fn kernel_for(backend: Backend) -> &'static dyn MicroKernel {
    match backend {
        Backend::Scalar => &SCALAR_KERNEL,
        Backend::Avx2 => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            if Backend::Avx2.available() {
                return &AVX2_KERNEL;
            }
            &SCALAR_KERNEL
        }
    }
}

/// The currently active backend, selecting it from the environment on
/// first use.
pub fn active_backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let b = Backend::from_env();
            // A backend quarantined before first use never activates.
            let b = if integrity::is_quarantined(b) {
                Backend::Scalar
            } else {
                b
            };
            // A concurrent first use may win the race; both candidates
            // resolved the same environment, so either store is fine.
            ACTIVE.store(backend_code(b), Ordering::Relaxed);
            b
        }
        c => backend_from_code(c),
    }
}

/// The currently active kernel (the dispatch point every hot path
/// calls).
pub fn active() -> &'static dyn MicroKernel {
    kernel_for(active_backend())
}

/// Overrides the active backend at runtime, returning the backend
/// actually installed (an unavailable **or quarantined** request
/// degrades to scalar — see [`integrity::quarantine`]; the latch is
/// sticky, so a quarantined backend cannot be re-activated for the
/// rest of the process).
///
/// Intended for benchmarks that compare backends within one process
/// and for the dispatch tests; ordinary code should rely on the
/// startup selection. Callers switching backends mid-process own the
/// consistency of any bit-exactness comparison spanning the switch.
pub fn set_active(backend: Backend) -> Backend {
    let effective = if backend.available() && !integrity::is_quarantined(backend) {
        backend
    } else {
        Backend::Scalar
    };
    ACTIVE.store(backend_code(effective), Ordering::Relaxed);
    effective
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All backends that can actually run here (scalar always; avx2
    /// when the host supports it).
    fn runnable_backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        if Backend::Avx2.available() {
            v.push(Backend::Avx2);
        }
        v
    }

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Backend::parse("auto"), Ok(None));
        assert_eq!(Backend::parse(""), Ok(None));
        assert_eq!(Backend::parse("scalar"), Ok(Some(Backend::Scalar)));
        assert_eq!(Backend::parse("AVX2"), Ok(Some(Backend::Avx2)));
        assert_eq!(Backend::parse(" Scalar "), Ok(Some(Backend::Scalar)));
        assert!(Backend::parse("neon").is_err());
    }

    #[test]
    fn detect_returns_an_available_backend() {
        assert!(Backend::detect().available());
        assert!(Backend::Scalar.available());
    }

    #[test]
    fn kernel_for_reports_requested_backend_when_available() {
        assert_eq!(kernel_for(Backend::Scalar).backend(), Backend::Scalar);
        let k = kernel_for(Backend::Avx2);
        if Backend::Avx2.available() {
            assert_eq!(k.backend(), Backend::Avx2);
        } else {
            assert_eq!(k.backend(), Backend::Scalar);
        }
    }

    /// `f64` reference GEMM plus a per-element magnitude bound
    /// `Σₖ |a||b|` for tolerance scaling.
    fn matmul_f64(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut out = vec![0.0f64; m * n];
        let mut mag = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    let av = a[i * k + t] as f64;
                    let bv = b[t * n + j] as f64;
                    out[i * n + j] += av * bv;
                    mag[i * n + j] += av.abs() * bv.abs();
                }
            }
        }
        (out, mag)
    }

    fn pseudo(vals: &mut impl Iterator<Item = f32>, len: usize) -> Vec<f32> {
        (0..len).map(|_| vals.next().unwrap()).collect()
    }

    fn value_stream(seed: u32) -> impl Iterator<Item = f32> {
        // A small deterministic stream with sign changes, exact zeros
        // and a wide magnitude range.
        (0u32..).map(move |i| {
            let x = ((i.wrapping_mul(2654435761).wrapping_add(seed)) % 2048) as f32 / 1024.0 - 1.0;
            if x.abs() < 0.05 {
                0.0
            } else {
                x * 6.0
            }
        })
    }

    #[test]
    fn matmul_backends_agree_within_tolerance() {
        // Shapes spanning full tiles, row edges, and every column-edge
        // path (16-wide, 8-wide, scalar remainder).
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (6, 8, 16),
            (7, 13, 17),
            (12, 64, 33),
            (5, 26, 48),
            (23, 19, 9),
        ] {
            let mut vals = value_stream((m * 31 + k * 7 + n) as u32);
            let a = pseudo(&mut vals, m * k);
            let b = pseudo(&mut vals, k * n);
            let (reference, mag) = matmul_f64(&a, &b, m, k, n);
            for backend in runnable_backends() {
                let mut out = vec![f32::NAN; m * n];
                kernel_for(backend).matmul(&a, &b, &mut out, m, k, n);
                for (i, &o) in out.iter().enumerate() {
                    let tol = 1e-5 * mag[i].max(1.0);
                    assert!(
                        ((o as f64) - reference[i]).abs() <= tol,
                        "{}: {m}x{k}x{n} elem {i}: {o} vs {} (tol {tol})",
                        backend.name(),
                        reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_rows_are_batch_independent_per_backend() {
        // The fused-inference contract, per backend: stacking rows
        // never changes a row's result.
        let (k, n) = (26, 48);
        let mut vals = value_stream(77);
        let big = pseudo(&mut vals, 9 * k);
        let b = pseudo(&mut vals, k * n);
        for backend in runnable_backends() {
            let kern = kernel_for(backend);
            let mut full = vec![0.0f32; 9 * n];
            kern.matmul(&big, &b, &mut full, 9, k, n);
            for r in 0..9 {
                let mut single = vec![0.0f32; n];
                kern.matmul(&big[r * k..(r + 1) * k], &b, &mut single, 1, k, n);
                let fb: Vec<u32> = full[r * n..(r + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, sb, "{}: row {r} depends on its batch", backend.name());
            }
        }
    }

    #[test]
    fn bias_and_relu_backends_agree_exactly() {
        for cols in [1usize, 7, 8, 9, 16, 19] {
            let rows = 5;
            let mut vals = value_stream(cols as u32);
            let base = pseudo(&mut vals, rows * cols);
            let bias = pseudo(&mut vals, cols);
            let mut reference = base.clone();
            let scalar = kernel_for(Backend::Scalar);
            scalar.add_bias_rows(&mut reference, cols, &bias);
            scalar.relu(&mut reference);
            for backend in runnable_backends() {
                let mut data = base.clone();
                let kern = kernel_for(backend);
                kern.add_bias_rows(&mut data, cols, &bias);
                kern.relu(&mut data);
                // Numerically exact (== treats -0.0 and 0.0 alike,
                // the only sign-of-zero divergence ReLU can produce).
                assert!(
                    data.iter().zip(&reference).all(|(a, b)| a == b),
                    "{}: cols {cols}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn softmax_backends_agree_within_tolerance() {
        for cols in [1usize, 2, 7, 8, 9, 24, 33] {
            let rows = 4;
            let mut vals = value_stream(cols as u32 * 13);
            let base = pseudo(&mut vals, rows * cols);
            let mut reference = base.clone();
            kernel_for(Backend::Scalar).softmax_rows(&mut reference, cols);
            for backend in runnable_backends() {
                let mut data = base.clone();
                kernel_for(backend).softmax_rows(&mut data, cols);
                for r in 0..rows {
                    let row = &data[r * cols..(r + 1) * cols];
                    let sum: f32 = row.iter().sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-5,
                        "{}: cols {cols} row {r} sums to {sum}",
                        backend.name()
                    );
                }
                for (i, (&a, &b)) in data.iter().zip(&reference).enumerate() {
                    assert!(
                        (a - b).abs() <= 2e-6,
                        "{}: cols {cols} elem {i}: {a} vs {b}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn softmax_all_neg_inf_rows_pin_uniform_fallback() {
        // The guarded behavior of a fully-masked row, identical on
        // every backend: exactly 1/cols in every slot (bitwise — it is
        // a constant fill, no arithmetic path). Mixed data must leave
        // ordinary rows on the normal path.
        for cols in [1usize, 2, 7, 8, 9, 24, 33] {
            for backend in runnable_backends() {
                let mut data = vec![f32::NEG_INFINITY; 3 * cols];
                // Middle row is ordinary.
                for (j, v) in data[cols..2 * cols].iter_mut().enumerate() {
                    *v = j as f32 * 0.25 - 1.0;
                }
                kernel_for(backend).softmax_rows(&mut data, cols);
                let uniform = 1.0 / cols as f32;
                for r in [0usize, 2] {
                    for (j, &v) in data[r * cols..(r + 1) * cols].iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            uniform.to_bits(),
                            "{}: cols {cols} row {r} elem {j} = {v}",
                            backend.name()
                        );
                    }
                }
                let mid: f32 = data[cols..2 * cols].iter().sum();
                assert!(
                    data[cols..2 * cols].iter().all(|v| v.is_finite()) && (mid - 1.0).abs() < 1e-5,
                    "{}: cols {cols} ordinary row disturbed",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn is_finite_all_backends_agree_on_every_pattern() {
        // Lengths spanning the vector body and the scalar remainder;
        // poison kinds covering NaN (quiet + payload), ±Inf and the
        // largest finite values. Placement sweeps every lane.
        let poisons = [
            f32::NAN,
            f32::from_bits(0x7f80_0001), // signalling-style NaN payload
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 40] {
            let clean: Vec<f32> = (0..len)
                .map(|i| (i as f32 - 3.5) * (f32::MAX / 64.0))
                .collect();
            for backend in runnable_backends() {
                let kern = kernel_for(backend);
                assert!(
                    kern.is_finite_all(&clean),
                    "{}: clean len {len} flagged",
                    backend.name()
                );
                for pos in 0..len {
                    for &poison in &poisons {
                        let mut data = clean.clone();
                        data[pos] = poison;
                        assert!(
                            !kern.is_finite_all(&data),
                            "{}: {poison} at {pos}/{len} missed",
                            backend.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn accumulate_ops_agree_bitwise() {
        // The aggregation accumulators are exact elementwise chains
        // (add; sub → mul → add), so — like the INT8 GEMM — every
        // backend must agree bit-for-bit, including the remainder
        // lanes.
        for len in [1usize, 3, 7, 8, 9, 12, 16, 26, 33] {
            let mut vals = value_stream(len as u32 * 101);
            let base = pseudo(&mut vals, len);
            let x = pseudo(&mut vals, len);
            let mean = pseudo(&mut vals, len);
            let scalar = kernel_for(Backend::Scalar);
            let mut ref_add = base.clone();
            scalar.add_assign(&mut ref_add, &x);
            let mut ref_sq = base.clone();
            scalar.sq_diff_add(&mut ref_sq, &x, &mean);
            for backend in runnable_backends() {
                let kern = kernel_for(backend);
                let mut add = base.clone();
                kern.add_assign(&mut add, &x);
                let ab: Vec<u32> = add.iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = ref_add.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, rb, "{}: add_assign len {len}", backend.name());
                let mut sq = base.clone();
                kern.sq_diff_add(&mut sq, &x, &mean);
                let sb: Vec<u32> = sq.iter().map(|v| v.to_bits()).collect();
                let qb: Vec<u32> = ref_sq.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, qb, "{}: sq_diff_add len {len}", backend.name());
            }
        }
    }

    #[test]
    fn accumulate_ops_leave_tail_untouched() {
        // `x` shorter than `acc`: trailing accumulator elements must
        // not move (aggregation uses a full-width stats row with a
        // shorter fetched-feature slice).
        for backend in runnable_backends() {
            let kern = kernel_for(backend);
            let mut acc = vec![1.0f32; 10];
            kern.add_assign(&mut acc, &[2.0; 4]);
            assert_eq!(&acc[..4], &[3.0; 4]);
            assert_eq!(&acc[4..], &[1.0; 6], "{}", backend.name());
            kern.sq_diff_add(&mut acc, &[5.0; 4], &[2.0; 4]);
            assert_eq!(&acc[..4], &[12.0; 4]);
            assert_eq!(&acc[4..], &[1.0; 6], "{}", backend.name());
        }
    }

    #[test]
    fn int8_backends_agree_bitwise() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (6, 10, 4),
            (13, 48, 17),
            (8, 26, 8),
        ] {
            let a: Vec<i8> = (0..m * k)
                .map(|i| (((i * 37 + 11) % 255) as i32 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|i| (((i * 53 + 5) % 255) as i32 - 127) as i8)
                .collect();
            let (sa, sb) = (0.037f32, 0.41f32);
            let mut reference = vec![0.0f32; m * n];
            kernel_for(Backend::Scalar).int8_matmul(&a, &b, &mut reference, m, k, n, sa, sb);
            for backend in runnable_backends() {
                let mut out = vec![f32::NAN; m * n];
                kernel_for(backend).int8_matmul(&a, &b, &mut out, m, k, n, sa, sb);
                let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ob, rb, "{}: {m}x{k}x{n}", backend.name());
            }
        }
    }
}
