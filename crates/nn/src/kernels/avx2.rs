//! The AVX2 + FMA backend.
//!
//! Safety model: [`Avx2Kernel`] is only reachable through
//! [`super::kernel_for`], which hands it out exclusively after
//! `is_x86_feature_detected!("avx2")`/`("fma")` both pass, so the
//! `#[target_feature]` functions below are sound to call.
//!
//! Positional independence (the property that keeps fused cross-ray
//! execution bit-identical to per-ray execution under this backend):
//! every vector operation is paired with a scalar remainder that
//! computes the *same* per-lane function —
//!
//! * GEMM lanes use `vfmadd`; the column remainder uses scalar
//!   [`f32::mul_add`] (the same correctly-rounded fused op).
//! * ReLU lanes use `vmaxps(x, 0)` = `if x > 0 { x } else { 0 }`; the
//!   remainder spells out exactly that comparison (not `f32::max`,
//!   whose −0.0 handling may differ).
//! * The softmax `exp` is a degree-5 polynomial (Cephes `expf`)
//!   evaluated with identical mul/add sequences in the vector body and
//!   the scalar remainder.
//!
//! Relative to the scalar backend, FMA contracts one rounding per
//! multiply-add and the softmax sum reduces as a tree, so results
//! differ in the last ULPs — the tolerance contract pinned by the
//! parity tests in [`super`].

#![allow(unsafe_code)]

use super::{Backend, MicroKernel};

#[cfg(target_arch = "x86")]
use std::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Rows per register tile (6 rows × two 8-lane accumulators each =
/// 12 of the 16 ymm registers, leaving room for the `b` loads and the
/// broadcast `a` element).
const MR: usize = 6;

/// The AVX2 [`MicroKernel`]. Constructed only behind runtime feature
/// detection (see the module docs).
#[derive(Debug, Default)]
pub struct Avx2Kernel;

impl MicroKernel for Avx2Kernel {
    fn backend(&self) -> Backend {
        Backend::Avx2
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { matmul_avx2(a, b, out, m, k, n) }
    }

    fn add_bias_rows(&self, data: &mut [f32], cols: usize, bias: &[f32]) {
        debug_assert_eq!(bias.len(), cols);
        debug_assert_eq!(data.len() % cols.max(1), 0);
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { add_bias_rows_avx2(data, cols, bias) }
    }

    fn relu(&self, data: &mut [f32]) {
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { relu_avx2(data) }
    }

    fn softmax_rows(&self, data: &mut [f32], cols: usize) {
        debug_assert_eq!(data.len() % cols.max(1), 0);
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { softmax_rows_avx2(data, cols) }
    }

    fn add_assign(&self, acc: &mut [f32], x: &[f32]) {
        // Hard assert: the vector body loads/stores `x.len()` elements
        // of `acc`, so a longer `x` would be out-of-bounds UB from
        // safe code if only debug-checked.
        assert!(x.len() <= acc.len(), "add_assign: x longer than acc");
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs);
        // bounds guaranteed by the assert above.
        unsafe { add_assign_avx2(acc, x) }
    }

    fn sq_diff_add(&self, acc: &mut [f32], x: &[f32], mean: &[f32]) {
        assert!(x.len() <= acc.len(), "sq_diff_add: x longer than acc");
        assert!(x.len() <= mean.len(), "sq_diff_add: x longer than mean");
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs);
        // bounds guaranteed by the asserts above.
        unsafe { sq_diff_add_avx2(acc, x, mean) }
    }

    fn is_finite_all(&self, data: &[f32]) -> bool {
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { is_finite_all_avx2(data) }
    }

    fn int8_matmul(
        &self,
        a: &[i8],
        b: &[i8],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        scale_a: f32,
        scale_b: f32,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        debug_assert!(Backend::Avx2.available());
        // SAFETY: avx2+fma verified at dispatch time (module docs).
        unsafe { int8_matmul_avx2(a, b, out, m, k, n, scale_a, scale_b) }
    }
}

// ---- dense GEMM ------------------------------------------------------

/// MR×16 register tile (two ymm accumulators per row): per element, a
/// `vfmadd` chain over `k` ascending.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile16(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    ib: usize,
    j0: usize,
    kdim: usize,
    n: usize,
) {
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for k in 0..kdim {
        let bp = b.as_ptr().add(k * n + j0);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (ii, acc_row) in acc.iter_mut().enumerate().take(ib) {
            let av = _mm256_set1_ps(*a.get_unchecked((i0 + ii) * kdim + k));
            acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
            acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
        }
    }
    for (ii, acc_row) in acc.iter().enumerate().take(ib) {
        let op = out.as_mut_ptr().add((i0 + ii) * n + j0);
        _mm256_storeu_ps(op, acc_row[0]);
        _mm256_storeu_ps(op.add(8), acc_row[1]);
    }
}

/// MR×8 register tile: one ymm accumulator per row, same per-element
/// `vfmadd` chain as [`tile16`].
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile8(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    ib: usize,
    j0: usize,
    kdim: usize,
    n: usize,
) {
    let mut acc = [_mm256_setzero_ps(); MR];
    for k in 0..kdim {
        let bv = _mm256_loadu_ps(b.as_ptr().add(k * n + j0));
        for (ii, acc_row) in acc.iter_mut().enumerate().take(ib) {
            let av = _mm256_set1_ps(*a.get_unchecked((i0 + ii) * kdim + k));
            *acc_row = _mm256_fmadd_ps(av, bv, *acc_row);
        }
    }
    for (ii, acc_row) in acc.iter().enumerate().take(ib) {
        _mm256_storeu_ps(out.as_mut_ptr().add((i0 + ii) * n + j0), *acc_row);
    }
}

/// Column remainder: scalar `mul_add` chains — the same fused op a
/// vector lane performs, so an element's value never depends on which
/// path covered it.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_edge_fma(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    ib: usize,
    j0: usize,
    jb: usize,
    kdim: usize,
    n: usize,
) {
    for ii in 0..ib {
        let a_row = &a[(i0 + ii) * kdim..(i0 + ii + 1) * kdim];
        for jj in 0..jb {
            let mut acc = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                acc = av.mul_add(b[k * n + j0 + jj], acc);
            }
            out[(i0 + ii) * n + j0 + jj] = acc;
        }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, kdim: usize, n: usize) {
    let mut i0 = 0;
    while i0 < m {
        let ib = (m - i0).min(MR);
        let mut j0 = 0;
        while j0 + 16 <= n {
            tile16(a, b, out, i0, ib, j0, kdim, n);
            j0 += 16;
        }
        if j0 + 8 <= n {
            tile8(a, b, out, i0, ib, j0, kdim, n);
            j0 += 8;
        }
        if j0 < n {
            tile_edge_fma(a, b, out, i0, ib, j0, n - j0, kdim, n);
        }
        i0 += MR;
    }
}

// ---- element-wise ----------------------------------------------------

#[target_feature(enable = "avx2,fma")]
unsafe fn add_bias_rows_avx2(data: &mut [f32], cols: usize, bias: &[f32]) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_exact_mut(cols) {
        let mut c = 0;
        while c + 8 <= cols {
            let v = _mm256_loadu_ps(row.as_ptr().add(c));
            let bv = _mm256_loadu_ps(bias.as_ptr().add(c));
            _mm256_storeu_ps(row.as_mut_ptr().add(c), _mm256_add_ps(v, bv));
            c += 8;
        }
        // Binary `+` is exactly rounded, so the scalar remainder is
        // lane-identical to `vaddps`.
        for (v, &b) in row[c..].iter_mut().zip(&bias[c..]) {
            *v += b;
        }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn relu_avx2(data: &mut [f32]) {
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= data.len() {
        let v = _mm256_loadu_ps(data.as_ptr().add(i));
        _mm256_storeu_ps(data.as_mut_ptr().add(i), _mm256_max_ps(v, zero));
        i += 8;
    }
    for v in &mut data[i..] {
        // `vmaxps(x, 0)` semantics exactly: x > 0 ? x : 0 (NaN and
        // −0.0 both map to +0.0).
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

/// `acc[i] += x[i]` over the leading `x.len()` elements. Binary `+` is
/// exactly rounded, so lanes and the scalar remainder agree with the
/// scalar backend bit-for-bit.
#[target_feature(enable = "avx2,fma")]
unsafe fn add_assign_avx2(acc: &mut [f32], x: &[f32]) {
    let n = x.len();
    let mut i = 0;
    while i + 8 <= n {
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(a, v));
        i += 8;
    }
    for (a, &v) in acc[i..n].iter_mut().zip(&x[i..n]) {
        *a += v;
    }
}

/// `acc[i] += (x[i] − mean[i])²` over the leading `x.len()` elements.
/// Deliberately sub → mul → add (no FMA contraction), so each element
/// matches the scalar backend bit-for-bit — this is what keeps SoA
/// feature aggregation backend-independent.
#[target_feature(enable = "avx2,fma")]
unsafe fn sq_diff_add_avx2(acc: &mut [f32], x: &[f32], mean: &[f32]) {
    let n = x.len();
    let mut i = 0;
    while i + 8 <= n {
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        let m = _mm256_loadu_ps(mean.as_ptr().add(i));
        let d = _mm256_sub_ps(v, m);
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a, _mm256_mul_ps(d, d)),
        );
        i += 8;
    }
    for ((a, &v), &m) in acc[i..n].iter_mut().zip(&x[i..n]).zip(&mean[i..n]) {
        let d = v - m;
        *a += d * d;
    }
}

/// `true` when every element is finite. Finiteness is the bit
/// predicate "exponent bits ≠ all-ones" — no rounding — so the vector
/// body (integer mask-and-compare) and the scalar remainder
/// (`f32::is_finite`) decide identically for every bit pattern,
/// including NaN payloads: exact parity with the scalar backend.
#[target_feature(enable = "avx2,fma")]
unsafe fn is_finite_all_avx2(data: &[f32]) -> bool {
    let exp_mask = _mm256_set1_epi32(0x7f80_0000);
    let mut i = 0;
    while i + 8 <= data.len() {
        let bits = _mm256_loadu_si256(data.as_ptr().add(i) as *const __m256i);
        // A lane is non-finite iff (bits & exp_mask) == exp_mask.
        let exp = _mm256_and_si256(bits, exp_mask);
        let bad = _mm256_cmpeq_epi32(exp, exp_mask);
        if _mm256_movemask_epi8(bad) != 0 {
            return false;
        }
        i += 8;
    }
    data[i..].iter().all(|v| v.is_finite())
}

// ---- softmax ---------------------------------------------------------

// Cephes expf constants (the classic exp_ps polynomial).
const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -88.376_26;
const LOG2EF: f32 = std::f32::consts::LOG2_E;
const EXP_C1: f32 = 0.693_359_4; // ln(2) high part
const EXP_C2: f32 = -2.121_944_4e-4; // ln(2) low part
const EXP_P0: f32 = 1.987_569_1e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_4e-1;

/// Vectorized `expf` approximation (max relative error ≈ 2⁻²², i.e. a
/// couple of ULPs).
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_ps(x: __m256) -> __m256 {
    let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
    let mut x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
    // n = floor(x·log2(e) + 0.5)
    let mut fx = _mm256_add_ps(
        _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
        _mm256_set1_ps(0.5),
    );
    fx = _mm256_floor_ps(fx);
    // x -= n·ln(2), in two parts for precision.
    x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(EXP_C1)));
    x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(EXP_C2)));
    let z = _mm256_mul_ps(x, x);
    let mut y = _mm256_set1_ps(EXP_P0);
    y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(EXP_P1));
    y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(EXP_P2));
    y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(EXP_P3));
    y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(EXP_P4));
    y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(EXP_P5));
    y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, z), x), _mm256_set1_ps(1.0));
    // 2ⁿ via the exponent bits.
    let n = _mm256_cvttps_epi32(fx);
    let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        n,
        _mm256_set1_epi32(0x7f),
    )));
    _mm256_mul_ps(y, pow2n)
}

/// Scalar mirror of [`exp_ps`]: the identical operation sequence, so a
/// remainder element matches what its vector lane would have computed.
#[inline]
fn exp_scalar_mirror(x: f32) -> f32 {
    let x = x.min(EXP_HI).max(EXP_LO);
    let fx = (x * LOG2EF + 0.5).floor();
    let x = x - fx * EXP_C1;
    let x = x - fx * EXP_C2;
    let z = x * x;
    let mut y = EXP_P0;
    y = y * x + EXP_P1;
    y = y * x + EXP_P2;
    y = y * x + EXP_P3;
    y = y * x + EXP_P4;
    y = y * x + EXP_P5;
    let y = y * z + x + 1.0;
    let n = fx as i32;
    y * f32::from_bits(((n + 0x7f) as u32) << 23)
}

/// Horizontal max of a ymm register.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hmax(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps::<1>(v);
    let lo = _mm256_castps256_ps128(v);
    let m = _mm_max_ps(lo, hi);
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps::<0b01>(m, m));
    _mm_cvtss_f32(m)
}

/// Horizontal sum of a ymm register (fixed tree order).
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps::<1>(v);
    let lo = _mm256_castps256_ps128(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
    _mm_cvtss_f32(s)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_rows_avx2(data: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_exact_mut(cols) {
        // Max reduction (exact regardless of order for finite data).
        let mut c = 0;
        let mut maxv = _mm256_set1_ps(f32::NEG_INFINITY);
        while c + 8 <= cols {
            maxv = _mm256_max_ps(maxv, _mm256_loadu_ps(row.as_ptr().add(c)));
            c += 8;
        }
        let mut max = hmax(maxv);
        for &v in &row[c..] {
            max = if v > max { v } else { max };
        }
        // All-(-inf) row: `v − max` would be NaN lane-wise. Pinned
        // guarded behavior, identical to the scalar backend: the
        // uniform distribution.
        if max == f32::NEG_INFINITY {
            row.fill(1.0 / cols as f32);
            continue;
        }
        // exp(x − max) and the sum, vector body + mirrored remainder.
        let maxb = _mm256_set1_ps(max);
        let mut sumv = _mm256_setzero_ps();
        c = 0;
        while c + 8 <= cols {
            let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(c)), maxb));
            _mm256_storeu_ps(row.as_mut_ptr().add(c), e);
            sumv = _mm256_add_ps(sumv, e);
            c += 8;
        }
        let mut total = hsum(sumv);
        for v in &mut row[c..] {
            *v = exp_scalar_mirror(*v - max);
            total += *v;
        }
        // Normalize (division is exactly rounded lane-wise).
        let totb = _mm256_set1_ps(total);
        c = 0;
        while c + 8 <= cols {
            let v = _mm256_loadu_ps(row.as_ptr().add(c));
            _mm256_storeu_ps(row.as_mut_ptr().add(c), _mm256_div_ps(v, totb));
            c += 8;
        }
        for v in &mut row[c..] {
            *v /= total;
        }
    }
}

// ---- INT8 GEMM -------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)] // mirrors the trait signature
unsafe fn int8_matmul_avx2(
    a: &[i8],
    b: &[i8],
    out: &mut [f32],
    m: usize,
    kdim: usize,
    n: usize,
    scale_a: f32,
    scale_b: f32,
) {
    let sa = _mm256_set1_ps(scale_a);
    let sb = _mm256_set1_ps(scale_b);
    for i in 0..m {
        let a_row = &a[i * kdim..(i + 1) * kdim];
        let mut j0 = 0;
        while j0 + 8 <= n {
            // 8 i32 accumulators: widen 8 bytes of the b row, multiply
            // by the broadcast a element, accumulate. i32 wrap-around
            // arithmetic is exact, so this is bit-identical to the
            // scalar backend.
            let mut acc = _mm256_setzero_si256();
            for (k, &av) in a_row.iter().enumerate() {
                let bv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                    b.as_ptr().add(k * n + j0) as *const __m128i
                ));
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(_mm256_set1_epi32(av as i32), bv));
            }
            // `(acc as f32) · scale_a · scale_b` — the same two
            // rounding steps as the scalar backend, lane-wise.
            let f = _mm256_mul_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc), sa), sb);
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j0), f);
            j0 += 8;
        }
        for j in j0..n {
            let mut acc: i32 = 0;
            for (k, &av) in a_row.iter().enumerate() {
                acc += av as i32 * b[k * n + j] as i32;
            }
            out[i * n + j] = acc as f32 * scale_a * scale_b;
        }
    }
}
