//! Algorithm-based fault tolerance (ABFT) for the dense GEMM path,
//! plus the process-wide integrity state the serve tier drives: the
//! fault sink, the chaos-injection hook and the backend quarantine
//! latch.
//!
//! # Checksum math
//!
//! For `C = A·B` (`A` m×k, `B` k×n) the wrapper computes the row-sum
//! vector of `B` once — `r = B·1` (one O(k·n) GEMV, the "one extra
//! GEMV" of classical ABFT) — and verifies every output row against
//! the identity
//!
//! ```text
//! Σⱼ C[i,j]  ==  Σₖ A[i,k] · r[k]        (exactly, in real arithmetic)
//! ```
//!
//! Both sides are accumulated in `f64`, so the only slack needed is
//! the `f32` rounding inside the GEMM itself. The tolerance scales
//! with the row's magnitude bound `Σₖ |A[i,k]| · (|B|·1)[k]` — the
//! largest value any intermediate could reach — with [`REL`] chosen
//! orders of magnitude above worst-case accumulation error so a clean
//! run can never false-positive, yet far below the smallest
//! corruption worth injecting. The comparison is written `!(diff <=
//! tol)` so a NaN or Inf in the output row trips the check too.
//!
//! Verification costs O(m·k + m·n + k·n) against the GEMM's
//! O(m·k·n) — but the workspace's inner dimensions are small (k in
//! the tens), so naive scalar-f64 checking measures ~20% of an AVX2
//! GEMM. Three things pull it under ~10%: four-lane accumulators
//! (the scalar loop is f64-add latency-bound), a two-tier tolerance
//! whose clean path never computes the magnitude bound (see
//! [`verify_gemm`]), and AVX2 packed-f64 lanes for the two hot
//! reductions where the CPU has them (never used while the AVX2
//! backend is quarantined). `sample` mode divides that again by
//! [`SAMPLE_PERIOD`] by checking every Nth dispatched GEMM (a
//! deterministic process-wide counter).
//!
//! # Fault routing
//!
//! The GEMM entry points are infallible (`Tensor2::matmul_into`
//! cannot return `Result` without rewriting every model layer), so a
//! miscompare does not unwind: it is recorded in a process-global
//! **fault sink** and the corrupt output flows on. The render
//! pipeline clears the sink before a frame and drains it at stage
//! boundaries — a recorded fault fails the frame before any pixel is
//! published (see `gen_nerf::pipeline`).
//!
//! # Quarantine
//!
//! [`quarantine`] latches a backend as untrusted (sticky for the
//! process); [`super::set_active`] refuses to re-activate it and
//! degrades to scalar. The serve tier trips this after repeated
//! miscompares attributed to the AVX2 backend.

use super::{Backend, MicroKernel};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Registry counter for dispatched (checked-path) GEMMs, per backend.
fn dispatch_counter(backend: Backend) -> gen_nerf_telemetry::Counter {
    static SCALAR: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    static AVX2: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    let cell = match backend {
        Backend::Scalar => &SCALAR,
        Backend::Avx2 => &AVX2,
    };
    *cell.get_or_init(|| {
        gen_nerf_telemetry::counter("nn_gemm_dispatch_total", &[("backend", backend.name())])
    })
}

fn abft_checks_counter() -> gen_nerf_telemetry::Counter {
    static C: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    *C.get_or_init(|| gen_nerf_telemetry::counter("nn_abft_checks_total", &[]))
}

fn abft_miscompares_counter() -> gen_nerf_telemetry::Counter {
    static C: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
    *C.get_or_init(|| gen_nerf_telemetry::counter("nn_abft_miscompares_total", &[]))
}

/// Environment variable selecting the integrity mode
/// (`off` | `sample` | `full`).
pub const INTEGRITY_ENV: &str = "GEN_NERF_INTEGRITY";

/// In `sample` mode, every `SAMPLE_PERIOD`-th dispatched GEMM is
/// verified (process-wide call counter, deterministic for a fixed
/// call sequence).
pub const SAMPLE_PERIOD: u32 = 8;

/// Relative tolerance of the row-checksum comparison, scaled by the
/// row's magnitude bound `Σₖ|A||B|`. Worst-case `f32` accumulation
/// error over the workspace's k/n is below `1e-4` of that bound;
/// `1e-3` leaves an order of magnitude of headroom (zero clean-run
/// false positives) while still catching any perturbation above a
/// tenth of a percent of the row's dynamic range.
pub const REL: f64 = 1e-3;

/// Absolute tolerance floor for rows whose magnitude bound is ~0.
const ABS_FLOOR: f64 = 1e-6;

/// ABFT verification mode for dispatched GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityMode {
    /// No verification (the default — zero overhead).
    Off,
    /// Verify every [`SAMPLE_PERIOD`]-th GEMM.
    Sample,
    /// Verify every GEMM.
    Full,
}

impl IntegrityMode {
    /// The mode's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            IntegrityMode::Off => "off",
            IntegrityMode::Sample => "sample",
            IntegrityMode::Full => "full",
        }
    }

    /// Parses a `GEN_NERF_INTEGRITY` value. Unknown values are an
    /// error carrying the offending string.
    pub fn parse(value: &str) -> Result<IntegrityMode, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "off" => Ok(IntegrityMode::Off),
            "sample" => Ok(IntegrityMode::Sample),
            "full" => Ok(IntegrityMode::Full),
            other => Err(format!(
                "unknown {INTEGRITY_ENV} value {other:?} (expected off, sample or full)"
            )),
        }
    }

    /// Resolves the mode from `GEN_NERF_INTEGRITY` (off when unset;
    /// unknown values warn on stderr and fall back to off).
    pub fn from_env() -> IntegrityMode {
        match std::env::var(INTEGRITY_ENV) {
            Ok(v) => match IntegrityMode::parse(&v) {
                Ok(m) => m,
                Err(msg) => {
                    eprintln!("gen-nerf-nn: {msg}; integrity checking off");
                    IntegrityMode::Off
                }
            },
            Err(_) => IntegrityMode::Off,
        }
    }
}

/// `MODE` holds the selected mode: 0 = not yet resolved, otherwise
/// `mode_code`.
static MODE: AtomicU8 = AtomicU8::new(0);

fn mode_code(m: IntegrityMode) -> u8 {
    match m {
        IntegrityMode::Off => 1,
        IntegrityMode::Sample => 2,
        IntegrityMode::Full => 3,
    }
}

fn mode_from_code(c: u8) -> IntegrityMode {
    match c {
        1 => IntegrityMode::Off,
        2 => IntegrityMode::Sample,
        3 => IntegrityMode::Full,
        _ => unreachable!("invalid integrity mode code {c}"),
    }
}

/// The active integrity mode, resolving it from the environment on
/// first use.
pub fn mode() -> IntegrityMode {
    match MODE.load(Ordering::Relaxed) {
        0 => {
            let m = IntegrityMode::from_env();
            MODE.store(mode_code(m), Ordering::Relaxed);
            m
        }
        c => mode_from_code(c),
    }
}

/// Overrides the integrity mode at runtime (benchmarks measure
/// per-mode overhead in one process this way; tests serialize around
/// it).
pub fn set_mode(m: IntegrityMode) {
    MODE.store(mode_code(m), Ordering::Relaxed);
}

/// A detected GEMM output miscompare.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityError {
    /// The backend that produced the miscomparing output.
    pub backend: Backend,
    /// First output row that failed the checksum.
    pub row: usize,
    /// GEMM shape (`m × k · k × n`).
    pub m: usize,
    /// Shared dimension.
    pub k: usize,
    /// Output width.
    pub n: usize,
    /// Observed row sum `Σⱼ C[i,j]`.
    pub observed: f64,
    /// Expected row sum `Σₖ A[i,k]·r[k]`.
    pub expected: f64,
    /// The tolerance the difference exceeded.
    pub tolerance: f64,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GEMM integrity miscompare on backend {}: row {} of {}x{}x{} \
             sums to {:.6e}, checksum expects {:.6e} (tol {:.3e})",
            self.backend.name(),
            self.row,
            self.m,
            self.k,
            self.n,
            self.observed,
            self.expected,
            self.tolerance
        )
    }
}

/// Process-global fault sink: the most recent undrained miscompare.
/// One slot suffices — the pipeline fails the whole frame on the
/// first recorded fault; later faults from the same corrupt pass add
/// nothing.
static FAULT: Mutex<Option<IntegrityError>> = Mutex::new(None);

/// Count of verified GEMMs (clean or not) since process start.
static CHECKS: AtomicU64 = AtomicU64::new(0);

/// Count of recorded miscompares since process start.
static FAULTS: AtomicU64 = AtomicU64::new(0);

/// Dispatched-GEMM counter driving `sample` mode.
static CALLS: AtomicU32 = AtomicU32::new(0);

/// Records a miscompare in the fault sink (first fault wins until
/// drained) and bumps the fault counter.
pub fn record_fault(err: IntegrityError) {
    FAULTS.fetch_add(1, Ordering::Relaxed);
    abft_miscompares_counter().inc();
    let mut slot = FAULT.lock().unwrap();
    if slot.is_none() {
        *slot = Some(err);
    }
}

/// Drains the fault sink, returning the oldest undrained miscompare.
pub fn take_fault() -> Option<IntegrityError> {
    FAULT.lock().unwrap().take()
}

/// `(verified GEMMs, recorded miscompares)` since process start.
pub fn check_stats() -> (u64, u64) {
    (
        CHECKS.load(Ordering::Relaxed),
        FAULTS.load(Ordering::Relaxed),
    )
}

// ---- chaos injection -------------------------------------------------

/// When armed, the next *verified* GEMM perturbs one output element
/// (deterministically placed from the seed) before verification runs
/// — the `Fault::CorruptOutput` GEMM leg of the chaos harness. The
/// perturbation lands well above the row tolerance, so detection is
/// guaranteed; arming is consumed by exactly one GEMM.
static ARMED: Mutex<Option<u64>> = Mutex::new(None);

/// Arms GEMM-output corruption for the next verified GEMM.
pub fn arm_corruption(seed: u64) {
    *ARMED.lock().unwrap() = Some(seed);
}

/// Disarms any pending GEMM corruption (frame teardown), returning
/// `true` when a charge was still pending.
pub fn disarm_corruption() -> bool {
    ARMED.lock().unwrap().take().is_some()
}

// ---- quarantine ------------------------------------------------------

/// `QUARANTINED` holds the latched-untrusted backend: 0 = none,
/// otherwise `super::backend_code`. Sticky for the process.
static QUARANTINED: AtomicU8 = AtomicU8::new(0);

/// Latches `backend` as untrusted for the rest of the process and, if
/// it is currently active, degrades the active kernel to scalar.
/// Returns `true` when this call performed the latch (`false` when
/// already quarantined — callers count quarantine *events*).
pub fn quarantine(backend: Backend) -> bool {
    let code = super::backend_code(backend);
    let newly = QUARANTINED
        .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok();
    if newly {
        static LATCHES: OnceLock<gen_nerf_telemetry::Counter> = OnceLock::new();
        LATCHES
            .get_or_init(|| gen_nerf_telemetry::counter("nn_quarantine_latches_total", &[]))
            .inc();
        eprintln!(
            "gen-nerf-nn: backend {} quarantined after repeated integrity miscompares; \
             falling back to scalar kernels for the rest of the process",
            backend.name()
        );
    }
    if super::active_backend() == backend {
        // set_active consults the latch and installs scalar.
        super::set_active(Backend::Scalar);
    }
    newly
}

/// `true` when `backend` is latched untrusted.
pub fn is_quarantined(backend: Backend) -> bool {
    QUARANTINED.load(Ordering::Relaxed) == super::backend_code(backend)
}

/// The quarantined backend, if any.
pub fn quarantined() -> Option<Backend> {
    match QUARANTINED.load(Ordering::Relaxed) {
        0 => None,
        c => Some(super::backend_from_code(c)),
    }
}

/// Clears the quarantine latch. Test/bench support only: production
/// quarantine is deliberately sticky.
pub fn clear_quarantine_for_tests() {
    QUARANTINED.store(0, Ordering::Relaxed);
}

// ---- the checked GEMM wrapper ----------------------------------------

/// Dispatched GEMM entry point: runs `kernel.matmul` and, when the
/// active [`IntegrityMode`] elects this call, verifies the output
/// rows against the ABFT checksum, recording any miscompare in the
/// fault sink. `Off` adds one relaxed atomic load over the raw call.
pub fn checked_matmul(
    kernel: &dyn MicroKernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    kernel.matmul(a, b, out, m, k, n);
    if gen_nerf_telemetry::enabled() {
        dispatch_counter(kernel.backend()).inc();
    }
    let verify = match mode() {
        IntegrityMode::Off => false,
        IntegrityMode::Full => true,
        IntegrityMode::Sample => CALLS.fetch_add(1, Ordering::Relaxed) % SAMPLE_PERIOD == 0,
    };
    if !verify || m == 0 || n == 0 {
        return;
    }
    CHECKS.fetch_add(1, Ordering::Relaxed);
    abft_checks_counter().inc();

    // Chaos hook: perturb one element far beyond its row tolerance so
    // the verification below must catch it (100%-detection gate).
    if let Some(seed) = ARMED.lock().unwrap().take() {
        let row = (seed as usize) % m;
        let col = ((seed >> 17) as usize) % n;
        let bound = row_magnitude_bound(&a[row * k..(row + 1) * k], b, n);
        let delta = (REL * bound + ABS_FLOOR) * 4096.0 + 1.0;
        out[row * n + col] += delta as f32;
    }

    if let Some(err) = verify_gemm(kernel.backend(), a, b, out, m, k, n) {
        record_fault(err);
    }
}

/// The tolerance scale of one output row: `Σₖ |A[i,k]| · (|B|·1)[k]`.
fn row_magnitude_bound(a_row: &[f32], b: &[f32], n: usize) -> f64 {
    a_row
        .iter()
        .zip(b.chunks_exact(n))
        .map(|(&av, b_row)| {
            (av as f64).abs() * b_row.iter().map(|&v| (v as f64).abs()).sum::<f64>()
        })
        .sum()
}

/// Sums `xs` widened to `f64` via four independent accumulators. The
/// naive single-accumulator loop is bound by the f64 add latency
/// chain, not memory — splitting the chain (and letting LLVM vectorize
/// the widened lanes) is what keeps `full` checking a single-digit
/// percentage of an AVX2 GEMM. Reassociation moves the sum by at most
/// a few ULPs, noise against the [`REL`] tolerance's
/// orders-of-magnitude headroom.
#[inline]
fn sum_f64(xs: &[f32]) -> f64 {
    let mut s = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        for l in 0..4 {
            s[l] += c[l] as f64;
        }
    }
    let mut st = (s[0] + s[1]) + (s[2] + s[3]);
    for &v in chunks.remainder() {
        st += v as f64;
    }
    st
}

/// `Σₖ a[k]·r[k]` with the same four-lane accumulation as [`sum_f64`].
#[inline]
fn dot_f64(a_row: &[f32], r: &[f64]) -> f64 {
    let mut e = [0.0f64; 4];
    let head = a_row.len() / 4 * 4;
    let mut i = 0;
    while i < head {
        for l in 0..4 {
            e[l] += a_row[i + l] as f64 * r[i + l];
        }
        i += 4;
    }
    let mut et = (e[0] + e[1]) + (e[2] + e[3]);
    for j in head..a_row.len() {
        et += a_row[j] as f64 * r[j];
    }
    et
}

/// AVX2 lanes for the verification reductions. The checker must not
/// become the bottleneck it guards against: on large fused batches the
/// AVX2 GEMM's per-element cost drops enough that portable-f64
/// checking climbs toward 20% of render time, so the two hot
/// reductions get `_mm256_cvtps_pd` + packed-f64 accumulation (4×
/// fewer rounds, same f64 precision). The slow bound path stays
/// portable — it runs only on corruption or heavy cancellation.
#[cfg(target_arch = "x86_64")]
mod simd {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn hsum(v: __m256d) -> f64 {
        let s = _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// `Σ xs` widened to f64. Caller guarantees AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_f64(xs: &[f32]) -> f64 {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let n8 = xs.len() / 8 * 8;
        let mut i = 0;
        while i < n8 {
            let v = _mm256_loadu_ps(xs.as_ptr().add(i));
            acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
            acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
            i += 8;
        }
        let mut s = hsum(_mm256_add_pd(acc0, acc1));
        for &v in &xs[n8..] {
            s += v as f64;
        }
        s
    }

    /// `Σₖ a[k]·r[k]`, `a` widened to f64. Caller guarantees AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_f64(a: &[f32], r: &[f64]) -> f64 {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let n8 = a.len() / 8 * 8;
        let mut i = 0;
        while i < n8 {
            let v = _mm256_loadu_ps(a.as_ptr().add(i));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
            acc0 = _mm256_fmadd_pd(lo, _mm256_loadu_pd(r.as_ptr().add(i)), acc0);
            acc1 = _mm256_fmadd_pd(hi, _mm256_loadu_pd(r.as_ptr().add(i + 4)), acc1);
            i += 8;
        }
        let mut s = hsum(_mm256_add_pd(acc0, acc1));
        for j in n8..a.len() {
            s += a[j] as f64 * r[j];
        }
        s
    }
}

/// Whether the wide verification lanes may run: the CPU must have
/// them, and the AVX2 backend must not be quarantined — a unit
/// distrusted for GEMMs does not get to check its own work; the
/// portable lanes take over and check the scalar GEMMs instead.
#[inline]
fn wide_lanes_ok() -> bool {
    cfg!(target_arch = "x86_64") && Backend::Avx2.available() && !is_quarantined(Backend::Avx2)
}

/// `Σ xs` widened to f64, dispatching to the AVX2 lanes when allowed.
#[inline]
fn vsum_f64(xs: &[f32], wide: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if wide {
        // SAFETY: `wide` implies `Backend::Avx2.available()`, which
        // detects avx2+fma at runtime.
        return unsafe { simd::sum_f64(xs) };
    }
    let _ = wide;
    sum_f64(xs)
}

/// `Σₖ a[k]·r[k]`, dispatching to the AVX2 lanes when allowed.
#[inline]
fn vdot_f64(a_row: &[f32], r: &[f64], wide: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if wide {
        // SAFETY: as in `vsum_f64`.
        return unsafe { simd::dot_f64(a_row, r) };
    }
    let _ = wide;
    dot_f64(a_row, r)
}

/// `Σₖ |a[k]|·rabs[k]` — the slow-path tolerance scale.
#[inline]
fn abs_dot_f64(a_row: &[f32], rabs: &[f64]) -> f64 {
    let mut bo = [0.0f64; 4];
    let head = a_row.len() / 4 * 4;
    let mut i = 0;
    while i < head {
        for l in 0..4 {
            bo[l] += (a_row[i + l] as f64).abs() * rabs[i + l];
        }
        i += 4;
    }
    let mut bt = (bo[0] + bo[1]) + (bo[2] + bo[3]);
    for j in head..a_row.len() {
        bt += (a_row[j] as f64).abs() * rabs[j];
    }
    bt
}

/// Verifies `out = a·b` against the row-checksum identity, returning
/// the first miscomparing row. Pure — no mode gating, no fault sink —
/// so tests exercise detection directly; [`checked_matmul`] is the
/// dispatched entry that layers both on top.
///
/// Two-tier tolerance: since `|r[k]| ≤ rabs[k]` termwise, the checksum
/// itself satisfies `|expected| ≤ bound`, so `REL·|expected| +
/// ABS_FLOOR` *lower-bounds* the true tolerance — a residual inside it
/// is inside the true tolerance a fortiori, and the clean path never
/// touches the magnitude bound at all. Only a row that misses the fast
/// accept (corruption, or heavy cancellation in the checksum) pays for
/// `|B|·1` and the per-row `Σ|A|·rabs` — computed lazily, once.
pub fn verify_gemm(
    backend: Backend,
    a: &[f32],
    b: &[f32],
    out: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Option<IntegrityError> {
    let wide = wide_lanes_ok();
    // One extra GEMV: r = B·1.
    let mut r = vec![0.0f64; k];
    for (kk, row) in b.chunks_exact(n).enumerate() {
        r[kk] = vsum_f64(row, wide);
    }
    let mut rabs: Option<Vec<f64>> = None;

    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &out[i * n..(i + 1) * n];
        let observed = vsum_f64(c_row, wide);
        let expected = vdot_f64(a_row, &r, wide);
        let diff = (observed - expected).abs();
        if diff <= REL * expected.abs() + ABS_FLOOR {
            continue; // fast accept — a NaN diff falls through
        }
        let rabs = rabs.get_or_insert_with(|| {
            b.chunks_exact(n)
                .map(|row| row.iter().map(|&v| (v as f64).abs()).sum())
                .collect()
        });
        let bound = abs_dot_f64(a_row, rabs);
        let tolerance = REL * bound + ABS_FLOOR;
        // Written `!(x <= tol)` so a NaN/Inf row sum also trips.
        if !(diff <= tolerance) {
            return Some(IntegrityError {
                backend,
                row: i,
                m,
                k,
                n,
                observed,
                expected,
                tolerance,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::kernel_for;
    use proptest::prelude::*;

    fn runnable_backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        if Backend::Avx2.available() {
            v.push(Backend::Avx2);
        }
        v
    }

    #[test]
    fn mode_parses_known_names() {
        assert_eq!(IntegrityMode::parse("off"), Ok(IntegrityMode::Off));
        assert_eq!(IntegrityMode::parse(""), Ok(IntegrityMode::Off));
        assert_eq!(IntegrityMode::parse(" Sample "), Ok(IntegrityMode::Sample));
        assert_eq!(IntegrityMode::parse("FULL"), Ok(IntegrityMode::Full));
        assert!(IntegrityMode::parse("paranoid").is_err());
    }

    /// A clean GEMM output passes verification on every backend, for
    /// shapes spanning full tiles and every edge path — the
    /// zero-false-positive half of the ABFT contract.
    #[test]
    fn clean_gemm_outputs_verify_on_every_backend() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (6, 8, 16),
            (7, 13, 17),
            (12, 64, 33),
            (23, 19, 9),
        ] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.21)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.17)
                .collect();
            for backend in runnable_backends() {
                let mut out = vec![f32::NAN; m * n];
                kernel_for(backend).matmul(&a, &b, &mut out, m, k, n);
                assert_eq!(
                    verify_gemm(backend, &a, &b, &out, m, k, n),
                    None,
                    "{}: clean {m}x{k}x{n} false-positived",
                    backend.name()
                );
            }
        }
    }

    /// NaN and Inf in the output always trip verification (the
    /// `!(diff <= tol)` form), pinpointing the poisoned row.
    #[test]
    fn non_finite_outputs_always_trip() {
        let (m, k, n) = (4usize, 5usize, 6usize);
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut out = vec![f32::NAN; m * n];
            kernel_for(Backend::Scalar).matmul(&a, &b, &mut out, m, k, n);
            out[2 * n + 3] = poison;
            let err = verify_gemm(Backend::Scalar, &a, &b, &out, m, k, n)
                .expect("poisoned output must miscompare");
            assert_eq!(err.row, 2);
        }
    }

    // The quarantine latch test lives in `tests/quarantine.rs`: it
    // must flip the process-global active backend, which would race
    // the dispatched bitwise property tests sharing this test binary.

    #[test]
    fn fault_sink_is_first_write_wins_until_drained() {
        let err = |row| IntegrityError {
            backend: Backend::Scalar,
            row,
            m: 1,
            k: 1,
            n: 1,
            observed: 1.0,
            expected: 0.0,
            tolerance: 1e-6,
        };
        // Drain whatever a concurrent test may have left behind.
        let _ = take_fault();
        record_fault(err(7));
        record_fault(err(9));
        assert_eq!(take_fault().map(|e| e.row), Some(7));
        assert_eq!(take_fault(), None);
    }

    proptest! {
        /// The satellite contract: ABFT detects **any** single-element
        /// perturbation above the row tolerance (and never flags the
        /// clean output), on both `GEN_NERF_KERNEL` backends.
        #[test]
        fn prop_single_element_perturbation_is_detected(
            m in 1usize..9,
            k in 1usize..17,
            n in 1usize..21,
            idx in 0usize..9 * 21,
            scale in 1.5f64..1000.0,
            raw in proptest::collection::vec(-4.0f32..4.0, 9 * 17 + 17 * 21),
        ) {
            let a = &raw[..m * k];
            let b = &raw[9 * 17..9 * 17 + k * n];
            let idx = idx % (m * n);
            for backend in runnable_backends() {
                let mut out = vec![f32::NAN; m * n];
                kernel_for(backend).matmul(a, b, &mut out, m, k, n);
                prop_assert_eq!(
                    verify_gemm(backend, a, b, &out, m, k, n),
                    None,
                    "{}: clean output flagged", backend.name()
                );
                let row = idx / n;
                let bound = row_magnitude_bound(&a[row * k..(row + 1) * k], b, n);
                let delta = (REL * bound + 1e-6) * scale;
                out[idx] += delta as f32;
                let err = verify_gemm(backend, a, b, &out, m, k, n);
                prop_assert!(
                    err.is_some(),
                    "{}: perturbation of {delta:.3e} at {idx} undetected",
                    backend.name()
                );
                prop_assert_eq!(err.unwrap().row, row);
            }
        }
    }
}
