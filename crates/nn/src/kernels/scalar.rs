//! The portable register-blocked scalar backend — the bit-exact
//! reference every other backend is pinned against.
//!
//! The GEMM here is the kernel the fused-inference work was built on:
//! output tiles of [`MR`]`×`[`NR`] elements held in registers while
//! the shared dimension `k` is walked **in ascending order** with one
//! `f32` accumulator per output element — exactly the accumulation
//! order of the textbook triple loop. Blocking tiles `i`/`j` only, so
//! the result equals the naive reference bit-for-bit and every output
//! row is independent of which other rows share the batch (the fused
//! cross-ray contract). The remaining ops reproduce the historical
//! element-wise arithmetic unchanged.

use super::{Backend, MicroKernel};

/// Rows per register tile of the blocked `matmul` kernel.
pub const MR: usize = 6;

/// Columns per register tile of the blocked `matmul` kernel.
pub const NR: usize = 8;

/// One full MR×NR register tile: fixed-size accumulators and
/// fixed-width `b` rows so the inner loop auto-vectorizes. Each
/// accumulator walks `k` in ascending order (the bit-exactness
/// contract; see the module docs).
#[inline]
fn tile_full(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, j0: usize, kdim: usize, n: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for k in 0..kdim {
        let b_row: &[f32; NR] = b[k * n + j0..k * n + j0 + NR].try_into().unwrap();
        for ii in 0..MR {
            let aik = a[(i0 + ii) * kdim + k];
            let acc_row = &mut acc[ii];
            for jj in 0..NR {
                acc_row[jj] += aik * b_row[jj];
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate() {
        let row = (i0 + ii) * n + j0;
        out[row..row + NR].copy_from_slice(acc_row);
    }
}

/// A partial edge tile (`ib ≤ MR` rows, `jb ≤ NR` columns): same
/// accumulation order as [`tile_full`], variable bounds.
#[inline]
#[allow(clippy::too_many_arguments)] // internal tile helper mirroring tile_full + bounds
fn tile_edge(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    ib: usize,
    jb: usize,
    kdim: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for k in 0..kdim {
        let b_row = &b[k * n + j0..k * n + j0 + jb];
        for (ii, acc_row) in acc.iter_mut().enumerate().take(ib) {
            let aik = a[(i0 + ii) * kdim + k];
            for (jj, &bv) in b_row.iter().enumerate() {
                acc_row[jj] += aik * bv;
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate().take(ib) {
        let row = (i0 + ii) * n + j0;
        out[row..row + jb].copy_from_slice(&acc_row[..jb]);
    }
}

/// The register-blocked GEMM: `out = a · b` with `a` of shape `m × k`,
/// `b` of shape `k × n`, both row-major. `out` is fully overwritten.
pub(crate) fn matmul_kernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kdim: usize,
    n: usize,
) {
    let mut i0 = 0;
    while i0 < m {
        let ib = (m - i0).min(MR);
        let mut j0 = 0;
        if ib == MR {
            while j0 + NR <= n {
                tile_full(a, b, out, i0, j0, kdim, n);
                j0 += NR;
            }
        }
        while j0 < n {
            let jb = (n - j0).min(NR);
            tile_edge(a, b, out, i0, j0, ib, jb, kdim, n);
            j0 += NR;
        }
        i0 += MR;
    }
}

/// The scalar [`MicroKernel`].
#[derive(Debug, Default)]
pub struct ScalarKernel;

impl MicroKernel for ScalarKernel {
    fn backend(&self) -> Backend {
        Backend::Scalar
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        matmul_kernel(a, b, out, m, k, n);
    }

    fn add_bias_rows(&self, data: &mut [f32], cols: usize, bias: &[f32]) {
        debug_assert_eq!(bias.len(), cols);
        debug_assert_eq!(data.len() % cols.max(1), 0);
        if cols == 0 {
            return;
        }
        for row in data.chunks_exact_mut(cols) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    fn relu(&self, data: &mut [f32]) {
        data.iter_mut().for_each(|v| *v = v.max(0.0));
    }

    fn add_assign(&self, acc: &mut [f32], x: &[f32]) {
        // Hard assert: the AVX2 backend would walk past `acc` on this
        // misuse, so every backend must reject it identically.
        assert!(x.len() <= acc.len(), "add_assign: x longer than acc");
        for (a, &v) in acc.iter_mut().zip(x) {
            *a += v;
        }
    }

    fn sq_diff_add(&self, acc: &mut [f32], x: &[f32], mean: &[f32]) {
        assert!(x.len() <= acc.len(), "sq_diff_add: x longer than acc");
        assert!(x.len() <= mean.len(), "sq_diff_add: x longer than mean");
        for ((a, &v), &m) in acc.iter_mut().zip(x).zip(mean) {
            let d = v - m;
            *a += d * d;
        }
    }

    fn softmax_rows(&self, data: &mut [f32], cols: usize) {
        debug_assert_eq!(data.len() % cols.max(1), 0);
        if cols == 0 {
            return;
        }
        for row in data.chunks_exact_mut(cols) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            // All-(-inf) row: `v − max` would be NaN for every element
            // (a fully-masked attention row). The pinned guarded
            // behavior on every backend is the uniform distribution.
            if max == f32::NEG_INFINITY {
                row.fill(1.0 / cols as f32);
                continue;
            }
            let mut total = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                total += *v;
            }
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }

    fn is_finite_all(&self, data: &[f32]) -> bool {
        // `f32::is_finite` is the bit predicate "exponent ≠ all-ones";
        // no arithmetic, so this is the exact reference for every
        // backend.
        data.iter().all(|v| v.is_finite())
    }

    fn int8_matmul(
        &self,
        a: &[i8],
        b: &[i8],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        scale_a: f32,
        scale_b: f32,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc: i32 = 0;
                for t in 0..k {
                    acc += a[i * k + t] as i32 * b[t * n + j] as i32;
                }
                out[i * n + j] = acc as f32 * scale_a * scale_b;
            }
        }
    }
}
