//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `Bencher::iter`, benchmark groups, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer (median of a few timed batches after warm-up)
//! instead of criterion's statistical machinery. Results print as
//! `name ... time/iter`. The build environment has no crates.io
//! access; swapping in the real criterion is a path-dependency change
//! (see `crates/vendor/README.md`).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    quick: bool,
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `f`: warm-up, then `samples` batches; records the median
    /// per-iteration time. In `--test` mode (smoke runs, e.g.
    /// `cargo bench -- --test` in CI) the body executes exactly once
    /// and the single-call time is recorded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.quick {
            let t0 = Instant::now();
            black_box(f());
            self.measured = Some(t0.elapsed());
            return;
        }
        // Warm-up + batch sizing: grow until one batch takes >= 5 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed() / batch as u32
            })
            .collect();
        per_iter.sort_unstable();
        self.measured = Some(per_iter[per_iter.len() / 2]);
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, quick: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        quick,
        measured: None,
    };
    f(&mut b);
    let mode = if quick { " (smoke)" } else { "" };
    match b.measured {
        Some(t) => println!("bench {label:<48} {}{mode}", human(t)),
        None => println!("bench {label:<48} (no measurement){mode}"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` smoke mode: run every benchmark body
        // exactly once so CI can prove the benches compile and run
        // without paying for real measurements (real criterion's
        // test-mode analog).
        let quick = std::env::args().any(|a| a == "--test");
        Self { samples: 7, quick }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, self.quick, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            quick: self.quick,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 100);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            self.quick,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            self.quick,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
