//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's tests use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for
//!   primitive `Range`s and tuples of strategies,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros.
//!
//! Cases are generated deterministically (ChaCha8 seeded from the test
//! name), so failures reproduce exactly. Shrinking is not implemented —
//! a failing case reports its index and message instead. The build
//! environment has no crates.io access; swapping in the real proptest
//! is a path-dependency change (see `crates/vendor/README.md`).

use std::ops::Range;

pub mod test_runner {
    //! The deterministic case driver used by [`crate::proptest!`].

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Number of cases each property runs by default (override with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`).
    pub const CASES: u32 = 64;

    /// Runner configuration (`proptest::test_runner::Config` analog).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: CASES }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert!`/`prop_assert_eq!` failed.
        Fail(String),
    }

    /// Deterministic per-test random stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Seeds the stream from the test name (FNV-1a).
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self(ChaCha8Rng::seed_from_u64(h))
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_float_strategy {
    ($t:ty, $unit:ident) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.$unit() as $t
            }
        }
    };
}

impl_float_strategy!(f32, unit_f64);
impl_float_strategy!(f64, unit_f64);

macro_rules! impl_int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    };
}

impl_int_strategy!(u8);
impl_int_strategy!(u16);
impl_int_strategy!(u32);
impl_int_strategy!(u64);
impl_int_strategy!(usize);
impl_int_strategy!(i8);
impl_int_strategy!(i16);
impl_int_strategy!(i32);
impl_int_strategy!(i64);
impl_int_strategy!(isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A fixed or ranged collection length.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a fixed length or a `Range<usize>` of
    /// lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// expands to a `#[test]` running [`test_runner::CASES`] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (@cases $cases:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            msg
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)]
     $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::test_runner::CASES; $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, 2.0f64..3.0)
    }

    proptest! {
        #[test]
        fn ranges_respected(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn tuples_and_assume(p in arb_pair()) {
            prop_assume!(p.0 > 0.01);
            prop_assert!(p.1 > p.0);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f32..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn vec_fixed_len(v in crate::collection::vec(0.0f32..1.0, 16)) {
            prop_assert_eq!(v.len(), 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(
            (0.0f32..1.0).sample(&mut a).to_bits(),
            (0.0f32..1.0).sample(&mut b).to_bits()
        );
    }
}
