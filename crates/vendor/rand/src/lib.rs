//! Offline stand-in for `rand` (0.8-compatible trait surface).
//!
//! Implements exactly the API this workspace consumes — `RngCore`,
//! `SeedableRng`, `Rng::{gen, gen_range}` over primitive ranges, and
//! `seq::SliceRandom::shuffle` — so the build needs no crates.io
//! access. The one generator in the tree is `rand_chacha::ChaCha8Rng`,
//! which implements the real ChaCha8 permutation, so seeded streams
//! are high-quality and reproducible.

use std::ops::Range;

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the unit interval / full bit range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Ranges samplable by [`Rng::gen_range`]; the type parameter lets the
/// expected output type drive literal inference (`gen_range(0.0..1.0)`
/// in an `f32` position samples an `f32`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * u
            }
        }
    };
}

impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                // Widening multiply keeps the bias below 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    };
}

impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice randomization (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(2.0f32..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn int_range_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..12);
            assert!((5..12).contains(&v));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..32).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
