//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on most public types
//! but never serializes anything in-process, and this repository builds
//! in environments with no access to crates.io. These derives therefore
//! expand to nothing; swapping in the real `serde`/`serde_derive` is a
//! two-line `Cargo.toml` change (see `crates/vendor/README.md`).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
