//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] implements the actual ChaCha permutation with 8
//! rounds (RFC 7539 quarter-round on the standard 16-word state), so
//! every seeded stream in the workspace has real statistical quality
//! and is reproducible from its 64-bit seed. Stream positions are not
//! bit-compatible with the upstream crate, which is irrelevant here:
//! no golden data depends on specific draws, only on seed-determinism.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // "expand 32-byte k" constants + a seed expanded by splitmix64,
        // matching how upstream fills the 256-bit key from a u64 seed.
        let mut key = [0u32; 8];
        let mut x = seed;
        for pair in key.chunks_mut(2) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Words 12..16: block counter and nonce, all zero.
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn chacha_diffusion() {
        // Flipping the seed's low bit changes roughly half the output
        // bits of the first block — the permutation actually runs.
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut differing = 0u32;
        for _ in 0..16 {
            differing += (a.next_u32() ^ b.next_u32()).count_ones();
        }
        assert!(
            (150..360).contains(&differing),
            "differing bits = {differing}"
        );
    }
}
