//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as empty marker traits plus the
//! matching no-op derive macros, which is all this workspace uses (the
//! derives annotate public types for downstream consumers; nothing is
//! serialized in-process). The build environment has no crates.io
//! access, so this keeps the annotations compiling; swapping in the
//! real serde is a path-dependency change in `crates/vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
