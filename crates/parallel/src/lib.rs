//! Deterministic fork–join data parallelism.
//!
//! The render pipeline, the accelerator simulator and the benchmark
//! harness all fan the same shape of work out over cores: a slice of
//! independent items, each mapped to a result, with results needed in
//! input order. This crate provides that shape — a rayon-style
//! `par_map` built on `std::thread::scope` — with two properties the
//! workspace relies on:
//!
//! * **Determinism.** Results are returned in input order and each
//!   item's computation receives only its index and value, so the
//!   output is bit-for-bit identical no matter how many threads run
//!   (including one). The parallel renderer's regression test pins
//!   this.
//! * **Zero dependencies.** Scoped threads only; no external crates,
//!   no global thread pool, no work stealing. Items are split into one
//!   contiguous chunk per worker, which is the right grain for the
//!   workspace's workloads (rays of a frame, patches of a stage,
//!   points of a sweep).
//!
//! The worker count comes from [`num_threads`]: the `GEN_NERF_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "GEN_NERF_THREADS";

/// A cooperative cancellation flag, shared between a supervisor that
/// decides a computation is no longer wanted and the workers running
/// it. Cloning is cheap (an `Arc` bump); all clones observe the same
/// flag. Cancellation is level-triggered and sticky: once
/// [`cancel`](CancelToken::cancel) is called every subsequent
/// [`is_cancelled`](CancelToken::is_cancelled) returns `true`.
///
/// The token never interrupts anything by itself — long computations
/// must poll it at natural boundaries (chunk starts, per-ray loops)
/// and wind down early. A computation that never checks the token is
/// bit-for-bit unaffected by its existence, which keeps cancellable
/// and plain render paths byte-identical when no cancel fires.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; wakes nobody — pollers observe it
    /// at their next checkpoint.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// A [`Pool`] job failed because a worker panicked while executing it.
///
/// The pool itself survives: poison is cleared when the next job is
/// submitted, so callers can treat this as a per-job error and keep
/// using the pool (see [`Pool::try_run_chunks`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    message: String,
}

impl PoolError {
    /// The panic payload of the (first) worker that panicked, when it
    /// was a string; `"pool worker panicked"` otherwise.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool worker panicked: {}", self.message)
    }
}

impl std::error::Error for PoolError {}

/// The configured worker count: `GEN_NERF_THREADS` if set and
/// positive, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` in input order with the default worker count.
///
/// Equivalent to `par_map_threads(items, num_threads(), f)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// Maps `f` over `items` in input order using up to `threads` workers.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or too few
/// items to split) the map runs inline on the caller's thread; the
/// output is identical either way, which is what makes the sequential
/// and parallel render paths comparable bit-for-bit.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One contiguous chunk per worker, sized within one item of each
    // other so no worker idles while another drains a long tail.
    let chunk = n.div_ceil(workers);
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move || {
                    let base = w * chunk;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Like [`par_map`], but stays inline unless there are at least
/// `min_items_per_thread` items per worker — the grain guard for hot
/// loops that run many small batches (e.g. per-ray training steps).
pub fn par_map_min<T, R, F>(items: &[T], min_items_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads();
    if items.len() < min_items_per_thread.max(1) * 2 || threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let usable = (items.len() / min_items_per_thread.max(1))
        .max(1)
        .min(threads);
    par_map_threads(items, usable, f)
}

/// Maps `f` over index chunks of `0..n`, in order: each call receives
/// `(start, end)` of a contiguous range, and the per-chunk results are
/// concatenated in range order. Useful when the caller wants one
/// worker-local accumulator per chunk rather than per item.
pub fn par_chunk_ranges<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|(s, e)| f(s, e)).collect();
    }
    let f = &f;
    let mut results = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || f(s, e)))
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results
}

/// Splits `0..n` into at most `threads` contiguous ranges, sized
/// within one item of each other — the chunk geometry shared by
/// [`par_chunk_ranges`] and [`Pool::run_chunks`], so a computation is
/// bit-for-bit identical whichever executor runs it.
fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(workers).max(1);
    (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect()
}

/// Splits a worker budget of `total` threads into `parts` shares, each
/// at least one thread, sized within one of each other (larger shares
/// first). When `total < parts` every share still gets one thread —
/// the caller oversubscribes rather than starving a part, which is the
/// right trade for scheduler shards that are mostly parked.
///
/// This is how a sharded server carves one machine-wide thread budget
/// into per-shard [`Pool`]s: `partition_threads(budget, shards)[i]` is
/// shard `i`'s pool size, so the shards together hold (about) the
/// budget while each keeps the fork–join width it needs to make
/// progress independently.
pub fn partition_threads(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let total = total.max(1);
    let base = total / parts;
    let rem = total % parts;
    (0..parts)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

/// One job broadcast to the pool: an erased-lifetime pointer to the
/// caller's task closure. Soundness rests on [`Pool::run_chunks`]
/// blocking until every worker has finished the job, so the pointee
/// (which lives on the caller's stack) strictly outlives every use.
struct Job {
    /// `f(slot)` runs task `slot`; valid only for the current epoch.
    f: *const (dyn Fn(usize) + Sync),
    /// Tasks in this job; workers with index ≥ `tasks` sit it out.
    tasks: usize,
}

// The raw pointer is only dereferenced between the epoch broadcast and
// the matching completion notification, both inside `run_chunks`'s
// borrow of `f`.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Monotonic job counter; workers run a job exactly once per epoch.
    epoch: u64,
    /// Workers still executing the current epoch's job.
    running: usize,
    /// Panic message of the first worker that panicked while executing
    /// the current job (`None` while the job is clean).
    poisoned: Option<String>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Serializes submitters: one job in flight at a time.
    submit: Mutex<()>,
    /// Wakes workers for a new epoch or shutdown.
    work: Condvar,
    /// Wakes the submitter when `running` reaches zero.
    done: Condvar,
}

/// A persistent fork–join worker pool.
///
/// [`par_map`]/[`par_chunk_ranges`] spawn scoped threads per call —
/// the right trade for one-shot frame renders, but a steady-state
/// request server pays that spawn/join tax on every chunk fan-out of
/// every frame. `Pool` keeps the workers alive across jobs: threads
/// are spawned once, parked on a condvar between jobs, and reused for
/// every [`Pool::run_chunks`] call. Chunk geometry and result order
/// are identical to [`par_chunk_ranges`], so swapping executors never
/// changes rendered output (the serve regression suite pins this).
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                running: 0,
                poisoned: None,
                shutdown: false,
            }),
            submit: Mutex::new(()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = Self::spawn_crew(&shared, threads);
        Self { shared, workers }
    }

    /// Spawns `threads` workers parked on `shared`. Workers begin at
    /// epoch zero, so the shared state's epoch counter must also be
    /// zero when a fresh crew starts (true at construction and after
    /// the reset in [`Pool::respawn_workers`]).
    fn spawn_crew(shared: &Arc<PoolShared>, threads: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..threads)
            .map(|w| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("gen-nerf-pool-{w}"))
                    .spawn(move || Self::worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect()
    }

    /// Replaces every worker thread with a fresh crew of the same
    /// size, on the same shared state. The pool object survives — only
    /// the OS threads are torn down (joined) and respawned, which is
    /// the slice-reclaim a serving shard performs when its workers
    /// keep getting poisoned by panicking jobs. Takes `&mut self`, so
    /// no job can be in flight across the swap.
    pub fn respawn_workers(&mut self) {
        let crew = self.workers.len();
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = false;
            state.poisoned = None;
            state.job = None;
            state.running = 0;
            // Fresh workers start at epoch zero; rewind the counter so
            // they don't mistake the last job's epoch for new work.
            state.epoch = 0;
        }
        self.workers = Self::spawn_crew(&self.shared, crew);
    }

    /// A pool sized by [`num_threads`] (the `GEN_NERF_THREADS`
    /// environment variable).
    pub fn with_default_threads() -> Self {
        Self::new(num_threads())
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    fn worker_loop(shared: &PoolShared, index: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen_epoch {
                        seen_epoch = state.epoch;
                        break;
                    }
                    state = shared.work.wait(state).expect("pool wait");
                }
                let job = state.job.as_ref().expect("job set for epoch");
                Job {
                    f: job.f,
                    tasks: job.tasks,
                }
            };
            if index < job.tasks {
                // The pointer is live: `run_chunks` holds the closure
                // on its stack until `running` drains to zero below.
                let f = unsafe { &*job.f };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)));
                if let Err(payload) = outcome {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "pool worker panicked".to_string());
                    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    // Keep the first panic: later ones are usually
                    // knock-on noise from the same root cause.
                    state.poisoned.get_or_insert(message);
                }
            }
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.running -= 1;
            if state.running == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// Maps `f` over contiguous chunk ranges of `0..n` on the pool's
    /// persistent workers, concatenating per-chunk results in range
    /// order — [`par_chunk_ranges`] semantics without the per-call
    /// thread spawn. `threads` caps the chunk count (further capped by
    /// the pool size); one chunk runs inline on the caller.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while executing `f` (re-raising the
    /// worker's panic message). Callers that want to survive a
    /// poisoned job use [`Pool::try_run_chunks`].
    pub fn run_chunks<R, F>(&self, n: usize, threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        match self.try_run_chunks(n, threads, f) {
            Ok(results) => results,
            Err(err) => panic!("{}", err.message().to_string()),
        }
    }

    /// Like [`Pool::run_chunks`], but a worker panic surfaces as
    /// `Err(PoolError)` instead of unwinding the caller. The pool
    /// recovers: poison is cleared on the next submission, so a job
    /// submitted after an `Err` runs clean on the same workers (a unit
    /// test pins this).
    pub fn try_run_chunks<R, F>(&self, n: usize, threads: usize, f: F) -> Result<Vec<R>, PoolError>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        let ranges = chunk_ranges(n, threads.min(self.workers.len()));
        if ranges.len() <= 1 {
            // Inline execution: a panic here propagates to the caller
            // directly (there is no worker to poison).
            return Ok(ranges.into_iter().map(|(s, e)| f(s, e)).collect());
        }
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        let task = |slot: usize| {
            let (s, e) = ranges[slot];
            *slots[slot].lock().expect("slot lock") = Some(f(s, e));
        };
        let erased: &(dyn Fn(usize) + Sync) = &task;
        // One job in flight at a time: later submitters queue here, so
        // the single `job` slot and the `running` counter are never
        // shared between two jobs.
        let _exclusive = self.shared.submit.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert!(state.running == 0, "pool job already in flight");
            state.job = Some(Job {
                // Erase the borrow lifetime; the wait below keeps the
                // closure alive past every worker's last use.
                f: unsafe {
                    std::mem::transmute::<
                        *const (dyn Fn(usize) + Sync),
                        *const (dyn Fn(usize) + Sync),
                    >(erased as *const _)
                },
                tasks: ranges.len(),
            });
            state.epoch += 1;
            state.running = self.workers.len();
            state.poisoned = None;
            self.shared.work.notify_all();
            while state.running > 0 {
                state = self.shared.done.wait(state).expect("pool wait");
            }
            state.job = None;
            if let Some(message) = state.poisoned.take() {
                return Err(PoolError { message });
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("worker filled slot")
            })
            .collect())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_threads(&items, 8, |i, &v| {
            assert_eq!(i as u64, v);
            v * 3
        });
        assert_eq!(out, (0..1000).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn threads_do_not_change_results() {
        let items: Vec<f64> = (0..337).map(|i| i as f64 * 0.37).collect();
        let work = |_: usize, &x: &f64| (x.sin() * 1e6).round() as i64;
        let one = par_map_threads(&items, 1, work);
        for t in [2, 3, 7, 16] {
            assert_eq!(par_map_threads(&items, t, work), one, "threads = {t}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(&empty, 4, |_, &v| v).is_empty());
        assert_eq!(par_map_threads(&[9u32], 4, |_, &v| v + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_threads(&items, 64, |_, &v| v * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_min_respects_grain() {
        // Below the grain: runs (inline) and still returns ordered
        // results.
        let small: Vec<u32> = (0..8).collect();
        assert_eq!(par_map_min(&small, 100, |_, &v| v), small);
        let big: Vec<u32> = (0..512).collect();
        assert_eq!(par_map_min(&big, 4, |_, &v| v), big);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 5, 16] {
                let ranges = par_chunk_ranges(n, t, |s, e| (s, e));
                let mut expect = 0usize;
                for (s, e) in &ranges {
                    assert_eq!(*s, expect);
                    assert!(e > s);
                    expect = *e;
                }
                assert_eq!(expect, n, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn partition_threads_covers_budget() {
        // Enough budget: shares sum to the budget, sizes within one.
        for (total, parts) in [(8usize, 3usize), (16, 4), (7, 7), (9, 2)] {
            let shares = partition_threads(total, parts);
            assert_eq!(shares.len(), parts);
            assert_eq!(shares.iter().sum::<usize>(), total, "{total}/{parts}");
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1, "{shares:?}");
            assert!(*min >= 1);
        }
        // Scarce budget: every part still gets one thread.
        assert_eq!(partition_threads(2, 5), vec![1; 5]);
        assert_eq!(partition_threads(0, 3), vec![1; 3]);
        // Degenerate part counts.
        assert_eq!(partition_threads(4, 1), vec![4]);
        assert_eq!(partition_threads(4, 0), vec![4]);
    }

    #[test]
    fn pool_matches_par_chunk_ranges() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 4] {
                let work = |s: usize, e: usize| (s, e, (s..e).map(|i| i as u64 * 3).sum::<u64>());
                assert_eq!(
                    pool.run_chunks(n, t, work),
                    par_chunk_ranges(n, t, work),
                    "n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_jobs() {
        use std::collections::HashSet;
        let pool = Pool::new(3);
        let mut ids = HashSet::new();
        // Many jobs on one pool: the set of worker threads must not
        // grow with the job count.
        for _ in 0..16 {
            for id in pool.run_chunks(6, 3, |_, _| std::thread::current().id()) {
                ids.insert(id);
            }
        }
        assert!(ids.len() <= 3, "workers grew: {}", ids.len());
    }

    #[test]
    fn pool_caps_at_its_size() {
        let pool = Pool::new(2);
        // Asking for more threads than the pool has still covers the
        // domain exactly, just in at most `threads()` chunks.
        let ranges = pool.run_chunks(100, 8, |s, e| (s, e));
        assert!(ranges.len() <= 2);
        assert_eq!(ranges.first().map(|r| r.0), Some(0));
        assert_eq!(ranges.last().map(|r| r.1), Some(100));
    }

    #[test]
    fn pool_single_chunk_runs_inline() {
        let pool = Pool::new(4);
        let caller = std::thread::current().id();
        let out = pool.run_chunks(5, 1, |_, _| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn pool_worker_panic_propagates() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_chunks(10, 2, |s, _| {
                if s == 0 {
                    panic!("boom");
                }
                s
            })
        }));
        assert!(result.is_err());
        // The pool survives a poisoned job and keeps serving.
        assert_eq!(pool.run_chunks(4, 2, |s, e| e - s).iter().sum::<usize>(), 4);
    }

    #[test]
    fn pool_try_run_reports_poison_and_recovers() {
        let pool = Pool::new(2);
        // A poisoned job surfaces as an error carrying the worker's
        // panic message — the caller does not unwind.
        let err = pool
            .try_run_chunks(10, 2, |s, _| {
                if s == 0 {
                    panic!("injected worker fault");
                }
                s
            })
            .unwrap_err();
        assert_eq!(err.message(), "injected worker fault");
        assert!(err.to_string().contains("injected worker fault"));
        // The pool cleared the poison: the next job runs clean on the
        // same workers and returns full results.
        let clean = pool.try_run_chunks(8, 2, |s, e| e - s).expect("clean job");
        assert_eq!(clean.iter().sum::<usize>(), 8);
    }

    #[test]
    fn pool_respawn_workers_replaces_crew() {
        use std::collections::HashSet;
        let mut pool = Pool::new(3);
        let before: HashSet<_> = pool
            .run_chunks(6, 3, |_, _| std::thread::current().id())
            .into_iter()
            .collect();
        // Poison the pool, then respawn: the new crew is disjoint from
        // the old one, the same size, and serves jobs cleanly.
        let err = pool
            .try_run_chunks(6, 3, |s, _| {
                if s == 0 {
                    panic!("sticky fault");
                }
                s
            })
            .unwrap_err();
        assert_eq!(err.message(), "sticky fault");
        pool.respawn_workers();
        assert_eq!(pool.threads(), 3);
        let after: HashSet<_> = pool
            .run_chunks(6, 3, |_, _| std::thread::current().id())
            .into_iter()
            .collect();
        assert!(before.is_disjoint(&after), "old workers survived respawn");
        let clean = pool.try_run_chunks(8, 3, |s, e| e - s).expect("clean job");
        assert_eq!(clean.iter().sum::<usize>(), 8);
        // Respawning an idle, healthy pool is also fine.
        pool.respawn_workers();
        assert_eq!(pool.run_chunks(4, 2, |s, e| e - s).iter().sum::<usize>(), 4);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled(), "cancel visible through all clones");
        clone.cancel(); // idempotent
        assert!(token.is_cancelled());
        // A fresh token is independent.
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn pool_concurrent_submitters_serialize() {
        let pool = Pool::new(2);
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    scope.spawn(move || {
                        let out = pool.run_chunks(64, 2, move |s, e| {
                            (s..e).map(|i| (i + k) as u64).sum::<u64>()
                        });
                        out.iter().sum::<u64>()
                    })
                })
                .collect();
            for (k, h) in handles.into_iter().enumerate() {
                let expect: u64 = (0..64).map(|i| (i + k) as u64).sum();
                assert_eq!(h.join().unwrap(), expect);
            }
        });
    }
}
