//! Deterministic fork–join data parallelism.
//!
//! The render pipeline, the accelerator simulator and the benchmark
//! harness all fan the same shape of work out over cores: a slice of
//! independent items, each mapped to a result, with results needed in
//! input order. This crate provides that shape — a rayon-style
//! `par_map` built on `std::thread::scope` — with two properties the
//! workspace relies on:
//!
//! * **Determinism.** Results are returned in input order and each
//!   item's computation receives only its index and value, so the
//!   output is bit-for-bit identical no matter how many threads run
//!   (including one). The parallel renderer's regression test pins
//!   this.
//! * **Zero dependencies.** Scoped threads only; no external crates,
//!   no global thread pool, no work stealing. Items are split into one
//!   contiguous chunk per worker, which is the right grain for the
//!   workspace's workloads (rays of a frame, patches of a stage,
//!   points of a sweep).
//!
//! The worker count comes from [`num_threads`]: the `GEN_NERF_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "GEN_NERF_THREADS";

/// The configured worker count: `GEN_NERF_THREADS` if set and
/// positive, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` in input order with the default worker count.
///
/// Equivalent to `par_map_threads(items, num_threads(), f)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// Maps `f` over `items` in input order using up to `threads` workers.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or too few
/// items to split) the map runs inline on the caller's thread; the
/// output is identical either way, which is what makes the sequential
/// and parallel render paths comparable bit-for-bit.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One contiguous chunk per worker, sized within one item of each
    // other so no worker idles while another drains a long tail.
    let chunk = n.div_ceil(workers);
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                scope.spawn(move || {
                    let base = w * chunk;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Like [`par_map`], but stays inline unless there are at least
/// `min_items_per_thread` items per worker — the grain guard for hot
/// loops that run many small batches (e.g. per-ray training steps).
pub fn par_map_min<T, R, F>(items: &[T], min_items_per_thread: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads();
    if items.len() < min_items_per_thread.max(1) * 2 || threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let usable = (items.len() / min_items_per_thread.max(1))
        .max(1)
        .min(threads);
    par_map_threads(items, usable, f)
}

/// Maps `f` over index chunks of `0..n`, in order: each call receives
/// `(start, end)` of a contiguous range, and the per-chunk results are
/// concatenated in range order. Useful when the caller wants one
/// worker-local accumulator per chunk rather than per item.
pub fn par_chunk_ranges<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(workers).max(1);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect();
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|(s, e)| f(s, e)).collect();
    }
    let f = &f;
    let mut results = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || f(s, e)))
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_threads(&items, 8, |i, &v| {
            assert_eq!(i as u64, v);
            v * 3
        });
        assert_eq!(out, (0..1000).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn threads_do_not_change_results() {
        let items: Vec<f64> = (0..337).map(|i| i as f64 * 0.37).collect();
        let work = |_: usize, &x: &f64| (x.sin() * 1e6).round() as i64;
        let one = par_map_threads(&items, 1, work);
        for t in [2, 3, 7, 16] {
            assert_eq!(par_map_threads(&items, t, work), one, "threads = {t}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(&empty, 4, |_, &v| v).is_empty());
        assert_eq!(par_map_threads(&[9u32], 4, |_, &v| v + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_threads(&items, 64, |_, &v| v * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_min_respects_grain() {
        // Below the grain: runs (inline) and still returns ordered
        // results.
        let small: Vec<u32> = (0..8).collect();
        assert_eq!(par_map_min(&small, 100, |_, &v| v), small);
        let big: Vec<u32> = (0..512).collect();
        assert_eq!(par_map_min(&big, 4, |_, &v| v), big);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 5, 16] {
                let ranges = par_chunk_ranges(n, t, |s, e| (s, e));
                let mut expect = 0usize;
                for (s, e) in &ranges {
                    assert_eq!(*s, expect);
                    assert!(e > s);
                    expect = *e;
                }
                assert_eq!(expect, n, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
