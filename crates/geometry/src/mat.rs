//! Small square matrices (`Mat3`, `Mat4`) stored row-major.

use crate::vec::{Vec3, Vec4};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A 3×3 matrix, row-major.
///
/// Used for rotations, camera intrinsics and fundamental matrices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows-major storage: `m[row][col]`.
    pub m: [[f32; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// The zero matrix.
    pub const ZERO: Self = Self { m: [[0.0; 3]; 3] };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// Creates a matrix whose columns are the given vectors.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self::from_rows([c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z])
    }

    /// Diagonal matrix.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        let mut m = Self::ZERO;
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// The skew-symmetric "cross-product matrix" `[v]×` such that
    /// `[v]× · w == v.cross(w)`.
    ///
    /// This is the building block of the fundamental matrix
    /// `F = K_s⁻ᵀ [t]× R K_n⁻¹`.
    #[inline]
    pub fn skew_symmetric(v: Vec3) -> Self {
        Self::from_rows([0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0])
    }

    /// Row `i` as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Column `j` as a vector.
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2))
    }

    /// Determinant.
    #[inline]
    pub fn determinant(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse.
    ///
    /// Returns `None` when the determinant is numerically zero.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let m = &self.m;
        let mut out = Self::ZERO;
        out.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        out.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        out.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        out.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        out.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        out.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        out.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        out.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        out.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(out)
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c])
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c])
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.m
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.row(i).dot(rhs.col(j));
            }
        }
        out
    }
}

impl Mul<f32> for Mat3 {
    type Output = Self;
    fn mul(self, s: f32) -> Self {
        let mut out = self;
        for r in out.m.iter_mut() {
            for v in r.iter_mut() {
                *v *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] -= rhs.m[i][j];
            }
        }
        out
    }
}

/// A 4×4 matrix, row-major; used for rigid transforms in homogeneous
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Row-major storage: `m[row][col]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// The zero matrix.
    pub const ZERO: Self = Self { m: [[0.0; 4]; 4] };

    /// Builds a rigid transform from a rotation and a translation, i.e.
    /// `[R | t; 0 0 0 1]`.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] = r.m[i][j];
            }
        }
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// The upper-left 3×3 block.
    pub fn rotation_part(&self) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] = self.m[i][j];
            }
        }
        r
    }

    /// The translation column.
    pub fn translation_part(&self) -> Vec3 {
        Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3])
    }

    /// Row `i` as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec4 {
        Vec4::new(self.m[i][0], self.m[i][1], self.m[i][2], self.m[i][3])
    }

    /// Column `j` as a vector.
    #[inline]
    pub fn col(&self, j: usize) -> Vec4 {
        Vec4::new(self.m[0][j], self.m[1][j], self.m[2][j], self.m[3][j])
    }

    /// Transforms a point (applies translation).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let h = *self * p.homogeneous();
        // Rigid transforms always keep w == 1.
        h.xyz()
    }

    /// Transforms a direction (ignores translation).
    #[inline]
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.rotation_part() * d
    }

    /// Inverse of a *rigid* transform (rotation + translation), computed
    /// as `[Rᵀ | -Rᵀ t]`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the matrix is in fact rigid (bottom row
    /// `0 0 0 1` and orthonormal rotation block).
    pub fn rigid_inverse(&self) -> Self {
        debug_assert!(
            (self.m[3][0].abs() + self.m[3][1].abs() + self.m[3][2].abs()) < 1e-5
                && (self.m[3][3] - 1.0).abs() < 1e-5,
            "rigid_inverse called on a non-rigid matrix"
        );
        let r_t = self.rotation_part().transpose();
        let t = self.translation_part();
        Self::from_rotation_translation(r_t, -(r_t * t))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;
    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        Vec4::new(
            self.row(0).dot(v),
            self.row(1).dot(v),
            self.row(2).dot(v),
            self.row(3).dot(v),
        )
    }
}

impl Mul for Mat4 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                out.m[i][j] = self.row(i).dot(rhs.col(j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mat3_identity_multiplication() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        let m = Mat3::rotation_y(0.3);
        let prod = Mat3::IDENTITY * m;
        assert!((prod - m).frobenius_norm() < 1e-6);
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::rotation_x(0.7) * Mat3::from_diagonal(Vec3::new(2.0, 3.0, 0.5));
        let inv = m.inverse().unwrap();
        let eye = m * inv;
        assert!((eye - Mat3::IDENTITY).frobenius_norm() < 1e-5);
    }

    #[test]
    fn mat3_singular_has_no_inverse() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn skew_symmetric_matches_cross() {
        let v = Vec3::new(0.3, -1.2, 2.0);
        let w = Vec3::new(-0.5, 0.8, 1.1);
        let lhs = Mat3::skew_symmetric(v) * w;
        let rhs = v.cross(w);
        assert!((lhs - rhs).length() < 1e-6);
    }

    #[test]
    fn rotation_preserves_length() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        for m in [
            Mat3::rotation_x(1.1),
            Mat3::rotation_y(-0.4),
            Mat3::rotation_z(2.7),
        ] {
            assert!(((m * v).length() - v.length()).abs() < 1e-5);
        }
    }

    #[test]
    fn mat4_rigid_inverse_roundtrip() {
        let m = Mat4::from_rotation_translation(Mat3::rotation_z(0.6), Vec3::new(1.0, 2.0, 3.0));
        let inv = m.rigid_inverse();
        let p = Vec3::new(-4.0, 0.5, 9.0);
        let back = inv.transform_point(m.transform_point(p));
        assert!((back - p).length() < 1e-4);
    }

    #[test]
    fn mat4_transform_direction_ignores_translation() {
        let m = Mat4::from_rotation_translation(Mat3::IDENTITY, Vec3::new(10.0, 10.0, 10.0));
        assert_eq!(m.transform_direction(Vec3::X), Vec3::X);
    }

    #[test]
    fn mat3_determinant_of_rotation_is_one() {
        assert!((Mat3::rotation_x(0.9).determinant() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.transpose().transpose(), m);
    }

    fn arb_rotation() -> impl Strategy<Value = Mat3> {
        (-3.0f32..3.0, -3.0f32..3.0, -3.0f32..3.0)
            .prop_map(|(a, b, c)| Mat3::rotation_x(a) * Mat3::rotation_y(b) * Mat3::rotation_z(c))
    }

    proptest! {
        #[test]
        fn prop_rotation_inverse_is_transpose(r in arb_rotation()) {
            let err = (r * r.transpose() - Mat3::IDENTITY).frobenius_norm();
            prop_assert!(err < 1e-4, "err = {err}");
        }

        #[test]
        fn prop_matmul_associative(
            a in arb_rotation(),
            b in arb_rotation(),
            c in arb_rotation(),
        ) {
            let lhs = (a * b) * c;
            let rhs = a * (b * c);
            prop_assert!((lhs - rhs).frobenius_norm() < 1e-4);
        }

        #[test]
        fn prop_rigid_inverse(
            r in arb_rotation(),
            tx in -10.0f32..10.0,
            ty in -10.0f32..10.0,
            tz in -10.0f32..10.0,
            px in -10.0f32..10.0,
            py in -10.0f32..10.0,
            pz in -10.0f32..10.0,
        ) {
            let m = Mat4::from_rotation_translation(r, Vec3::new(tx, ty, tz));
            let p = Vec3::new(px, py, pz);
            let back = m.rigid_inverse().transform_point(m.transform_point(p));
            prop_assert!((back - p).length() < 1e-3);
        }
    }
}
