//! Epipolar geometry between a novel view and a source view.
//!
//! The Gen-NeRF accelerator's dataflow rests on three deductions from
//! epipolar geometry (paper Sec. 4.1–4.3):
//!
//! * **Property-1** — the projections of the 3D points sampled along one
//!   novel-view ray all lie on a single *epipolar line* in the source
//!   view.
//! * **Property-2** — novel-view pixels on a line through the novel
//!   epipole share one epipolar line in the source view (single-source
//!   dataflow, Sec. 4.2).
//! * **Property-3** — 3D points that are close in space project to close
//!   epipolar lines in every source view (multi-source patch dataflow,
//!   Sec. 4.3).
//!
//! [`EpipolarPair`] bundles the fundamental matrix and the two epipoles
//! for a `(novel, source)` camera pair; integration tests in this module
//! check all three properties.

use crate::camera::Camera;
use crate::mat::Mat3;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A 2D line in implicit form `a·u + b·v + c = 0`, normalized so that
/// `a² + b² = 1` (which makes [`Line2::distance_to`] a Euclidean
/// distance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line2 {
    /// Coefficient of `u`.
    pub a: f32,
    /// Coefficient of `v`.
    pub b: f32,
    /// Constant term.
    pub c: f32,
}

impl Line2 {
    /// Builds a normalized line from raw homogeneous coefficients.
    ///
    /// Returns `None` for a degenerate (all-zero direction) line.
    pub fn from_homogeneous(h: Vec3) -> Option<Self> {
        let n = (h.x * h.x + h.y * h.y).sqrt();
        if n < crate::EPSILON {
            return None;
        }
        Some(Self {
            a: h.x / n,
            b: h.y / n,
            c: h.z / n,
        })
    }

    /// The line through two points.
    ///
    /// Returns `None` when the points coincide.
    pub fn through(p: Vec2, q: Vec2) -> Option<Self> {
        Self::from_homogeneous(p.homogeneous().cross(q.homogeneous()))
    }

    /// Signed perpendicular distance from a point (absolute value taken).
    #[inline]
    pub fn distance_to(&self, p: Vec2) -> f32 {
        (self.a * p.x + self.b * p.y + self.c).abs()
    }

    /// Unit direction along the line.
    #[inline]
    pub fn direction(&self) -> Vec2 {
        Vec2::new(-self.b, self.a)
    }

    /// Perpendicular foot: the point on the line closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let signed = self.a * p.x + self.b * p.y + self.c;
        Vec2::new(p.x - signed * self.a, p.y - signed * self.b)
    }

    /// Local dissimilarity between two lines near `probe`: the largest
    /// distance from three points of `self` (the foot of `probe` and
    /// ±`half_span` along the line) to `other`.
    ///
    /// Zero iff the lines coincide over the probed span; grows with both
    /// angular and translational separation. Used to verify Property-3
    /// (nearby points → nearby epipolar lines).
    pub fn dissimilarity(&self, other: &Self, probe: Vec2) -> f32 {
        let half_span = 100.0;
        let foot = self.closest_point(probe);
        let dir = self.direction();
        [foot, foot + dir * half_span, foot - dir * half_span]
            .into_iter()
            .map(|p| other.distance_to(p))
            .fold(0.0f32, f32::max)
    }
}

/// The epipolar relationship between a novel camera and a source camera.
#[derive(Debug, Clone, Copy)]
pub struct EpipolarPair {
    /// Fundamental matrix `F` mapping novel-view pixels (homogeneous) to
    /// source-view epipolar lines: `l_s = F · x_n`.
    pub fundamental: Mat3,
    /// Epipole in the *novel* image plane (projection of the source
    /// camera center), if it is in front of the novel camera.
    pub epipole_novel: Option<Vec2>,
    /// Epipole in the *source* image plane (projection of the novel
    /// camera center), if it is in front of the source camera.
    pub epipole_source: Option<Vec2>,
}

impl EpipolarPair {
    /// Computes the epipolar relationship for a `(novel, source)` camera
    /// pair:
    ///
    /// `F = K_s⁻ᵀ · [t]× · R_rel · K_n⁻¹`, with `R_rel = R_sᵀ R_n` the
    /// novel→source rotation and `t = R_sᵀ (O_n − O_s)` the novel camera
    /// center in source-camera coordinates.
    pub fn new(novel: &Camera, source: &Camera) -> Self {
        let r_rel = source.pose.rotation.transpose() * novel.pose.rotation;
        let t = source.pose.world_to_camera(novel.center());
        let f = source.intrinsics.inverse_matrix().transpose()
            * Mat3::skew_symmetric(t)
            * r_rel
            * novel.intrinsics.inverse_matrix();
        Self {
            fundamental: f,
            epipole_novel: novel.project(source.center()),
            epipole_source: source.project(novel.center()),
        }
    }

    /// The epipolar line in the source view for novel-view pixel
    /// `(u, v)`.
    ///
    /// Returns `None` in the degenerate case where the pixel ray passes
    /// through the source camera center (the "line" collapses to the
    /// epipole).
    pub fn epipolar_line_for_pixel(&self, u: f32, v: f32) -> Option<Line2> {
        Line2::from_homogeneous(self.fundamental * Vec2::new(u, v).homogeneous())
    }

    /// The epipolar constraint residual `x_sᵀ F x_n` (zero for a perfect
    /// correspondence). Useful for testing and for sanity checks.
    pub fn residual(&self, novel_px: Vec2, source_px: Vec2) -> f32 {
        source_px
            .homogeneous()
            .dot(self.fundamental * novel_px.homogeneous())
    }
}

/// Computes the 2D convex hull of a point set (Andrew's monotone chain)
/// and returns its vertices in counter-clockwise order.
///
/// Duplicates are tolerated; fewer than three distinct points yield a
/// degenerate hull whose [`polygon_area`] is zero.
pub fn convex_hull(points: &[Vec2]) -> Vec<Vec2> {
    let mut pts: Vec<Vec2> = points.to_vec();
    pts.sort_by(|p, q| {
        p.x.partial_cmp(&q.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.y.partial_cmp(&q.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|p, q| (*p - *q).length() < 1e-9);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Vec2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

/// Area of a simple polygon given its vertices in order (shoelace
/// formula). Returns the absolute area.
pub fn polygon_area(vertices: &[Vec2]) -> f32 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..vertices.len() {
        let p = vertices[i];
        let q = vertices[(i + 1) % vertices.len()];
        acc += p.cross(q);
    }
    acc.abs() * 0.5
}

/// Convenience: area of the convex hull of a point set. This is the
/// "projected tetragon area" the workload scheduler's area calculator
/// evaluates per patch-shape candidate (paper Fig. 5).
pub fn convex_hull_area(points: &[Vec2]) -> f32 {
    polygon_area(&convex_hull(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{Intrinsics, Pose};
    use proptest::prelude::*;

    fn cam(eye: Vec3, target: Vec3) -> Camera {
        Camera::new(
            Intrinsics::from_fov(800, 600, 0.9),
            Pose::look_at(eye, target, Vec3::Y),
        )
    }

    fn pair() -> (Camera, Camera, EpipolarPair) {
        let novel = cam(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO);
        let source = cam(Vec3::new(2.5, 1.0, 3.0), Vec3::ZERO);
        let p = EpipolarPair::new(&novel, &source);
        (novel, source, p)
    }

    #[test]
    fn property1_ray_points_lie_on_epipolar_line() {
        let (novel, source, pair) = pair();
        let (u, v) = (350.0, 280.0);
        let ray = novel.pixel_ray(u, v);
        let line = pair.epipolar_line_for_pixel(u, v).unwrap();
        for t in [1.0, 2.0, 3.5, 5.0, 8.0] {
            let proj = source.project(ray.at(t)).unwrap();
            assert!(
                line.distance_to(proj) < 1e-2,
                "t = {t}, dist = {}",
                line.distance_to(proj)
            );
        }
    }

    #[test]
    fn property2_pixels_through_epipole_share_epipolar_line() {
        let (novel, _source, pair) = pair();
        let e_n = pair.epipole_novel.expect("novel epipole visible");
        // Pick two pixels on a line through the novel epipole.
        let dir = Vec2::new(0.6, 0.8);
        let p1 = e_n + dir * 60.0;
        let p2 = e_n + dir * 180.0;
        let l1 = pair.epipolar_line_for_pixel(p1.x, p1.y).unwrap();
        let l2 = pair.epipolar_line_for_pixel(p2.x, p2.y).unwrap();
        // Same line (up to sign): compare distances from sample points.
        let ray = novel.pixel_ray(p1.x, p1.y);
        let probe = Vec2::new(400.0, 300.0);
        assert!(
            l1.dissimilarity(&l2, probe) < 1e-2,
            "dissimilarity = {}",
            l1.dissimilarity(&l2, probe)
        );
        let _ = ray;
    }

    #[test]
    fn property3_nearby_points_have_nearby_epipolar_lines() {
        let (novel, _source, pair) = pair();
        let probe = Vec2::new(400.0, 300.0);
        let base = Vec2::new(390.0, 290.0);
        let l0 = pair.epipolar_line_for_pixel(base.x, base.y).unwrap();
        // Lines of progressively farther pixels should be progressively
        // more dissimilar, and tiny offsets give tiny dissimilarity.
        let l_close = pair
            .epipolar_line_for_pixel(base.x + 1.0, base.y + 1.0)
            .unwrap();
        let l_far = pair
            .epipolar_line_for_pixel(base.x + 200.0, base.y + 150.0)
            .unwrap();
        let d_close = l0.dissimilarity(&l_close, probe);
        let d_far = l0.dissimilarity(&l_far, probe);
        assert!(d_close < d_far, "close={d_close} far={d_far}");
        // A 1-pixel neighbour's epipolar line stays within a few source
        // pixels over the probed span.
        assert!(d_close < 10.0, "close={d_close}");
        let _ = novel;
    }

    #[test]
    fn epipole_annihilated_by_fundamental() {
        let (_novel, _source, pair) = pair();
        // F * e_n == 0 (the novel epipole is the right null vector).
        let e_n = pair.epipole_novel.unwrap();
        let res = pair.fundamental * e_n.homogeneous();
        assert!(
            res.length() / pair.fundamental.frobenius_norm() < 1e-3,
            "residual = {}",
            res.length()
        );
    }

    #[test]
    fn epipolar_line_passes_through_source_epipole() {
        let (_novel, _source, pair) = pair();
        let e_s = pair.epipole_source.unwrap();
        for (u, v) in [(100.0, 100.0), (400.0, 300.0), (700.0, 500.0)] {
            let line = pair.epipolar_line_for_pixel(u, v).unwrap();
            assert!(
                line.distance_to(e_s) < 1e-2,
                "epipole off line by {}",
                line.distance_to(e_s)
            );
        }
    }

    #[test]
    fn residual_zero_for_true_correspondence() {
        let (novel, source, pair) = pair();
        let ray = novel.pixel_ray(321.0, 234.0);
        let x_s = source.project(ray.at(2.7)).unwrap();
        let r = pair.residual(Vec2::new(321.0, 234.0), x_s);
        // Normalize by F magnitude and pixel magnitudes.
        let scale = pair.fundamental.frobenius_norm() * 800.0 * 800.0;
        assert!(r.abs() / scale < 1e-6, "residual = {r}");
    }

    #[test]
    fn line_through_points_contains_them() {
        let p = Vec2::new(1.0, 2.0);
        let q = Vec2::new(4.0, -3.0);
        let l = Line2::through(p, q).unwrap();
        assert!(l.distance_to(p) < 1e-5);
        assert!(l.distance_to(q) < 1e-5);
        assert!(l.distance_to(Vec2::new(0.0, 10.0)) > 1.0);
    }

    #[test]
    fn line_through_coincident_points_is_none() {
        let p = Vec2::new(1.0, 1.0);
        assert!(Line2::through(p, p).is_none());
    }

    #[test]
    fn hull_of_square_is_square() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(0.5, 0.5), // interior
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((convex_hull_area(&pts) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hull_of_collinear_points_has_zero_area() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 2.0),
        ];
        assert_eq!(convex_hull_area(&pts), 0.0);
    }

    #[test]
    fn shoelace_triangle() {
        let tri = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 2.0),
        ];
        assert!((polygon_area(&tri) - 2.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_property1_random_pixels(
            u in 50.0f32..750.0,
            v in 50.0f32..550.0,
            t in 1.0f32..8.0,
        ) {
            let (novel, source, pair) = pair();
            let ray = novel.pixel_ray(u, v);
            if let (Some(line), Some(proj)) =
                (pair.epipolar_line_for_pixel(u, v), source.project(ray.at(t)))
            {
                prop_assert!(line.distance_to(proj) < 0.05,
                    "distance = {}", line.distance_to(proj));
            }
        }

        #[test]
        fn prop_hull_area_invariant_under_shuffle(seed in 0u64..1000) {
            use rand::{seq::SliceRandom, SeedableRng};
            let mut pts: Vec<Vec2> = (0..12)
                .map(|i| {
                    let a = i as f32 * 0.7 + seed as f32 * 0.01;
                    Vec2::new(a.sin() * 5.0, (a * 1.3).cos() * 5.0)
                })
                .collect();
            let base = convex_hull_area(&pts);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            pts.shuffle(&mut rng);
            prop_assert!((convex_hull_area(&pts) - base).abs() < 1e-3);
        }

        #[test]
        fn prop_hull_contains_all_points(seed in 0u64..200) {
            let pts: Vec<Vec2> = (0..10)
                .map(|i| {
                    let a = i as f32 * 1.1 + seed as f32 * 0.37;
                    Vec2::new(a.sin() * 3.0 + (seed as f32 * 0.1).cos(), (a * 0.9).cos() * 4.0)
                })
                .collect();
            let hull = convex_hull(&pts);
            prop_assume!(hull.len() >= 3);
            // Every input point is inside or on the hull: all cross
            // products with hull edges are >= -eps.
            for p in &pts {
                for i in 0..hull.len() {
                    let a = hull[i];
                    let b = hull[(i + 1) % hull.len()];
                    prop_assert!((b - a).cross(*p - a) >= -1e-3);
                }
            }
        }
    }
}
