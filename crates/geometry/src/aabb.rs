//! Axis-aligned bounding boxes.

use crate::ray::Ray;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box, the scene bound used to clip camera rays
/// to `[t_near, t_far]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners (components are sorted).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// A cube of half-extent `r` centered at `c`.
    pub fn cube(c: Vec3, r: f32) -> Self {
        Self::new(c - Vec3::splat(r), c + Vec3::splat(r))
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box extent (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box by `margin` on every side.
    pub fn expanded(&self, margin: f32) -> Self {
        Self {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }

    /// The eight corners, in `zyx`-nested order.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }

    /// Ray–box intersection (slab method).
    ///
    /// Returns the parameter interval `(t_enter, t_exit)` clipped to
    /// `t_enter >= 0`, or `None` when the ray misses the box.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        let o = ray.origin.to_array();
        let d = ray.direction.to_array();
        let lo = self.min.to_array();
        let hi = self.max.to_array();
        for i in 0..3 {
            if d[i].abs() < 1e-12 {
                if o[i] < lo[i] || o[i] > hi[i] {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d[i];
            let (mut ta, mut tb) = ((lo[i] - o[i]) * inv, (hi[i] - o[i]) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 3.0), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 3.0));
    }

    #[test]
    fn contains_center_and_corners() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        assert!(b.contains(b.center()));
        for c in b.corners() {
            assert!(b.contains(c));
        }
        assert!(!b.contains(Vec3::new(2.1, 0.0, 0.0)));
    }

    #[test]
    fn ray_through_center_hits() {
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let (t0, t1) = b.intersect_ray(&r).unwrap();
        assert!((t0 - 4.0).abs() < 1e-5);
        assert!((t1 - 6.0).abs() < 1e-5);
    }

    #[test]
    fn ray_missing_box_is_none() {
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        let r = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r).is_none());
    }

    #[test]
    fn ray_starting_inside_clips_to_zero() {
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let (t0, t1) = b.intersect_ray(&r).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb::cube(Vec3::ZERO, 1.0);
        let b = Aabb::cube(Vec3::new(5.0, 0.0, 0.0), 1.0);
        let u = a.union(&b);
        assert!(u.contains(Vec3::new(-1.0, 0.0, 0.0)));
        assert!(u.contains(Vec3::new(6.0, 0.0, 0.0)));
    }

    #[test]
    fn axis_parallel_ray_outside_slab_misses() {
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        let r = Ray::new(Vec3::new(0.0, 2.0, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r).is_none());
    }

    proptest! {
        #[test]
        fn prop_intersection_points_on_boundary_or_inside(
            ox in -10.0f32..10.0,
            oy in -10.0f32..10.0,
            dx in -1.0f32..1.0,
            dy in -1.0f32..1.0,
        ) {
            let b = Aabb::cube(Vec3::ZERO, 1.5);
            let dir = Vec3::new(dx, dy, 1.0);
            let r = Ray::new(Vec3::new(ox, oy, -8.0), dir);
            if let Some((t0, t1)) = b.intersect_ray(&r) {
                prop_assert!(t0 <= t1);
                let eps = 1e-3;
                let grown = b.expanded(eps);
                prop_assert!(grown.contains(r.at(t0)));
                prop_assert!(grown.contains(r.at(t1)));
                prop_assert!(grown.contains(r.at((t0 + t1) / 2.0)));
            }
        }
    }
}
