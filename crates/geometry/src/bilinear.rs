//! Bilinear interpolation footprints.
//!
//! When a sampled 3D point is projected onto a source view, its scene
//! feature is bilinearly interpolated from the four nearest feature-map
//! texels (paper Sec. 4.5, the preprocessing unit's *interpolator*).
//! [`BilinearFootprint`] computes those four taps and their weights; the
//! accelerator's memory model uses the tap addresses to count DRAM/SRAM
//! traffic, and the algorithm uses the weights to fetch features.

use crate::vec::Vec2;
use serde::{Deserialize, Serialize};

/// One texel read of a bilinear fetch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tap {
    /// Texel column.
    pub x: u32,
    /// Texel row.
    pub y: u32,
    /// Interpolation weight in `[0, 1]`.
    pub weight: f32,
}

/// The four taps of one bilinear fetch, clamped to the image bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BilinearFootprint {
    /// The four taps: (x0,y0), (x1,y0), (x0,y1), (x1,y1).
    pub taps: [Tap; 4],
}

impl BilinearFootprint {
    /// Computes the footprint for continuous texel coordinates `uv`
    /// (texel centers at integer + 0.5) on a `width`×`height` map.
    ///
    /// Out-of-range coordinates are clamped to the border (the clamped
    /// taps keep their analytical weights, matching
    /// `align_corners=False` grid sampling with border padding).
    ///
    /// Returns `None` if the map is empty.
    pub fn at(uv: Vec2, width: u32, height: u32) -> Option<Self> {
        if width == 0 || height == 0 {
            return None;
        }
        let x = uv.x - 0.5;
        let y = uv.y - 0.5;
        let x0f = x.floor();
        let y0f = y.floor();
        let fx = x - x0f;
        let fy = y - y0f;
        let clamp_x = |v: f32| (v.max(0.0) as u32).min(width - 1);
        let clamp_y = |v: f32| (v.max(0.0) as u32).min(height - 1);
        let (x0, x1) = (clamp_x(x0f), clamp_x(x0f + 1.0));
        let (y0, y1) = (clamp_y(y0f), clamp_y(y0f + 1.0));
        Some(Self {
            taps: [
                Tap {
                    x: x0,
                    y: y0,
                    weight: (1.0 - fx) * (1.0 - fy),
                },
                Tap {
                    x: x1,
                    y: y0,
                    weight: fx * (1.0 - fy),
                },
                Tap {
                    x: x0,
                    y: y1,
                    weight: (1.0 - fx) * fy,
                },
                Tap {
                    x: x1,
                    y: y1,
                    weight: fx * fy,
                },
            ],
        })
    }

    /// Interpolates a scalar map stored row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` implied by the taps'
    /// construction; callers supply the same dimensions they passed to
    /// [`BilinearFootprint::at`].
    pub fn interpolate(&self, data: &[f32], width: u32) -> f32 {
        self.taps
            .iter()
            .map(|t| data[(t.y * width + t.x) as usize] * t.weight)
            .sum()
    }

    /// The distinct texel addresses touched (deduplicated when clamping
    /// collapses taps) — what the memory model counts.
    pub fn distinct_taps(&self) -> Vec<(u32, u32)> {
        let mut addrs: Vec<(u32, u32)> = self.taps.iter().map(|t| (t.x, t.y)).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weights_sum_to_one() {
        let fp = BilinearFootprint::at(Vec2::new(3.7, 4.2), 16, 16).unwrap();
        let sum: f32 = fp.taps.iter().map(|t| t.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn texel_center_is_exact() {
        // (2.5, 3.5) is the center of texel (2, 3): full weight there.
        let fp = BilinearFootprint::at(Vec2::new(2.5, 3.5), 8, 8).unwrap();
        let w: f32 = fp
            .taps
            .iter()
            .filter(|t| t.x == 2 && t.y == 3)
            .map(|t| t.weight)
            .sum();
        assert!((w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn interpolates_linear_ramp_exactly() {
        let (w, h) = (8u32, 8u32);
        let data: Vec<f32> = (0..h)
            .flat_map(|y| (0..w).map(move |x| x as f32 + 2.0 * y as f32))
            .collect();
        let uv = Vec2::new(3.25, 5.75);
        let fp = BilinearFootprint::at(uv, w, h).unwrap();
        let got = fp.interpolate(&data, w);
        let expect = (uv.x - 0.5) + 2.0 * (uv.y - 0.5);
        assert!((got - expect).abs() < 1e-4, "got {got}, want {expect}");
    }

    #[test]
    fn clamps_at_border() {
        let fp = BilinearFootprint::at(Vec2::new(-3.0, 100.0), 4, 4).unwrap();
        for t in fp.taps {
            assert!(t.x < 4 && t.y < 4);
        }
        assert_eq!(fp.distinct_taps(), vec![(0, 3)]);
    }

    #[test]
    fn empty_map_is_none() {
        assert!(BilinearFootprint::at(Vec2::new(0.5, 0.5), 0, 4).is_none());
    }

    #[test]
    fn interior_footprint_has_four_distinct_taps() {
        let fp = BilinearFootprint::at(Vec2::new(3.7, 4.2), 16, 16).unwrap();
        assert_eq!(fp.distinct_taps().len(), 4);
    }

    proptest! {
        #[test]
        fn prop_weights_nonnegative_and_sum_one(
            u in -10.0f32..30.0,
            v in -10.0f32..30.0,
        ) {
            let fp = BilinearFootprint::at(Vec2::new(u, v), 20, 20).unwrap();
            let sum: f32 = fp.taps.iter().map(|t| t.weight).sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(fp.taps.iter().all(|t| t.weight >= -1e-6));
        }

        #[test]
        fn prop_interpolation_within_data_range(
            u in 0.5f32..19.5,
            v in 0.5f32..19.5,
            seed in 0u32..100,
        ) {
            let data: Vec<f32> = (0..400)
                .map(|i| (i as f32 * 0.77 + seed as f32).sin() * 10.0)
                .collect();
            let fp = BilinearFootprint::at(Vec2::new(u, v), 20, 20).unwrap();
            let val = fp.interpolate(&data, 20);
            let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(val >= lo - 1e-3 && val <= hi + 1e-3);
        }
    }
}
