//! Camera rays and depth-sample helpers.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// A ray `r(t) = origin + t · direction` with unit `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Ray origin (camera center for camera rays).
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing `direction`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `direction` has zero length.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Self {
            origin,
            direction: direction.normalized(),
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// `N` depths uniformly spaced over `[t_near, t_far]`, placed at
    /// interval midpoints (the quadrature points of Eq. 2 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `t_far <= t_near`.
    pub fn uniform_depths(t_near: f32, t_far: f32, n: usize) -> Vec<f32> {
        assert!(n > 0, "need at least one sample");
        assert!(t_far > t_near, "t_far must exceed t_near");
        let dt = (t_far - t_near) / n as f32;
        (0..n).map(|i| t_near + dt * (i as f32 + 0.5)).collect()
    }

    /// Depth-interval widths `t_{k+1} − t_k` used by the quadrature rule,
    /// taking the last interval to extend to `t_far`.
    pub fn interval_widths(depths: &[f32], t_far: f32) -> Vec<f32> {
        let mut out = Vec::with_capacity(depths.len());
        Self::interval_widths_into(depths, t_far, &mut out);
        out
    }

    /// [`Ray::interval_widths`] into a caller-owned buffer (cleared
    /// first) — identical results, no allocation once the buffer has
    /// grown to size. This is what lets the fused render schedule
    /// composite a whole frame without one widths `Vec` per ray.
    pub fn interval_widths_into(depths: &[f32], t_far: f32, out: &mut Vec<f32>) {
        out.clear();
        for (i, &t) in depths.iter().enumerate() {
            let next = depths.get(i + 1).copied().unwrap_or(t_far);
            out.push((next - t).max(0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn at_moves_along_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
        assert!((r.at(3.0) - Vec3::new(0.0, 0.0, 3.0)).length() < 1e-6);
    }

    #[test]
    fn direction_is_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0));
        assert!((r.direction.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_depths_cover_range() {
        let d = Ray::uniform_depths(2.0, 6.0, 4);
        assert_eq!(d.len(), 4);
        assert!((d[0] - 2.5).abs() < 1e-6);
        assert!((d[3] - 5.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn uniform_depths_rejects_zero() {
        let _ = Ray::uniform_depths(0.0, 1.0, 0);
    }

    #[test]
    fn interval_widths_sum_to_range() {
        let d = Ray::uniform_depths(1.0, 5.0, 8);
        let w = Ray::interval_widths(&d, 5.0);
        let total: f32 = w.iter().sum();
        // First midpoint is half a slot after t_near, so the covered length
        // is (t_far - first_depth).
        assert!((total - (5.0 - d[0])).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn prop_uniform_depths_sorted(
            near in 0.1f32..5.0,
            span in 0.1f32..20.0,
            n in 1usize..64,
        ) {
            let d = Ray::uniform_depths(near, near + span, n);
            prop_assert!(d.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(d.iter().all(|&t| t > near && t < near + span));
        }

        #[test]
        fn prop_interval_widths_nonnegative(
            near in 0.1f32..5.0,
            span in 0.1f32..20.0,
            n in 1usize..64,
        ) {
            let d = Ray::uniform_depths(near, near + span, n);
            let w = Ray::interval_widths(&d, near + span);
            prop_assert_eq!(w.len(), d.len());
            prop_assert!(w.iter().all(|&x| x >= 0.0));
        }
    }
}
