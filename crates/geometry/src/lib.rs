//! Linear algebra, camera models and epipolar geometry for the Gen-NeRF
//! reproduction.
//!
//! This crate is the geometric substrate of the workspace. It provides:
//!
//! * small fixed-size vectors and matrices ([`Vec2`], [`Vec3`], [`Vec4`],
//!   [`Mat3`], [`Mat4`]) tailored to graphics use,
//! * pinhole camera models ([`Intrinsics`], [`Pose`], [`Camera`]) with
//!   world ↔ camera ↔ pixel transforms,
//! * rays and depth-sampling helpers ([`Ray`]),
//! * axis-aligned boxes and view frusta ([`Aabb`], [`Frustum`]),
//! * epipolar geometry ([`epipolar`]): fundamental matrices, epipoles and
//!   epipolar lines, implementing the three properties the Gen-NeRF paper
//!   (ISCA '23, Sec. 4.1–4.3) builds its dataflow on,
//! * bilinear interpolation footprints ([`bilinear`]) used when fetching
//!   scene features from source-view feature maps.
//!
//! # Example
//!
//! Project a 3D point sampled on a novel-view ray onto a source view and
//! verify it lands on the epipolar line:
//!
//! ```
//! use gen_nerf_geometry::{Camera, Intrinsics, Pose, Vec3};
//! use gen_nerf_geometry::epipolar::EpipolarPair;
//!
//! let novel = Camera::new(
//!     Intrinsics::from_fov(800, 800, 0.8),
//!     Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y),
//! );
//! let source = Camera::new(
//!     Intrinsics::from_fov(800, 800, 0.8),
//!     Pose::look_at(Vec3::new(2.0, 1.0, 3.5), Vec3::ZERO, Vec3::Y),
//! );
//! let pair = EpipolarPair::new(&novel, &source);
//! let ray = novel.pixel_ray(400.5, 300.5);
//! let line = pair.epipolar_line_for_pixel(400.5, 300.5).unwrap();
//! let p = ray.at(3.0);
//! let uv = source.project(p).unwrap();
//! assert!(line.distance_to(uv) < 1e-3);
//! ```

pub mod aabb;
pub mod bilinear;
pub mod camera;
pub mod epipolar;
pub mod frustum;
pub mod mat;
pub mod ray;
pub mod vec;

pub use aabb::Aabb;
pub use camera::{Camera, Intrinsics, Pose};
pub use frustum::Frustum;
pub use mat::{Mat3, Mat4};
pub use ray::Ray;
pub use vec::{Vec2, Vec3, Vec4};

/// Default tolerance used by the crate's geometric predicates.
pub const EPSILON: f32 = 1e-6;
