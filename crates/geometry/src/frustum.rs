//! View frusta — the 3D shape a point-patch candidate occupies.
//!
//! The workload scheduler (paper Fig. 5) treats each patch-shape
//! candidate `δh × δw × δd` as a frustum in world space: the region swept
//! by the rays of a `δh × δw` pixel tile between two depth planes. Its
//! projection onto a source view (a tetragon-ish convex region) estimates
//! the scene-feature traffic needed to process the patch.

use crate::camera::Camera;
use crate::epipolar::convex_hull_area;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A camera-space frustum: a pixel rectangle swept over a depth range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frustum {
    /// Inclusive pixel rectangle start (u0, v0).
    pub uv_min: Vec2,
    /// Exclusive pixel rectangle end (u1, v1).
    pub uv_max: Vec2,
    /// Near depth along the ray (camera-space `t`).
    pub t_near: f32,
    /// Far depth along the ray.
    pub t_far: f32,
}

impl Frustum {
    /// Creates a frustum from a pixel rectangle and depth range.
    ///
    /// # Panics
    ///
    /// Panics when the rectangle or depth range is empty or inverted.
    pub fn new(uv_min: Vec2, uv_max: Vec2, t_near: f32, t_far: f32) -> Self {
        assert!(
            uv_max.x > uv_min.x && uv_max.y > uv_min.y,
            "empty pixel rectangle"
        );
        assert!(t_far > t_near && t_near >= 0.0, "invalid depth range");
        Self {
            uv_min,
            uv_max,
            t_near,
            t_far,
        }
    }

    /// The eight world-space corners: the four rectangle corners at the
    /// near depth and at the far depth, traced through `camera`.
    pub fn world_corners(&self, camera: &Camera) -> [Vec3; 8] {
        let corners_uv = [
            Vec2::new(self.uv_min.x, self.uv_min.y),
            Vec2::new(self.uv_max.x, self.uv_min.y),
            Vec2::new(self.uv_max.x, self.uv_max.y),
            Vec2::new(self.uv_min.x, self.uv_max.y),
        ];
        let mut out = [Vec3::ZERO; 8];
        for (i, uv) in corners_uv.iter().enumerate() {
            let ray = camera.pixel_ray(uv.x, uv.y);
            out[i] = ray.at(self.t_near);
            out[i + 4] = ray.at(self.t_far);
        }
        out
    }

    /// Projects the frustum onto a source view and returns the convex
    /// hull area of the visible corner projections, in source pixels² —
    /// the workload scheduler's memory-traffic estimate for this patch
    /// candidate.
    ///
    /// Corners behind the source camera are skipped; if fewer than three
    /// corners are visible the area is zero (treated as "free" by the
    /// caller, which also bounds patches by the prefetch-buffer size).
    pub fn projected_area(&self, novel: &Camera, source: &Camera) -> f32 {
        let projections: Vec<Vec2> = self
            .world_corners(novel)
            .iter()
            .filter_map(|&p| source.project(p))
            .collect();
        convex_hull_area(&projections)
    }

    /// Sum of [`Frustum::projected_area`] over several source views — the
    /// quantity the greedy partition minimizes per candidate.
    pub fn total_projected_area(&self, novel: &Camera, sources: &[Camera]) -> f32 {
        sources.iter().map(|s| self.projected_area(novel, s)).sum()
    }

    /// Number of whole pixels covered by the rectangle.
    pub fn pixel_footprint(&self) -> usize {
        let w = (self.uv_max.x - self.uv_min.x).round().max(0.0) as usize;
        let h = (self.uv_max.y - self.uv_min.y).round().max(0.0) as usize;
        w * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{Intrinsics, Pose};

    fn novel() -> Camera {
        Camera::new(
            Intrinsics::from_fov(640, 480, 0.9),
            Pose::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y),
        )
    }

    fn source() -> Camera {
        Camera::new(
            Intrinsics::from_fov(640, 480, 0.9),
            Pose::look_at(Vec3::new(2.0, 0.5, 4.5), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn corners_are_on_pixel_rays() {
        let f = Frustum::new(Vec2::new(100.0, 100.0), Vec2::new(130.0, 120.0), 2.0, 6.0);
        let cam = novel();
        let corners = f.world_corners(&cam);
        // Near corners reproject to the rectangle corners.
        let uv = cam.project(corners[0]).unwrap();
        assert!((uv - Vec2::new(100.0, 100.0)).length() < 0.05);
        let uv = cam.project(corners[6]).unwrap();
        assert!((uv - Vec2::new(130.0, 120.0)).length() < 0.05);
    }

    #[test]
    fn bigger_patch_projects_bigger_area() {
        let small = Frustum::new(Vec2::new(300.0, 220.0), Vec2::new(310.0, 230.0), 3.0, 4.0);
        let large = Frustum::new(Vec2::new(280.0, 200.0), Vec2::new(340.0, 260.0), 3.0, 4.0);
        let a_small = small.projected_area(&novel(), &source());
        let a_large = large.projected_area(&novel(), &source());
        assert!(a_large > a_small, "large={a_large} small={a_small}");
    }

    #[test]
    fn deeper_patch_projects_bigger_area() {
        let shallow = Frustum::new(Vec2::new(300.0, 220.0), Vec2::new(320.0, 240.0), 3.0, 3.5);
        let deep = Frustum::new(Vec2::new(300.0, 220.0), Vec2::new(320.0, 240.0), 3.0, 7.0);
        // A longer ray segment sweeps a longer epipolar-line stretch.
        assert!(
            deep.projected_area(&novel(), &source()) > shallow.projected_area(&novel(), &source())
        );
    }

    #[test]
    fn total_area_sums_over_sources() {
        let f = Frustum::new(Vec2::new(300.0, 220.0), Vec2::new(320.0, 240.0), 3.0, 4.0);
        let n = novel();
        let sources = vec![source(), source()];
        let total = f.total_projected_area(&n, &sources);
        let single = f.projected_area(&n, &source());
        assert!((total - 2.0 * single).abs() < 1e-3);
    }

    #[test]
    fn pixel_footprint_counts_pixels() {
        let f = Frustum::new(Vec2::new(0.0, 0.0), Vec2::new(8.0, 4.0), 1.0, 2.0);
        assert_eq!(f.pixel_footprint(), 32);
    }

    #[test]
    #[should_panic(expected = "empty pixel rectangle")]
    fn rejects_empty_rectangle() {
        let _ = Frustum::new(Vec2::new(10.0, 10.0), Vec2::new(10.0, 20.0), 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid depth range")]
    fn rejects_inverted_depths() {
        let _ = Frustum::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0), 5.0, 2.0);
    }
}
