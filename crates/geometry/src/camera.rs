//! Pinhole camera model (OpenCV convention: `x` right, `y` down, `z`
//! forward).

use crate::mat::{Mat3, Mat4};
use crate::ray::Ray;
use crate::vec::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// Pinhole intrinsics for an image of `width`×`height` pixels.
///
/// Pixel coordinates follow the usual image convention: `u` grows to the
/// right, `v` grows downward, and the center of the top-left pixel is at
/// `(0.5, 0.5)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Intrinsics {
    /// Horizontal focal length in pixels.
    pub fx: f32,
    /// Vertical focal length in pixels.
    pub fy: f32,
    /// Principal point, horizontal.
    pub cx: f32,
    /// Principal point, vertical.
    pub cy: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl Intrinsics {
    /// Creates intrinsics from an explicit focal length and a centered
    /// principal point.
    pub fn new(width: u32, height: u32, fx: f32, fy: f32) -> Self {
        Self {
            fx,
            fy,
            cx: width as f32 / 2.0,
            cy: height as f32 / 2.0,
            width,
            height,
        }
    }

    /// Creates intrinsics from a vertical field of view (radians), with
    /// square pixels and a centered principal point.
    ///
    /// # Panics
    ///
    /// Panics if `fov_y` is not in `(0, π)`.
    pub fn from_fov(width: u32, height: u32, fov_y: f32) -> Self {
        assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "fov_y must be in (0, pi), got {fov_y}"
        );
        let f = height as f32 / (2.0 * (fov_y / 2.0).tan());
        Self::new(width, height, f, f)
    }

    /// The calibration matrix `K`.
    pub fn matrix(&self) -> Mat3 {
        Mat3::from_rows(
            [self.fx, 0.0, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        )
    }

    /// The inverse calibration matrix `K⁻¹`.
    pub fn inverse_matrix(&self) -> Mat3 {
        Mat3::from_rows(
            [1.0 / self.fx, 0.0, -self.cx / self.fx],
            [0.0, 1.0 / self.fy, -self.cy / self.fy],
            [0.0, 0.0, 1.0],
        )
    }

    /// Whether continuous pixel coordinates fall inside the image.
    #[inline]
    pub fn contains(&self, uv: Vec2) -> bool {
        uv.x >= 0.0 && uv.y >= 0.0 && uv.x < self.width as f32 && uv.y < self.height as f32
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }
}

/// A rigid camera pose: camera-to-world rotation plus camera center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Camera-to-world rotation; columns are the camera axes expressed in
    /// world coordinates (`x` right, `y` down, `z` forward).
    pub rotation: Mat3,
    /// Camera center (ray origin) in world coordinates.
    pub origin: Vec3,
}

impl Pose {
    /// The identity pose (camera at the world origin looking along +Z).
    pub const IDENTITY: Self = Self {
        rotation: Mat3::IDENTITY,
        origin: Vec3::ZERO,
    };

    /// Builds a pose located at `eye` looking toward `target` with the
    /// given world-space `up` hint.
    ///
    /// # Panics
    ///
    /// Panics if `eye == target` or if `up` is parallel to the viewing
    /// direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let forward = (target - eye)
            .try_normalized()
            .expect("look_at: eye and target coincide");
        let right = forward
            .cross(up)
            .try_normalized()
            .expect("look_at: up is parallel to the view direction");
        let down = forward.cross(right);
        Self {
            rotation: Mat3::from_cols(right, down, forward),
            origin: eye,
        }
    }

    /// World-to-camera transform of a point.
    #[inline]
    pub fn world_to_camera(&self, p: Vec3) -> Vec3 {
        self.rotation.transpose() * (p - self.origin)
    }

    /// Camera-to-world transform of a point.
    #[inline]
    pub fn camera_to_world(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.origin
    }

    /// The viewing direction (camera +Z axis) in world space.
    #[inline]
    pub fn forward(&self) -> Vec3 {
        self.rotation.col(2)
    }

    /// The pose as a camera-to-world rigid `Mat4`.
    pub fn to_matrix(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.rotation, self.origin)
    }
}

impl Default for Pose {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// A calibrated camera: intrinsics plus pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Pinhole intrinsics.
    pub intrinsics: Intrinsics,
    /// Rigid pose.
    pub pose: Pose,
}

impl Camera {
    /// Creates a camera from intrinsics and pose.
    pub fn new(intrinsics: Intrinsics, pose: Pose) -> Self {
        Self { intrinsics, pose }
    }

    /// Projects a world-space point to continuous pixel coordinates.
    ///
    /// Returns `None` when the point is behind (or numerically on) the
    /// camera plane. The returned coordinates may lie outside the image
    /// bounds; use [`Intrinsics::contains`] to test visibility.
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        let cam = self.pose.world_to_camera(p);
        if cam.z <= crate::EPSILON {
            return None;
        }
        Some(Vec2::new(
            self.intrinsics.fx * cam.x / cam.z + self.intrinsics.cx,
            self.intrinsics.fy * cam.y / cam.z + self.intrinsics.cy,
        ))
    }

    /// Depth (camera-space `z`) of a world point.
    #[inline]
    pub fn depth_of(&self, p: Vec3) -> f32 {
        self.pose.world_to_camera(p).z
    }

    /// The ray through continuous pixel coordinates `(u, v)`.
    pub fn pixel_ray(&self, u: f32, v: f32) -> Ray {
        let dir_cam = Vec3::new(
            (u - self.intrinsics.cx) / self.intrinsics.fx,
            (v - self.intrinsics.cy) / self.intrinsics.fy,
            1.0,
        );
        let dir_world = (self.pose.rotation * dir_cam).normalized();
        Ray::new(self.pose.origin, dir_world)
    }

    /// The ray through the *center* of integer pixel `(px, py)`.
    pub fn pixel_center_ray(&self, px: u32, py: u32) -> Ray {
        self.pixel_ray(px as f32 + 0.5, py as f32 + 0.5)
    }

    /// The 3×4 projection matrix `P = K [Rᵀ | −Rᵀ·O]`, returned as
    /// `(M, p4)` with `M` the left 3×3 block and `p4` the last column.
    pub fn projection_matrix(&self) -> (Mat3, Vec3) {
        let k = self.intrinsics.matrix();
        let r_t = self.pose.rotation.transpose();
        let m = k * r_t;
        let p4 = k * (-(r_t * self.pose.origin));
        (m, p4)
    }

    /// Camera center in world coordinates.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.pose.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_camera() -> Camera {
        Camera::new(
            Intrinsics::from_fov(640, 480, 0.9),
            Pose::look_at(Vec3::new(1.0, 2.0, -5.0), Vec3::ZERO, Vec3::Y),
        )
    }

    #[test]
    fn intrinsics_from_fov_focal_length() {
        let intr = Intrinsics::from_fov(800, 800, std::f32::consts::FRAC_PI_2);
        // tan(45 deg) == 1 => f == h/2.
        assert!((intr.fy - 400.0).abs() < 1e-3);
        assert!((intr.fx - intr.fy).abs() < 1e-6);
        assert_eq!(intr.cx, 400.0);
    }

    #[test]
    #[should_panic(expected = "fov_y")]
    fn intrinsics_rejects_bad_fov() {
        let _ = Intrinsics::from_fov(100, 100, -1.0);
    }

    #[test]
    fn k_inverse_matches_inverse() {
        let intr = Intrinsics::new(320, 240, 200.0, 210.0);
        let prod = intr.matrix() * intr.inverse_matrix();
        assert!((prod - Mat3::IDENTITY).frobenius_norm() < 1e-5);
    }

    #[test]
    fn look_at_faces_target() {
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, -3.0), Vec3::ZERO, Vec3::Y);
        let fwd = pose.forward();
        assert!((fwd - Vec3::Z).length() < 1e-5);
    }

    #[test]
    fn look_at_rotation_is_orthonormal() {
        let pose = Pose::look_at(Vec3::new(2.0, 1.0, 4.0), Vec3::new(-1.0, 0.0, 0.5), Vec3::Y);
        let r = pose.rotation;
        let err = (r * r.transpose() - Mat3::IDENTITY).frobenius_norm();
        assert!(err < 1e-5, "rotation not orthonormal, err={err}");
    }

    #[test]
    fn world_camera_roundtrip() {
        let pose = Pose::look_at(Vec3::new(3.0, -1.0, 2.0), Vec3::ZERO, Vec3::Y);
        let p = Vec3::new(0.3, 0.7, -1.2);
        let back = pose.camera_to_world(pose.world_to_camera(p));
        assert!((back - p).length() < 1e-5);
    }

    #[test]
    fn target_projects_to_principal_point() {
        let cam = test_camera();
        // The look-at target lies on the optical axis.
        let uv = cam.project(Vec3::ZERO).unwrap();
        assert!((uv.x - cam.intrinsics.cx).abs() < 1e-2);
        assert!((uv.y - cam.intrinsics.cy).abs() < 1e-2);
    }

    #[test]
    fn behind_camera_projects_to_none() {
        let cam = test_camera();
        let behind = cam.center() - cam.pose.forward() * 2.0;
        assert!(cam.project(behind).is_none());
    }

    #[test]
    fn pixel_ray_project_roundtrip() {
        let cam = test_camera();
        let ray = cam.pixel_ray(123.4, 456.7);
        let p = ray.at(3.5);
        let uv = cam.project(p).unwrap();
        assert!((uv.x - 123.4).abs() < 1e-2, "u = {}", uv.x);
        assert!((uv.y - 456.7).abs() < 1e-2, "v = {}", uv.y);
    }

    #[test]
    fn projection_matrix_agrees_with_project() {
        let cam = test_camera();
        let p = Vec3::new(0.5, -0.25, 1.0);
        let (m, p4) = cam.projection_matrix();
        let h = m * p + p4;
        let uv = h.dehomogenize().unwrap();
        let direct = cam.project(p).unwrap();
        assert!((uv - direct).length() < 1e-3);
    }

    #[test]
    fn depth_of_is_positive_in_front() {
        let cam = test_camera();
        let p = cam.center() + cam.pose.forward() * 4.2;
        assert!((cam.depth_of(p) - 4.2).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_ray_projects_back_to_pixel(
            u in 1.0f32..639.0,
            v in 1.0f32..479.0,
            t in 0.5f32..20.0,
        ) {
            let cam = test_camera();
            let p = cam.pixel_ray(u, v).at(t);
            let uv = cam.project(p).unwrap();
            prop_assert!((uv.x - u).abs() < 0.05);
            prop_assert!((uv.y - v).abs() < 0.05);
        }

        #[test]
        fn prop_depth_increases_along_ray(
            u in 1.0f32..639.0,
            v in 1.0f32..479.0,
            t1 in 0.5f32..10.0,
            dt in 0.1f32..10.0,
        ) {
            let cam = test_camera();
            let ray = cam.pixel_ray(u, v);
            prop_assert!(cam.depth_of(ray.at(t1 + dt)) > cam.depth_of(ray.at(t1)));
        }
    }
}
