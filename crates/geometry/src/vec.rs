//! Fixed-size vector types (`Vec2`, `Vec3`, `Vec4`).
//!
//! These are deliberately small and `Copy`; all arithmetic is
//! component-wise unless documented otherwise.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_vec_common {
    ($name:ident, $n:expr, [$($field:ident),+]) => {
        impl $name {
            /// The zero vector.
            pub const ZERO: Self = Self { $($field: 0.0),+ };
            /// The all-ones vector.
            pub const ONE: Self = Self { $($field: 1.0),+ };

            /// Creates a vector from components.
            #[inline]
            pub const fn new($($field: f32),+) -> Self {
                Self { $($field),+ }
            }

            /// Creates a vector with every component equal to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($field: v),+ }
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$field * rhs.$field)+
            }

            /// Squared Euclidean length.
            #[inline]
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Returns the unit vector pointing in the same direction.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the vector length is not finite and
            /// positive; in release builds the result contains infinities.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
                self / len
            }

            /// Returns `None` instead of panicking when the vector is too
            /// short to normalize reliably.
            #[inline]
            pub fn try_normalized(self) -> Option<Self> {
                let len = self.length();
                if len > crate::EPSILON {
                    Some(self / len)
                } else {
                    None
                }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($field: self.$field.min(rhs.$field)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($field: self.$field.max(rhs.$field)),+ }
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($field: self.$field.abs()),+ }
            }

            /// Largest component.
            #[inline]
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $( m = m.max(self.$field); )+
                m
            }

            /// Smallest component.
            #[inline]
            pub fn min_component(self) -> f32 {
                let mut m = f32::INFINITY;
                $( m = m.min(self.$field); )+
                m
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self * (1.0 - t) + rhs * t
            }

            /// Component-wise multiplication (Hadamard product).
            #[inline]
            pub fn mul_elem(self, rhs: Self) -> Self {
                Self { $($field: self.$field * rhs.$field),+ }
            }

            /// `true` when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$field.is_finite())+
            }

            /// Sum of components.
            #[inline]
            pub fn sum(self) -> f32 {
                0.0 $(+ self.$field)+
            }

            /// Distance between two points.
            #[inline]
            pub fn distance(self, rhs: Self) -> f32 {
                (self - rhs).length()
            }

            /// Component-wise clamp to `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: f32, hi: f32) -> Self {
                Self { $($field: self.$field.clamp(lo, hi)),+ }
            }

            /// View the vector as a fixed-size array of components.
            #[inline]
            pub fn to_array(self) -> [f32; $n] {
                [$(self.$field),+]
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::ZERO
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }

        impl Mul<$name> for f32 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl MulAssign<f32> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                *self = *self * rhs;
            }
        }

        impl Div<f32> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }

        impl DivAssign<f32> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f32) {
                *self = *self / rhs;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }

        impl Index<usize> for $name {
            type Output = f32;
            #[inline]
            fn index(&self, i: usize) -> &f32 {
                let arr: &[f32; $n] = unsafe { &*(self as *const Self as *const [f32; $n]) };
                &arr[i]
            }
        }

        impl From<[f32; $n]> for $name {
            fn from(a: [f32; $n]) -> Self {
                let mut it = a.into_iter();
                Self { $($field: it.next().unwrap()),+ }
            }
        }

        impl From<$name> for [f32; $n] {
            fn from(v: $name) -> Self {
                v.to_array()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let arr = self.to_array();
                for (i, c) in arr.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    };
}

/// A 2D vector (pixel coordinates, image-plane points).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

/// A 3D vector (world/camera-space points and directions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4D vector (homogeneous coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// Homogeneous component.
    pub w: f32,
}

impl_vec_common!(Vec2, 2, [x, y]);
impl_vec_common!(Vec3, 3, [x, y, z]);
impl_vec_common!(Vec4, 4, [x, y, z, w]);

impl Vec2 {
    /// Unit vector along +X.
    pub const X: Self = Self { x: 1.0, y: 0.0 };
    /// Unit vector along +Y.
    pub const Y: Self = Self { x: 0.0, y: 1.0 };

    /// 2D cross product (z-component of the 3D cross product), i.e. the
    /// signed area of the parallelogram spanned by `self` and `rhs`.
    #[inline]
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Rotates the vector 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }

    /// Extends into homogeneous image coordinates `(x, y, 1)`.
    #[inline]
    pub fn homogeneous(self) -> Vec3 {
        Vec3::new(self.x, self.y, 1.0)
    }
}

impl Vec3 {
    /// Unit vector along +X.
    pub const X: Self = Self {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Self = Self {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// 3D cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Extends into homogeneous coordinates `(x, y, z, 1)`.
    #[inline]
    pub fn homogeneous(self) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, 1.0)
    }

    /// Projects homogeneous image coordinates `(x, y, w)` back to 2D.
    ///
    /// Returns `None` when `w` (here `z`) is numerically zero, i.e. the
    /// point is at infinity.
    #[inline]
    pub fn dehomogenize(self) -> Option<Vec2> {
        if self.z.abs() < crate::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / self.z, self.y / self.z))
        }
    }

    /// XY components.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec4 {
    /// Projects homogeneous coordinates back to 3D.
    ///
    /// Returns `None` when `w` is numerically zero.
    #[inline]
    pub fn dehomogenize(self) -> Option<Vec3> {
        if self.w.abs() < crate::EPSILON {
            None
        } else {
            Some(Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w))
        }
    }

    /// XYZ components.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vec3_basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.5, -0.25);
        let b = Vec3::new(-2.0, 1.0, 0.75);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-6);
        assert!(c.dot(b).abs() < 1e-6);
    }

    #[test]
    fn vec2_cross_signed_area() {
        assert_eq!(Vec2::X.cross(Vec2::Y), 1.0);
        assert_eq!(Vec2::Y.cross(Vec2::X), -1.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.normalized().length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn try_normalized_rejects_zero() {
        assert!(Vec3::ZERO.try_normalized().is_none());
        assert!(Vec3::X.try_normalized().is_some());
    }

    #[test]
    fn dehomogenize_roundtrip() {
        let p = Vec3::new(1.5, -2.0, 0.5);
        let h = p.homogeneous() * 3.0;
        let back = h.dehomogenize().unwrap();
        assert!((back - p).length() < 1e-5);
    }

    #[test]
    fn dehomogenize_at_infinity_is_none() {
        assert!(Vec4::new(1.0, 2.0, 3.0, 0.0).dehomogenize().is_none());
        assert!(Vec3::new(1.0, 2.0, 0.0).dehomogenize().is_none());
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec4::new(9.0, 8.0, 7.0, 6.0);
        assert_eq!(v[0], 9.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 7.0);
        assert_eq!(v[3], 6.0);
    }

    #[test]
    fn display_formats_components() {
        assert_eq!(Vec2::new(1.0, 2.0).to_string(), "(1, 2)");
    }

    #[test]
    fn min_max_component() {
        let v = Vec3::new(-1.0, 5.0, 2.0);
        assert_eq!(v.min_component(), -1.0);
        assert_eq!(v.max_component(), 5.0);
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0)
            .prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_vec3(), b in arb_vec3()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_dot_symmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
        }

        #[test]
        fn prop_cross_anticommutative(a in arb_vec3(), b in arb_vec3()) {
            let c1 = a.cross(b);
            let c2 = b.cross(a);
            prop_assert!((c1 + c2).length() < 1e-3);
        }

        #[test]
        fn prop_length_scales(a in arb_vec3(), s in 0.0f32..10.0) {
            prop_assert!(((a * s).length() - a.length() * s).abs() < 1e-2);
        }

        #[test]
        fn prop_lerp_bounded(a in arb_vec3(), b in arb_vec3(), t in 0.0f32..1.0) {
            let l = a.lerp(b, t);
            let lo = a.min(b);
            let hi = a.max(b);
            prop_assert!(l.x >= lo.x - 1e-3 && l.x <= hi.x + 1e-3);
            prop_assert!(l.y >= lo.y - 1e-3 && l.y <= hi.y + 1e-3);
            prop_assert!(l.z >= lo.z - 1e-3 && l.z <= hi.z + 1e-3);
        }
    }
}
