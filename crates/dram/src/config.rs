//! DRAM device configurations.

use serde::{Deserialize, Serialize};

/// Core DRAM timing parameters, in accelerator (1 GHz) cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Row activate → column command (tRCD).
    pub t_rcd: u64,
    /// Precharge time (tRP).
    pub t_rp: u64,
    /// Column access latency (tCL).
    pub t_cl: u64,
    /// Minimum row-open time before precharge (tRAS).
    pub t_ras: u64,
}

/// A DRAM device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DramConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of independently schedulable banks.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Peak bandwidth in bytes per accelerator cycle (= GB/s at 1 GHz).
    pub bytes_per_cycle: f64,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Energy per row activation, picojoules.
    pub activate_pj: f64,
    /// Energy per byte read, picojoules.
    pub read_pj_per_byte: f64,
}

impl DramConfig {
    /// LPDDR4-2400 with 17.8 GB/s — the paper's AR/VR device memory
    /// (Tab. 4, following the Meta Quest Pro reference).
    pub fn lpddr4_2400() -> Self {
        Self {
            name: "LPDDR4-2400",
            banks: 8,
            row_bytes: 2048,
            bytes_per_cycle: 17.8,
            timing: DramTiming {
                t_rcd: 18,
                t_rp: 18,
                t_cl: 16,
                t_ras: 34,
            },
            activate_pj: 1700.0,
            read_pj_per_byte: 25.0,
        }
    }

    /// LPDDR4-1600 with 25.6 GB/s — Jetson TX2's memory (Tab. 4; wider
    /// bus than the AR/VR part despite the lower data rate).
    pub fn lpddr4_1600() -> Self {
        Self {
            name: "LPDDR4-1600",
            banks: 8,
            row_bytes: 2048,
            bytes_per_cycle: 25.6,
            timing: DramTiming {
                t_rcd: 20,
                t_rp: 20,
                t_cl: 18,
                t_ras: 38,
            },
            activate_pj: 1700.0,
            read_pj_per_byte: 25.0,
        }
    }

    /// GDDR6 with 616 GB/s — RTX 2080Ti's memory (Tab. 4).
    pub fn gddr6() -> Self {
        Self {
            name: "GDDR6",
            banks: 16,
            row_bytes: 4096,
            bytes_per_cycle: 616.0,
            timing: DramTiming {
                t_rcd: 14,
                t_rp: 14,
                t_cl: 12,
                t_ras: 28,
            },
            activate_pj: 2500.0,
            read_pj_per_byte: 60.0,
        }
    }

    /// Cycles to stream `bytes` over the data bus (at least 1).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        ((bytes as f64 / self.bytes_per_cycle).ceil() as u64).max(1)
    }

    /// Peak bandwidth in GB/s (at the 1 GHz accelerator clock,
    /// `bytes_per_cycle` *is* GB/s).
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_bandwidths() {
        assert_eq!(DramConfig::lpddr4_2400().bandwidth_gbps(), 17.8);
        assert_eq!(DramConfig::lpddr4_1600().bandwidth_gbps(), 25.6);
        assert_eq!(DramConfig::gddr6().bandwidth_gbps(), 616.0);
    }

    #[test]
    fn transfer_cycles_rounds_up() {
        let cfg = DramConfig::lpddr4_2400();
        assert_eq!(cfg.transfer_cycles(1), 1);
        assert_eq!(cfg.transfer_cycles(18), 2); // 18 / 17.8 -> 2
        assert_eq!(cfg.transfer_cycles(178), 10);
    }

    #[test]
    fn transfer_of_zero_takes_a_cycle() {
        assert_eq!(DramConfig::gddr6().transfer_cycles(0), 1);
    }

    #[test]
    fn timings_are_sane() {
        for cfg in [
            DramConfig::lpddr4_2400(),
            DramConfig::lpddr4_1600(),
            DramConfig::gddr6(),
        ] {
            assert!(cfg.timing.t_ras >= cfg.timing.t_rcd);
            assert!(cfg.banks.is_power_of_two());
            assert!(cfg.row_bytes.is_power_of_two());
        }
    }
}
