//! Banked DRAM timing and energy model for the Gen-NeRF accelerator.
//!
//! The paper couples its cycle-accurate accelerator simulator to
//! [Ramulator] for LPDDR4-2400 latency/energy (Sec. 5.1). This crate is
//! the substitute: a bank-state-machine model with row-buffer hits and
//! misses, per-bank queueing, a shared data bus, and activation/read
//! energy accounting. It is deliberately scoped to what the paper uses
//! DRAM modeling *for*:
//!
//! * latency of prefetching the scene features of a point patch
//!   (Fig. 12's data-movement bars),
//! * bank conflicts under the three feature-storage layouts of Fig. 6
//!   (row-major, the proposed spatial interleaving, and Var-3's
//!   view-wise interleaving),
//! * DRAM energy per rendered frame.
//!
//! All timings are expressed in *accelerator* clock cycles (1 GHz per
//! the paper), so the accelerator pipeline can compare compute and data
//! movement directly.
//!
//! [Ramulator]: https://github.com/CMU-SAFARI/ramulator
//!
//! # Example
//!
//! ```
//! use gen_nerf_dram::{Dram, DramConfig, FeatureLayout, FeatureRequest};
//!
//! let mut dram = Dram::new(DramConfig::lpddr4_2400(), FeatureLayout::SpatialInterleave);
//! let reqs: Vec<FeatureRequest> = (0..16)
//!     .map(|i| FeatureRequest { view: 0, x: i % 4, y: i / 4, bytes: 32 })
//!     .collect();
//! let result = dram.serve_batch(&reqs);
//! assert!(result.total_cycles > 0);
//! ```

pub mod config;
pub mod layout;
pub mod sim;

pub use config::{DramConfig, DramTiming};
pub use layout::FeatureLayout;
pub use sim::{BatchResult, Dram, DramStats, FeatureRequest};
