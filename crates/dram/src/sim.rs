//! Bank-state-machine DRAM simulator.
//!
//! Requests are served with per-bank row-buffer state (open row, ready
//! time) and a shared data bus. A *batch* models the prefetch of one
//! point patch: all requests are issued at cycle 0 and the batch
//! latency is the completion time of the last one — exactly the
//! quantity the prefetch double buffer must hide behind compute
//! (paper Sec. 4.5).

use crate::config::DramConfig;
use crate::layout::FeatureLayout;
use serde::{Deserialize, Serialize};

/// One scene-feature fetch: `bytes` at texel `(x, y)` of source view
/// `view`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureRequest {
    /// Source-view index.
    pub view: usize,
    /// Texel column.
    pub x: u32,
    /// Texel row.
    pub y: u32,
    /// Bytes to read (feature channels × element size).
    pub bytes: u32,
}

/// Aggregate statistics over the simulator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Requests served.
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
    /// Cycles requests spent waiting for a busy bank.
    pub bank_conflict_stalls: u64,
    /// Cycles requests spent waiting for the shared data bus.
    pub bus_stalls: u64,
    /// Energy consumed, picojoules.
    pub energy_pj: f64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Result of serving one batch (point-patch prefetch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// Cycles from issue to last completion.
    pub total_cycles: u64,
    /// Bytes transferred in this batch.
    pub bytes: u64,
    /// Row hits in this batch.
    pub row_hits: u64,
    /// Row misses in this batch.
    pub row_misses: u64,
    /// Bank-conflict stall cycles in this batch.
    pub bank_conflict_stalls: u64,
    /// Achieved bandwidth as a fraction of peak.
    pub bandwidth_utilization: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

/// The DRAM device simulator.
///
/// Feature-map geometry (`width`, `height`, `feat_bytes`) is set once
/// via [`Dram::set_geometry`] (defaults suit a 64×64×32 B map) so that
/// requests can be expressed in texel coordinates.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    layout: FeatureLayout,
    banks: Vec<Bank>,
    bus_ready_at: u64,
    now: u64,
    stats: DramStats,
    width: u32,
    height: u32,
    feat_bytes: u64,
}

impl Dram {
    /// Creates a simulator for `cfg` using `layout` for feature
    /// placement.
    pub fn new(cfg: DramConfig, layout: FeatureLayout) -> Self {
        Self {
            banks: vec![Bank::default(); cfg.banks],
            bus_ready_at: 0,
            now: 0,
            stats: DramStats::default(),
            width: 64,
            height: 64,
            feat_bytes: 32,
            cfg,
            layout,
        }
    }

    /// Sets the feature-map geometry used to place requests.
    ///
    /// # Panics
    ///
    /// Panics when any argument is zero.
    pub fn set_geometry(&mut self, width: u32, height: u32, feat_bytes: u64) {
        assert!(width > 0 && height > 0 && feat_bytes > 0, "zero geometry");
        self.width = width;
        self.height = height;
        self.feat_bytes = feat_bytes;
    }

    /// The configured device.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The placement layout.
    pub fn layout(&self) -> FeatureLayout {
        self.layout
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Current simulator time (cycles).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Serves a single request issued at the current time; returns its
    /// completion cycle.
    pub fn access(&mut self, req: FeatureRequest) -> u64 {
        let issue = self.now;
        let (bank_idx, row) = self.layout.place(
            req.view,
            req.x.min(self.width - 1),
            req.y.min(self.height - 1),
            self.width,
            self.height,
            self.feat_bytes,
            self.cfg.banks,
            self.cfg.row_bytes,
        );
        let t = self.cfg.timing;
        let bank = &mut self.banks[bank_idx];

        // Wait for the bank.
        let start = issue.max(bank.ready_at);
        self.stats.bank_conflict_stalls += start - issue;

        // Row-buffer state machine.
        let (access_latency, activated) = match bank.open_row {
            Some(open) if open == row => (t.t_cl, false),
            Some(_) => (t.t_rp + t.t_rcd + t.t_cl, true),
            None => (t.t_rcd + t.t_cl, true),
        };
        if activated {
            self.stats.row_misses += 1;
            self.stats.energy_pj += self.cfg.activate_pj;
        } else {
            self.stats.row_hits += 1;
        }
        bank.open_row = Some(row);

        // Column access completes, then the data crosses the shared bus.
        let col_done = start + access_latency;
        let bus_start = col_done.max(self.bus_ready_at);
        self.stats.bus_stalls += bus_start - col_done;
        let transfer = self.cfg.transfer_cycles(req.bytes as u64);
        let done = bus_start + transfer;
        self.bus_ready_at = done;
        // Keep the bank busy until tRAS would allow a precharge, or the
        // access completes — whichever is later.
        bank.ready_at = (start + t.t_ras).max(col_done);

        self.stats.requests += 1;
        self.stats.bytes += req.bytes as u64;
        self.stats.energy_pj += req.bytes as f64 * self.cfg.read_pj_per_byte;
        done
    }

    /// Serves a batch of requests issued simultaneously (a point-patch
    /// prefetch); returns the batch latency and statistics.
    ///
    /// Requests are scheduled in order (FCFS per bank; banks operate in
    /// parallel, the data bus is shared).
    pub fn serve_batch(&mut self, requests: &[FeatureRequest]) -> BatchResult {
        if requests.is_empty() {
            return BatchResult::default();
        }
        let hits0 = self.stats.row_hits;
        let misses0 = self.stats.row_misses;
        let conflicts0 = self.stats.bank_conflict_stalls;
        let start = self.now;
        let mut last_done = start;
        let mut bytes = 0u64;
        for &req in requests {
            let done = self.access(req);
            last_done = last_done.max(done);
            bytes += req.bytes as u64;
        }
        // Advance time to batch completion: the next batch (double
        // buffer swap) starts after this one.
        self.now = last_done;
        let total_cycles = last_done - start;
        let peak_bytes = self.cfg.bytes_per_cycle * total_cycles as f64;
        BatchResult {
            total_cycles,
            bytes,
            row_hits: self.stats.row_hits - hits0,
            row_misses: self.stats.row_misses - misses0,
            bank_conflict_stalls: self.stats.bank_conflict_stalls - conflicts0,
            bandwidth_utilization: if peak_bytes > 0.0 {
                (bytes as f64 / peak_bytes).min(1.0)
            } else {
                0.0
            },
        }
    }

    /// Closes every bank's row buffer (a precharge-all), leaving the
    /// clock, bus state and statistics untouched. Row hit/miss counts
    /// depend only on the open-row state, so a persistent device with
    /// a `precharge_all` between batches reproduces the per-batch
    /// hit/miss counts of a fresh device per batch — the equivalence
    /// behind the accelerator simulator's cold-row patch-parallel
    /// approximation (`prop_precharge_between_batches_matches_fresh_devices`
    /// pins it; `SimMode::WarmRows` is the mode that deliberately
    /// *skips* the precharge to measure what the approximation
    /// forgoes).
    pub fn precharge_all(&mut self) {
        for bank in &mut self.banks {
            bank.open_row = None;
        }
    }

    /// Resets time, bank state and statistics.
    pub fn reset(&mut self) {
        self.banks = vec![Bank::default(); self.cfg.banks];
        self.bus_ready_at = 0;
        self.now = 0;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(view: usize, x: u32, y: u32) -> FeatureRequest {
        FeatureRequest {
            view,
            x,
            y,
            bytes: 32,
        }
    }

    fn dram(layout: FeatureLayout) -> Dram {
        Dram::new(DramConfig::lpddr4_2400(), layout)
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.access(req(0, 0, 0));
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn same_row_second_access_hits() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.access(req(0, 0, 0));
        d.access(req(0, 1, 0)); // adjacent texel, same DRAM row
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = dram(FeatureLayout::RowMajor);
        let t0 = d.now();
        let done_miss = d.access(req(0, 0, 0)) - t0;
        let mut d2 = dram(FeatureLayout::RowMajor);
        d2.access(req(0, 0, 0));
        let t1 = d2.access(req(0, 1, 0));
        let prev = d2.now();
        let _ = prev;
        // Second access latency from its issue (issue time is still 0 in
        // this model since `access` doesn't advance `now`).
        let hit_latency = t1; // includes first access bus occupancy
                              // A cleaner comparison: hit latency must be below two misses.
        assert!(
            hit_latency < 2 * done_miss,
            "hit={hit_latency} miss={done_miss}"
        );
    }

    #[test]
    fn conflicting_bank_accesses_stall() {
        let mut d = dram(FeatureLayout::ViewInterleave);
        // All requests to view 0 → same bank.
        let reqs: Vec<_> = (0..16).map(|i| req(0, i * 8, i * 8)).collect();
        let r = d.serve_batch(&reqs);
        assert!(r.bank_conflict_stalls > 0, "{r:?}");
    }

    #[test]
    fn spatial_interleave_beats_row_major_on_2d_region() {
        // Fetch a 2D local region (what a point patch needs) across two
        // image rows under each layout.
        let region: Vec<_> = (0..4)
            .flat_map(|dy| (0..16).map(move |dx| req(0, 20 + dx, 30 + dy)))
            .collect();
        let mut a = dram(FeatureLayout::SpatialInterleave);
        let ra = a.serve_batch(&region);
        let mut b = dram(FeatureLayout::RowMajor);
        let rb = b.serve_batch(&region);
        assert!(
            ra.bank_conflict_stalls <= rb.bank_conflict_stalls,
            "interleave={} row-major={}",
            ra.bank_conflict_stalls,
            rb.bank_conflict_stalls
        );
    }

    #[test]
    fn view_interleave_worst_for_multi_fetch_same_view() {
        let region: Vec<_> = (0..6)
            .flat_map(|dy| (0..6).map(move |dx| req(0, 8 * dx, 8 * dy)))
            .collect();
        let mut spatial = dram(FeatureLayout::SpatialInterleave);
        let rs = spatial.serve_batch(&region);
        let mut view = dram(FeatureLayout::ViewInterleave);
        let rv = view.serve_batch(&region);
        assert!(
            rv.total_cycles >= rs.total_cycles,
            "view={} spatial={}",
            rv.total_cycles,
            rs.total_cycles
        );
    }

    #[test]
    fn batch_advances_time() {
        let mut d = dram(FeatureLayout::SpatialInterleave);
        assert_eq!(d.now(), 0);
        d.serve_batch(&[req(0, 0, 0)]);
        assert!(d.now() > 0);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut d = dram(FeatureLayout::RowMajor);
        let r = d.serve_batch(&[]);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(d.now(), 0);
    }

    #[test]
    fn energy_accumulates() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.serve_batch(&[req(0, 0, 0), req(0, 1, 0)]);
        let cfg = DramConfig::lpddr4_2400();
        // 1 activation + 64 bytes read.
        let expect = cfg.activate_pj + 64.0 * cfg.read_pj_per_byte;
        assert!((d.stats().energy_pj - expect).abs() < 1e-6);
    }

    #[test]
    fn precharge_all_forces_next_access_to_miss() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.access(req(0, 0, 0));
        d.access(req(0, 1, 0));
        assert_eq!(d.stats().row_hits, 1, "warm row hits before precharge");
        let (requests, bytes) = (d.stats().requests, d.stats().bytes);
        d.precharge_all();
        // Stats and clock survive; the open row does not.
        assert_eq!(d.stats().requests, requests);
        assert_eq!(d.stats().bytes, bytes);
        d.access(req(0, 2, 0)); // same DRAM row as before, now closed
        assert_eq!(d.stats().row_misses, 2);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.serve_batch(&[req(0, 0, 0)]);
        d.reset();
        assert_eq!(d.now(), 0);
        assert_eq!(d.stats().requests, 0);
    }

    #[test]
    fn bandwidth_utilization_bounded() {
        let mut d = dram(FeatureLayout::SpatialInterleave);
        let reqs: Vec<_> = (0..64).map(|i| req(0, i % 8, i / 8)).collect();
        let r = d.serve_batch(&reqs);
        assert!(r.bandwidth_utilization > 0.0 && r.bandwidth_utilization <= 1.0);
    }

    #[test]
    fn hit_rate_reported() {
        let mut d = dram(FeatureLayout::RowMajor);
        d.serve_batch(&[req(0, 0, 0), req(0, 1, 0), req(0, 2, 0)]);
        assert!(d.stats().hit_rate() > 0.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_batch_latency_at_least_transfer_bound(
            n in 1usize..48,
            seed in 0u64..100,
        ) {
            let mut d = dram(FeatureLayout::SpatialInterleave);
            let reqs: Vec<_> = (0..n)
                .map(|i| {
                    let k = (i as u64).wrapping_mul(seed + 7);
                    req((k % 4) as usize, (k % 64) as u32, ((k / 64) % 64) as u32)
                })
                .collect();
            let r = d.serve_batch(&reqs);
            // The bus alone needs bytes / peak cycles.
            let bound = (r.bytes as f64 / d.config().bytes_per_cycle).floor() as u64;
            prop_assert!(r.total_cycles >= bound,
                "cycles={} bound={bound}", r.total_cycles);
        }

        #[test]
        fn prop_precharge_between_batches_matches_fresh_devices(
            n_batches in 1usize..6,
            seed in 0u64..50,
        ) {
            // The cold-row equivalence: hit/miss counts per batch on a
            // persistent device with precharge_all between batches
            // equal those of a fresh device per batch (timing state
            // does not influence the row-buffer state machine).
            let batch = |b: usize| -> Vec<FeatureRequest> {
                (0..12)
                    .map(|i| {
                        let k = (b as u64 * 31 + i as u64).wrapping_mul(seed + 3);
                        req((k % 3) as usize, (k % 64) as u32, ((k / 64) % 64) as u32)
                    })
                    .collect()
            };
            let mut persistent = dram(FeatureLayout::SpatialInterleave);
            for b in 0..n_batches {
                let reqs = batch(b);
                let warm = persistent.serve_batch(&reqs);
                persistent.precharge_all();
                let mut fresh = dram(FeatureLayout::SpatialInterleave);
                let cold = fresh.serve_batch(&reqs);
                prop_assert_eq!(warm.row_hits, cold.row_hits, "batch {}", b);
                prop_assert_eq!(warm.row_misses, cold.row_misses, "batch {}", b);
            }
        }

        #[test]
        fn prop_stats_monotone(n in 1usize..32) {
            let mut d = dram(FeatureLayout::RowMajor);
            let mut prev_requests = 0;
            for i in 0..n {
                d.access(req(0, (i % 64) as u32, ((i * 3) % 64) as u32));
                let s = d.stats();
                prop_assert!(s.requests > prev_requests);
                prev_requests = s.requests;
                prop_assert_eq!(s.row_hits + s.row_misses, s.requests);
            }
        }
    }
}
