//! Scene-feature storage layouts (paper Fig. 6 and Fig. 12's Var-2/3).
//!
//! Scene features form an `S × H_s × W_s × C` tensor in DRAM. How the
//! `(view, x, y)` coordinate maps to a `(bank, row)` pair decides
//! whether the spatially local fetches of a point patch collide on a
//! bank:
//!
//! * [`FeatureLayout::RowMajor`] — features stored row by row
//!   (Fig. 6 (a)): an epipolar-line fetch spanning few image rows lands
//!   on few banks → conflicts (this is *Var-2* in Fig. 12).
//! * [`FeatureLayout::SpatialInterleave`] — the proposed layout
//!   (Fig. 6 (b)): neighbouring texels go to different banks via a 2D
//!   bank tile, so a local 2D region spreads across all banks.
//! * [`FeatureLayout::ViewInterleave`] — banks assigned per source view
//!   (*Var-3*): every fetch for one view hits one bank.

#![allow(clippy::too_many_arguments)] // placement takes a coordinate bundle

use serde::{Deserialize, Serialize};

/// A placement policy mapping feature coordinates to DRAM banks/rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureLayout {
    /// Row-wise storage (Fig. 6 (a); Var-2 baseline).
    RowMajor,
    /// Spatially interleaved storage (Fig. 6 (b); the proposed layout).
    SpatialInterleave,
    /// View-wise interleaving (Var-3 baseline).
    ViewInterleave,
}

impl FeatureLayout {
    /// All layouts in Fig. 12's ablation order.
    pub fn all() -> [FeatureLayout; 3] {
        [
            FeatureLayout::RowMajor,
            FeatureLayout::SpatialInterleave,
            FeatureLayout::ViewInterleave,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureLayout::RowMajor => "row-major",
            FeatureLayout::SpatialInterleave => "spatial-interleave",
            FeatureLayout::ViewInterleave => "view-interleave",
        }
    }

    /// Maps a feature-map texel to `(bank, row)`.
    ///
    /// * `view, x, y` — source view index and texel coordinates,
    /// * `width, height` — feature-map dimensions,
    /// * `feat_bytes` — bytes per texel (C channels × element size),
    /// * `banks` — number of DRAM banks,
    /// * `row_bytes` — bytes per DRAM row.
    pub fn place(
        self,
        view: usize,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        feat_bytes: u64,
        banks: usize,
        row_bytes: u64,
    ) -> (usize, u64) {
        debug_assert!(x < width && y < height, "texel out of range");
        let linear_texel =
            view as u64 * (width as u64 * height as u64) + y as u64 * width as u64 + x as u64;
        let byte_addr = linear_texel * feat_bytes;
        match self {
            FeatureLayout::RowMajor => {
                // Banks striped by DRAM row: consecutive addresses fill a
                // row, then move to the next bank.
                let dram_row_global = byte_addr / row_bytes;
                let bank = (dram_row_global % banks as u64) as usize;
                let row = dram_row_global / banks as u64;
                (bank, row)
            }
            FeatureLayout::SpatialInterleave => {
                // 2D bank tile: bank = f(x mod bx, y mod by) so any
                // bx×by neighbourhood touches all banks; row derived
                // from the tile-local linear address.
                let bx = bank_tile_width(banks);
                let by = banks as u32 / bx;
                let bank = ((x % bx) + (y % by) * bx) as usize;
                // Within a bank, texels appear every (bx, by) steps.
                let tx = (x / bx) as u64;
                let ty = (y / by) as u64;
                let tiles_w = width.div_ceil(bx) as u64;
                let tiles_h = height.div_ceil(by) as u64;
                let local = view as u64 * tiles_w * tiles_h + ty * tiles_w + tx;
                let row = local * feat_bytes / row_bytes;
                (bank, row)
            }
            FeatureLayout::ViewInterleave => {
                let bank = view % banks;
                let local = (y as u64 * width as u64 + x as u64) * feat_bytes;
                (bank, local / row_bytes)
            }
        }
    }
}

/// Width of the 2D bank tile (`bx`), the largest power-of-two divisor
/// `≤ √banks`.
fn bank_tile_width(banks: usize) -> u32 {
    let mut bx = 1u32;
    while (bx * bx * 4) as usize <= banks * 2 && ((bx * 2) as usize) <= banks {
        // grow while bx*2 divides banks and stays ≤ sqrt-ish
        if banks.is_multiple_of((bx * 2) as usize) && ((bx * 2) * (bx * 2)) as usize <= banks * 2 {
            bx *= 2;
        } else {
            break;
        }
    }
    bx
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const W: u32 = 64;
    const H: u32 = 64;
    const FEAT: u64 = 32;
    const BANKS: usize = 8;
    const ROW: u64 = 2048;

    fn place(layout: FeatureLayout, view: usize, x: u32, y: u32) -> (usize, u64) {
        layout.place(view, x, y, W, H, FEAT, BANKS, ROW)
    }

    #[test]
    fn banks_in_range_for_all_layouts() {
        for layout in FeatureLayout::all() {
            for view in 0..4 {
                for y in (0..H).step_by(7) {
                    for x in (0..W).step_by(5) {
                        let (bank, _) = place(layout, view, x, y);
                        assert!(bank < BANKS, "{layout:?} bank {bank}");
                    }
                }
            }
        }
    }

    #[test]
    fn spatial_interleave_spreads_local_region() {
        // A 4×2 neighbourhood must touch all 8 banks.
        let mut banks = HashSet::new();
        for y in 10..12 {
            for x in 20..24 {
                banks.insert(place(FeatureLayout::SpatialInterleave, 0, x, y).0);
            }
        }
        assert_eq!(banks.len(), BANKS, "banks hit: {banks:?}");
    }

    #[test]
    fn row_major_concentrates_local_region() {
        // The same neighbourhood under row-major storage touches far
        // fewer banks (a 64-texel row is 2048 B = one DRAM row, so a few
        // image rows = a few banks).
        let mut banks = HashSet::new();
        for y in 10..12 {
            for x in 20..24 {
                banks.insert(place(FeatureLayout::RowMajor, 0, x, y).0);
            }
        }
        assert!(banks.len() <= 2, "banks hit: {banks:?}");
    }

    #[test]
    fn view_interleave_pins_view_to_bank() {
        let mut banks = HashSet::new();
        for y in (0..H).step_by(13) {
            for x in (0..W).step_by(11) {
                banks.insert(place(FeatureLayout::ViewInterleave, 2, x, y).0);
            }
        }
        assert_eq!(banks.len(), 1);
        assert_eq!(*banks.iter().next().unwrap(), 2 % BANKS);
    }

    #[test]
    fn distinct_views_separate_under_view_interleave() {
        let b0 = place(FeatureLayout::ViewInterleave, 0, 5, 5).0;
        let b1 = place(FeatureLayout::ViewInterleave, 1, 5, 5).0;
        assert_ne!(b0, b1);
    }

    #[test]
    fn placement_is_deterministic() {
        for layout in FeatureLayout::all() {
            assert_eq!(place(layout, 1, 33, 17), place(layout, 1, 33, 17));
        }
    }

    #[test]
    fn bank_tile_width_divides_banks() {
        for banks in [2usize, 4, 8, 16, 32] {
            let bx = bank_tile_width(banks) as usize;
            assert!(banks % bx == 0, "banks={banks} bx={bx}");
            assert!(bx >= 1);
        }
    }

    #[test]
    fn rows_advance_with_address() {
        // Two texels far apart in the same bank land on different rows.
        let (b1, r1) = place(FeatureLayout::RowMajor, 0, 0, 0);
        let (b2, r2) = place(FeatureLayout::RowMajor, 3, 0, 0);
        if b1 == b2 {
            assert_ne!(r1, r2);
        }
    }
}
