//! Text exposition of a [`Snapshot`].
//!
//! Two renderers: [`render_prometheus`] emits the standard
//! `name{labels} value` exposition format (histograms as cumulative
//! `_bucket{le=...}` series plus `_sum`/`_count`), suitable for
//! scraping or diffing; [`render_watch`] emits the compact human table
//! `serve_load` prints at intervals — key rates plus per-class latency
//! percentiles.

use crate::histogram::{bucket_upper_bound, N_BUCKETS};
use crate::registry::{Labels, Snapshot};
use std::fmt::Write;

fn fmt_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

fn fmt_labels_with_le(labels: &Labels, le: &str) -> String {
    let mut inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

/// Prometheus-style exposition dump of every metric in the snapshot.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for c in &snap.counters {
        if c.name != last_name {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            last_name = c.name;
        }
        let _ = writeln!(out, "{}{} {}", c.name, fmt_labels(&c.labels), c.value);
    }
    last_name = "";
    for g in &snap.gauges {
        if g.name != last_name {
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            last_name = g.name;
        }
        let _ = writeln!(out, "{}{} {}", g.name, fmt_labels(&g.labels), g.value);
    }
    last_name = "";
    for h in &snap.histograms {
        if h.name != last_name {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            last_name = h.name;
        }
        let mut cum = 0u64;
        for i in 0..N_BUCKETS {
            cum += h.hist.buckets[i];
            // Empty prefix buckets are elided to keep dumps readable;
            // cumulative counts stay correct because `cum` carries on.
            if h.hist.buckets[i] == 0 && i + 1 < N_BUCKETS {
                continue;
            }
            let le = if i + 1 < N_BUCKETS {
                format!("{}", bucket_upper_bound(i))
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                fmt_labels_with_le(&h.labels, &le),
                cum
            );
        }
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            h.name,
            fmt_labels(&h.labels),
            h.hist.sum
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            h.name,
            fmt_labels(&h.labels),
            h.hist.count
        );
    }
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The human `--watch`-style table: one block of headline counters,
/// then per-class latency percentiles derived from the merged
/// histograms.
pub fn render_watch(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "── telemetry ──────────────────────────────────────");
    let rows: [(&str, &str); 8] = [
        ("submitted", "serve_frames_submitted_total"),
        ("admitted", "serve_frames_admitted_total"),
        ("degraded", "serve_frames_degraded_total"),
        ("shed", "serve_frames_shed_total"),
        ("rendered ok", "serve_frames_rendered_total"),
        ("failed", "serve_frames_failed_total"),
        ("timed out", "serve_frames_timed_out_total"),
        ("retries", "serve_retries_total"),
    ];
    for (label, name) in rows {
        let v = snap.counter_total(name);
        if v > 0 || name.ends_with("submitted_total") {
            let _ = writeln!(out, "  {label:<14} {v}");
        }
    }
    let depth = snap.gauge_with("serve_queue_depth", &[]);
    let _ = writeln!(out, "  {:<14} {depth}", "queue depth");
    for class in snap.label_values("class") {
        let h = snap.histogram_merged("serve_latency_ns", &[("class", &class)]);
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  latency[{class}] n={} p50={:.1}ms p99={:.1}ms p999={:.1}ms",
            h.count,
            ms(h.percentile(0.5)),
            ms(h.percentile(0.99)),
            ms(h.percentile(0.999)),
        );
    }
    for stage in snap.label_values("stage") {
        let h = snap.histogram_merged("render_stage_ns", &[("stage", &stage)]);
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  stage[{stage}] n={} mean={:.2}ms p99={:.2}ms",
            h.count,
            ms(h.mean() as u64),
            ms(h.percentile(0.99)),
        );
    }
    let checks = snap.counter_total("nn_abft_checks_total");
    if checks > 0 {
        let _ = writeln!(
            out,
            "  abft checks={checks} miscompares={}",
            snap.counter_total("nn_abft_miscompares_total")
        );
    }
    let trips = snap.counter_total("core_sentinel_trips_total");
    if trips > 0 {
        let _ = writeln!(out, "  sentinel trips={trips}");
    }
    let _ = writeln!(out, "───────────────────────────────────────────────────");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSample, HistogramSample};

    #[test]
    fn prometheus_dump_has_type_lines_and_cumulative_buckets() {
        let mut snap = Snapshot::default();
        snap.counters.push(CounterSample {
            name: "x_total",
            labels: vec![("shard", "0".to_string())],
            value: 3,
        });
        let mut hist = crate::histogram::HistogramSnapshot::default();
        hist.buckets[1] = 2;
        hist.buckets[3] = 1;
        hist.count = 3;
        hist.sum = 9;
        snap.histograms.push(HistogramSample {
            name: "lat_ns",
            labels: vec![],
            hist,
        });
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total{shard=\"0\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"7\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_count 3"));
    }

    #[test]
    fn watch_table_renders_without_panicking_on_empty() {
        let text = render_watch(&Snapshot::default());
        assert!(text.contains("telemetry"));
    }
}
