//! The workspace clock abstraction.
//!
//! Control logic that *decides* on time — supervisor deadlines,
//! circuit-breaker cooldowns, retry backoff budgets — reads a
//! [`Clock`] instead of calling `Instant::now()` directly. Production
//! code uses [`Clock::real`] (a plain monotonic read); tests use
//! [`Clock::virtual_clock`], which pins a base instant at creation and
//! advances only when told to, so time-dependent behavior becomes a
//! pure function of the test's `advance` calls — no sleeping, no
//! flakiness.
//!
//! The clock still *yields* `Instant`s (base + offset for the virtual
//! clock), so every existing deadline comparison, `Duration` math and
//! explicit-`now` API keeps working unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
enum Inner {
    Real,
    Virtual { base: Instant, offset_ns: AtomicU64 },
}

/// A monotonic clock: real, or virtual for deterministic tests.
/// Cloning is cheap and clones share the same time source.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<Inner>,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

impl Clock {
    /// The monotonic system clock.
    pub fn real() -> Clock {
        Clock {
            inner: Arc::new(Inner::Real),
        }
    }

    /// A deterministic test clock, frozen at creation; only
    /// [`Clock::advance`] moves it.
    pub fn virtual_clock() -> Clock {
        Clock {
            inner: Arc::new(Inner::Virtual {
                base: Instant::now(),
                offset_ns: AtomicU64::new(0),
            }),
        }
    }

    /// The current instant.
    pub fn now(&self) -> Instant {
        match &*self.inner {
            Inner::Real => Instant::now(),
            Inner::Virtual { base, offset_ns } => {
                *base + Duration::from_nanos(offset_ns.load(Ordering::SeqCst))
            }
        }
    }

    /// Advances a virtual clock by `d`.
    ///
    /// # Panics
    ///
    /// On a real clock — wall time cannot be steered.
    pub fn advance(&self, d: Duration) {
        match &*self.inner {
            Inner::Real => panic!("Clock::advance on the real clock"),
            Inner::Virtual { offset_ns, .. } => {
                offset_ns.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
            }
        }
    }

    /// Whether this is a virtual (test) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(&*self.inner, Inner::Virtual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_frozen_until_advanced() {
        let c = Clock::virtual_clock();
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now(), t0);
        c.advance(Duration::from_millis(50));
        assert_eq!(c.now() - t0, Duration::from_millis(50));
    }

    #[test]
    fn clones_share_the_source() {
        let c = Clock::virtual_clock();
        let d = c.clone();
        let t0 = c.now();
        d.advance(Duration::from_secs(1));
        assert_eq!(c.now() - t0, Duration::from_secs(1));
    }

    #[test]
    fn real_clock_moves() {
        let c = Clock::real();
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(1));
        assert!(c.now() > t0);
        assert!(!c.is_virtual());
    }
}
