//! The process-global metrics registry.
//!
//! Registration is the cold path: a mutex-guarded map from
//! `(name, label set)` to a leaked atomic cell, so re-registering the
//! same metric returns the same handle (idempotent — callers cache
//! handles in `OnceLock`s or structs but don't have to). Updates go
//! through the returned `Copy` handles and never touch the lock.
//!
//! Labels distinguish instances of one logical metric — shard index,
//! deadline class, kernel backend, server instance. Aggregates are
//! *derived* by folding a [`Snapshot`], never by parallel bookkeeping:
//! [`Snapshot::counter_total`] / [`Snapshot::histogram_merged`] are
//! the single merge primitive the serve-tier `*Stats` views build on.

use crate::histogram::{HistogramCore, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// An owned label set: key/value pairs, keys static, values owned.
pub type Labels = Vec<(&'static str, String)>;

/// A monotonically increasing (with one carve-out, see
/// [`Counter::sub`]) event counter.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` — only for rollback of a speculative increment
    /// that lost a first-write-wins race (the shard `conclude` path);
    /// ordinary counters never decrease.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, in-flight renders). SeqCst:
/// admission policy *decides* on this value, so the update must not be
/// reorderable against the policy read the way a relaxed op could be.
#[derive(Clone, Copy)]
pub struct Gauge(&'static AtomicI64);

impl Gauge {
    /// Adds `n` and returns the *previous* value (the admission path
    /// claims a queue slot and inspects the pre-claim depth).
    pub fn fetch_add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::SeqCst)
    }

    pub fn inc(&self) -> i64 {
        self.fetch_add(1)
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::SeqCst);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A log₂-bucket latency histogram (see [`crate::histogram()`]).
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramCore);

impl Histogram {
    /// Records one value if telemetry is enabled (nanoseconds by
    /// convention).
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.0.observe(v);
        }
    }

    /// Current frozen state of this one instance.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

enum Cell {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicI64),
    Histogram(&'static HistogramCore),
}

struct Entry {
    name: &'static str,
    labels: Labels,
    cell: Cell,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn find_or_insert(
    name: &'static str,
    labels: &[(&'static str, &str)],
    make: impl FnOnce() -> Cell,
) -> usize {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(i) = reg.iter().position(|e| {
        e.name == name
            && e.labels.len() == labels.len()
            && e.labels
                .iter()
                .zip(labels)
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
    }) {
        return i;
    }
    reg.push(Entry {
        name,
        labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        cell: make(),
    });
    reg.len() - 1
}

/// Registers (or re-resolves) a counter. Cold path — cache the handle.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    let i = find_or_insert(name, labels, || {
        Cell::Counter(Box::leak(Box::new(AtomicU64::new(0))))
    });
    match REGISTRY.lock().unwrap()[i].cell {
        Cell::Counter(c) => Counter(c),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Registers (or re-resolves) a gauge. Cold path — cache the handle.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    let i = find_or_insert(name, labels, || {
        Cell::Gauge(Box::leak(Box::new(AtomicI64::new(0))))
    });
    match REGISTRY.lock().unwrap()[i].cell {
        Cell::Gauge(g) => Gauge(g),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Registers (or re-resolves) a histogram. Cold path — cache the
/// handle.
pub fn histogram(name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
    let i = find_or_insert(name, labels, || {
        Cell::Histogram(Box::leak(Box::new(HistogramCore::new())))
    });
    match REGISTRY.lock().unwrap()[i].cell {
        Cell::Histogram(h) => Histogram(h),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// One counter instance in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct CounterSample {
    pub name: &'static str,
    pub labels: Labels,
    pub value: u64,
}

/// One gauge instance in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct GaugeSample {
    pub name: &'static str,
    pub labels: Labels,
    pub value: i64,
}

/// One histogram instance in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSample {
    pub name: &'static str,
    pub labels: Labels,
    pub hist: HistogramSnapshot,
}

/// A typed, frozen view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
}

fn labels_match(labels: &Labels, subset: &[(&str, &str)]) -> bool {
    subset
        .iter()
        .all(|&(k, v)| labels.iter().any(|(lk, lv)| *lk == k && lv == v))
}

impl Snapshot {
    /// Sum of a counter over every label set carrying `subset` — the
    /// one fold every aggregate stats view derives from.
    pub fn counter_with(&self, name: &str, subset: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name && labels_match(&c.labels, subset))
            .map(|c| c.value)
            .sum()
    }

    /// Sum of a counter over *all* its label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counter_with(name, &[])
    }

    /// Sum of a gauge over every label set carrying `subset`.
    pub fn gauge_with(&self, name: &str, subset: &[(&str, &str)]) -> i64 {
        self.gauges
            .iter()
            .filter(|g| g.name == name && labels_match(&g.labels, subset))
            .map(|g| g.value)
            .sum()
    }

    /// Bucket-wise merge of a histogram over every label set carrying
    /// `subset`.
    pub fn histogram_merged(&self, name: &str, subset: &[(&str, &str)]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for h in self
            .histograms
            .iter()
            .filter(|h| h.name == name && labels_match(&h.labels, subset))
        {
            out.merge(&h.hist);
        }
        out
    }

    /// All distinct values of `key` across every sample's labels, in
    /// first-seen order (drives per-class/per-shard exposition rows).
    pub fn label_values(&self, key: &str) -> Vec<String> {
        let mut seen = Vec::new();
        let all = self
            .counters
            .iter()
            .map(|c| &c.labels)
            .chain(self.gauges.iter().map(|g| &g.labels))
            .chain(self.histograms.iter().map(|h| &h.labels));
        for labels in all {
            for (k, v) in labels {
                if *k == key && !seen.contains(v) {
                    seen.push(v.clone());
                }
            }
        }
        seen
    }
}

/// Freezes the registry: every counter, gauge and histogram with its
/// label set. Sorted by (name, labels) so output is stable.
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().unwrap();
    let mut snap = Snapshot::default();
    for e in reg.iter() {
        match e.cell {
            Cell::Counter(c) => snap.counters.push(CounterSample {
                name: e.name,
                labels: e.labels.clone(),
                value: c.load(Ordering::Relaxed),
            }),
            Cell::Gauge(g) => snap.gauges.push(GaugeSample {
                name: e.name,
                labels: e.labels.clone(),
                value: g.load(Ordering::Relaxed),
            }),
            Cell::Histogram(h) => snap.histograms.push(HistogramSample {
                name: e.name,
                labels: e.labels.clone(),
                hist: h.snapshot(),
            }),
        }
    }
    snap.counters
        .sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
    snap.gauges
        .sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
    snap.histograms
        .sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
    snap
}

/// A process-unique label value for one server/harness instance, so
/// concurrently running instances (unit tests!) never fold each
/// other's counters into their own views.
pub fn next_instance_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test_reg_idem_total", &[("shard", "0")]);
        let b = counter("test_reg_idem_total", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn snapshot_folds_across_label_sets() {
        let a = counter("test_fold_total", &[("shard", "0"), ("inst", "s1")]);
        let b = counter("test_fold_total", &[("shard", "1"), ("inst", "s1")]);
        let c = counter("test_fold_total", &[("shard", "0"), ("inst", "s2")]);
        a.add(1);
        b.add(2);
        c.add(10);
        let snap = snapshot();
        assert_eq!(snap.counter_total("test_fold_total"), 13);
        assert_eq!(snap.counter_with("test_fold_total", &[("inst", "s1")]), 3);
        assert_eq!(snap.counter_with("test_fold_total", &[("shard", "0")]), 11);
        assert_eq!(
            snap.counter_with("test_fold_total", &[("inst", "s2"), ("shard", "0")]),
            10
        );
    }

    #[test]
    fn gauge_reports_previous_value_on_add() {
        let g = gauge("test_gauge_depth", &[]);
        g.set(5);
        assert_eq!(g.fetch_add(1), 5);
        assert_eq!(g.get(), 6);
        g.dec();
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_merge_across_labels() {
        let h0 = histogram("test_hist_ns", &[("class", "interactive")]);
        let h1 = histogram("test_hist_ns", &[("class", "best_effort")]);
        h0.observe(100);
        h0.observe(200);
        h1.observe(1_000_000);
        let snap = snapshot();
        let merged = snap.histogram_merged("test_hist_ns", &[]);
        assert_eq!(merged.count, 3);
        let only_int = snap.histogram_merged("test_hist_ns", &[("class", "interactive")]);
        assert_eq!(only_int.count, 2);
    }
}
