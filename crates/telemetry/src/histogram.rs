//! Fixed-bucket log₂-scale histograms.
//!
//! Values (nanoseconds by convention, but any `u64`) land in one of
//! [`N_BUCKETS`] buckets: bucket 0 holds exactly 0, bucket *i* (i ≥ 1)
//! holds the values with *i* significant bits, i.e. `[2^(i−1), 2^i)`.
//! The layout is fixed at compile time so observation never allocates
//! and snapshots merge bucket-wise. Percentiles derived from a
//! snapshot are exact to one bucket's resolution (a factor of two) —
//! the contract the regression tests pin.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 plus one per possible `u64`
/// bit width.
pub const N_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, else the value's bit width.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The shared atomic core of a [`crate::Histogram`]. Lives leaked in
/// the registry; handles update it with relaxed RMWs.
pub struct HistogramCore {
    pub(crate) buckets: [AtomicU64; N_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: bucket counts plus total count and value sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; N_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wraps on overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge (the fold primitive — label-set merging and
    /// cross-shard aggregation both reduce to this).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound
    /// of the bucket holding that rank — i.e. exact to one bucket's
    /// resolution. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(N_BUCKETS - 1)
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value is ≤ its bucket's upper bound and > the previous
        // bucket's.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_land_within_one_bucket() {
        let core = HistogramCore::new();
        let mut values: Vec<u64> = (1..=1000u64).map(|i| i * 7 + 3).collect();
        for &v in &values {
            core.observe(v);
        }
        values.sort_unstable();
        let snap = core.snapshot();
        assert_eq!(snap.count, 1000);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = values[(((values.len() - 1) as f64) * q).round() as usize];
            let approx = snap.percentile(q);
            let (be, ba) = (bucket_index(exact), bucket_index(approx));
            assert!(
                be.abs_diff(ba) <= 1,
                "q={q}: exact {exact} (bucket {be}) vs {approx} (bucket {ba})"
            );
        }
    }

    #[test]
    fn merge_is_bucket_wise_sum() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        a.observe(5);
        a.observe(100);
        b.observe(5);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 110);
        assert_eq!(m.buckets[bucket_index(5)], 2);
    }
}
