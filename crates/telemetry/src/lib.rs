//! Unified observability substrate for the gen-nerf workspace.
//!
//! Three layers, each usable on its own:
//!
//! * [`registry`] — a process-global, lock-free **metrics registry**:
//!   atomic [`Counter`]s, [`Gauge`]s and fixed-bucket log₂-scale
//!   latency [`Histogram`]s, registered once (cold path, under a
//!   mutex) by static metric name plus a label set, then updated
//!   through `Copy` handles that are a single relaxed atomic op on the
//!   hot path. [`snapshot`] freezes everything into a typed
//!   [`Snapshot`] that callers fold with [`Snapshot::counter_total`]
//!   and friends — the *one* merge primitive every aggregate stats
//!   view in the workspace derives from.
//! * [`trace`] — **frame-lifecycle tracing**: every submitted frame
//!   gets a process-unique id ([`next_frame_id`]) and accumulates
//!   monotonic-clock [`TraceEvent`]s (submit → admission verdict →
//!   queue wait → batch assembly → render → retries → resolve) in a
//!   bounded per-shard [`TraceRing`] with drop counting. Recording an
//!   event is one atomic slot claim plus word-sized relaxed stores —
//!   no locks, no allocation.
//! * [`render`] — text **exposition**: [`render_prometheus`] emits a
//!   Prometheus-style dump, [`render_watch`] a human `--watch`-style
//!   table. `serve_load`/`serve_report` write these on demand
//!   (`GEN_NERF_TELEMETRY_OUT`).
//!
//! [`clock`] supplies the [`Clock`] abstraction (monotonic real clock
//! or a deterministic virtual test clock) that time-dependent control
//! logic (supervisor deadlines, circuit-breaker cooldowns) routes
//! through, so tests can drive time without sleeping.
//!
//! # Hot-path cost contract
//!
//! Counter/gauge updates are one relaxed (gauges: SeqCst where the
//! caller needs it) atomic RMW on a leaked, never-moved cell — they
//! are *bookkeeping*, always on. Histogram observations and trace
//! events are *telemetry* and honor the global [`set_enabled`] switch:
//! disabled, they cost one relaxed load. Enabled, a histogram
//! observation is two relaxed RMWs plus one bucket RMW; a trace event
//! is one RMW to claim a ring slot plus five relaxed word stores.
//! Nothing on any of these paths allocates or takes a lock.

pub mod clock;
pub mod histogram;
pub mod registry;
pub mod render;
pub mod trace;

pub use clock::Clock;
pub use histogram::{bucket_index, bucket_upper_bound, HistogramSnapshot, N_BUCKETS};
pub use registry::{
    counter, gauge, histogram, next_instance_id, snapshot, Counter, CounterSample, Gauge,
    GaugeSample, Histogram, HistogramSample, Snapshot,
};
pub use render::{render_prometheus, render_watch};
pub use trace::{
    next_frame_id, AdmissionVerdict, EventKind, ResolveOutcome, TraceEvent, TraceRing,
    DEFAULT_RING_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables the *telemetry* layers (histogram
/// observations, stage timers, trace recording). Counters and gauges
/// stay live either way — serving policy reads them. The perf_report
/// overhead gate measures renders with this off vs on.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is enabled (one relaxed load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
