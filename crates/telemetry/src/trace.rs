//! Frame-lifecycle tracing.
//!
//! Every frame submitted to the serve tier draws a process-unique id
//! from [`next_frame_id`] and leaves a trail of [`TraceEvent`]s in the
//! owning shard's [`TraceRing`]: submit → admission verdict → queue
//! pop (wait time) → batch assembly → render outcome → retries →
//! resolve. A frame's trace is *complete* when it carries exactly one
//! terminal event — a [`EventKind::Resolve`], or an admission verdict
//! of shed/break (those frames never reach a shard).
//!
//! The ring is bounded and lock-free: recording claims a slot with one
//! `fetch_add` and fills it with relaxed word stores — no allocation,
//! no locks, so the render hot path never blocks on an observer. When
//! writers outrun the drainer the oldest undrained events are
//! overwritten and counted in [`TraceRing::dropped`]; at test scale
//! the regression suite pins that count to zero. Draining while
//! writers are active can observe a slot mid-fill; drain at a quiet
//! point (end of run, after handles resolve) for exact traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default per-shard ring capacity (events). 16Ki events ≈ 640 KiB;
/// sized so CI-scale runs never drop.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Hands out process-unique frame ids (dense, starting at 1; 0 is
/// reserved as "no frame").
pub fn next_frame_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// What happened to a frame at one point of its life. Stored in a
/// ring slot as a `u64` code; payload meaning per kind is documented
/// on each variant (`a`/`b` of [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Frame entered `submit`. `a` = deadline class (0 interactive,
    /// 1 best-effort), `b` = session id.
    Submit,
    /// Admission verdict. `a` = [`AdmissionVerdict`] code, `b` =
    /// pre-claim queue depth. Shed/break verdicts are terminal.
    Admit,
    /// Popped from the shard queue. `a` = queue wait ns, `b` = queue
    /// depth after the pop.
    Pop,
    /// Placed in a render batch. `a` = batch size (frames), `b` =
    /// co-batched peer count (batch size − 1).
    Batch,
    /// One render attempt finished. `a` = render ns, `b` = outcome
    /// (0 ok, 1 cancelled, 2 corrupt, 3 panicked/failed).
    Render,
    /// A retry was scheduled. `a` = attempt number (1-based), `b` =
    /// backoff ns before the attempt.
    Retry,
    /// The frame's slot resolved — always terminal, emitted exactly
    /// once (by whoever wins the first-write-wins fulfil race). `a` =
    /// [`ResolveOutcome`] code, `b` = submit→resolve latency ns.
    Resolve,
    /// The health sweep condemned a shard. Shard-scoped: `frame` = 0,
    /// `a` = shard index, `b` = reason (0 wedged, 1 dead, 2 poisoned
    /// pool).
    Condemn,
    /// A condemned shard respawned with a fresh worker. Shard-scoped:
    /// `frame` = 0, `a` = shard index, `b` = the new incarnation.
    Restart,
    /// A queued frame survived a shard death/restart and was requeued
    /// onto the surviving queue. `a` = shard index, `b` = the frame's
    /// position in the requeue order (0 = front).
    Requeue,
    /// A shard finished (or abandoned) a graceful drain. Shard-scoped:
    /// `frame` = 0, `a` = shard index, `b` = frames force-failed at the
    /// drain deadline (0 for a clean drain).
    Drain,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Submit => 1,
            EventKind::Admit => 2,
            EventKind::Pop => 3,
            EventKind::Batch => 4,
            EventKind::Render => 5,
            EventKind::Retry => 6,
            EventKind::Resolve => 7,
            EventKind::Condemn => 8,
            EventKind::Restart => 9,
            EventKind::Requeue => 10,
            EventKind::Drain => 11,
        }
    }

    fn from_code(c: u64) -> Option<EventKind> {
        Some(match c {
            1 => EventKind::Submit,
            2 => EventKind::Admit,
            3 => EventKind::Pop,
            4 => EventKind::Batch,
            5 => EventKind::Render,
            6 => EventKind::Retry,
            7 => EventKind::Resolve,
            8 => EventKind::Condemn,
            9 => EventKind::Restart,
            10 => EventKind::Requeue,
            11 => EventKind::Drain,
            _ => return None,
        })
    }
}

/// Admission verdict codes carried by [`EventKind::Admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    Admit = 0,
    Degrade = 1,
    Shed = 2,
    Break = 3,
}

impl AdmissionVerdict {
    /// Whether this verdict ends the frame's life (it never reaches a
    /// shard).
    pub fn is_terminal(self) -> bool {
        matches!(self, AdmissionVerdict::Shed | AdmissionVerdict::Break)
    }

    pub fn from_code(c: u64) -> Option<AdmissionVerdict> {
        Some(match c {
            0 => AdmissionVerdict::Admit,
            1 => AdmissionVerdict::Degrade,
            2 => AdmissionVerdict::Shed,
            3 => AdmissionVerdict::Break,
            _ => return None,
        })
    }
}

/// Resolve outcome codes carried by [`EventKind::Resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveOutcome {
    Ok = 0,
    TimedOut = 1,
    Failed = 2,
}

impl ResolveOutcome {
    pub fn from_code(c: u64) -> Option<ResolveOutcome> {
        Some(match c {
            0 => ResolveOutcome::Ok,
            1 => ResolveOutcome::TimedOut,
            2 => ResolveOutcome::Failed,
            _ => return None,
        })
    }
}

/// One drained trace event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// The frame this event belongs to (see [`next_frame_id`]).
    pub frame: u64,
    /// Monotonic timestamp, ns since the ring's creation.
    pub t_ns: u64,
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

struct Slot {
    frame: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A bounded, lock-free multi-producer event ring (one per shard).
pub struct TraceRing {
    epoch: Instant,
    slots: Box<[Slot]>,
    /// Total events ever written (next claim index).
    head: AtomicU64,
    /// Next undrained index (advanced only by [`TraceRing::drain`]).
    tail: AtomicU64,
    /// Events overwritten before they were drained.
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring with capacity rounded up to a power of two.
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            epoch: Instant::now(),
            slots: (0..cap)
                .map(|_| Slot {
                    frame: AtomicU64::new(0),
                    t_ns: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one event: a no-op when telemetry is disabled, else
    /// one `fetch_add` slot claim plus relaxed stores.
    pub fn record(&self, frame: u64, kind: EventKind, a: u64, b: u64) {
        if !crate::enabled() {
            return;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
        slot.frame.store(frame, Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
    }

    /// Events overwritten before any drain saw them (updated lazily at
    /// drain; exact once writers are quiescent).
    pub fn dropped(&self) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        self.dropped.load(Ordering::Relaxed) + (head - tail).saturating_sub(cap)
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The ring's slot count: events beyond this between drains
    /// overwrite the oldest undrained slots (counted by
    /// [`TraceRing::dropped`]).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drains every undrained event, oldest first. Call at a quiet
    /// point for exact traces (see module docs).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        if head - tail > cap {
            // Writers lapped the drainer: the oldest events are gone.
            let lost = head - tail - cap;
            self.dropped.fetch_add(lost, Ordering::Relaxed);
            tail = head - cap;
        }
        let mut out = Vec::with_capacity((head - tail) as usize);
        for idx in tail..head {
            let slot = &self.slots[(idx as usize) & (self.slots.len() - 1)];
            let Some(kind) = EventKind::from_code(slot.kind.load(Ordering::Relaxed)) else {
                continue;
            };
            out.push(TraceEvent {
                frame: slot.frame.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
        self.tail.store(head, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_order() {
        let ring = TraceRing::new(64);
        let f = next_frame_id();
        ring.record(f, EventKind::Submit, 0, 7);
        ring.record(f, EventKind::Admit, AdmissionVerdict::Admit as u64, 3);
        ring.record(f, EventKind::Resolve, ResolveOutcome::Ok as u64, 1234);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Submit);
        assert_eq!(events[2].kind, EventKind::Resolve);
        assert!(events.iter().all(|e| e.frame == f));
        assert_eq!(ring.dropped(), 0);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.record(100 + i, EventKind::Submit, 0, 0);
        }
        assert_eq!(ring.recorded(), 10);
        let events = ring.drain();
        // Capacity 4: only the newest 4 survive, 6 dropped.
        assert_eq!(events.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(events.last().unwrap().frame, 109);
    }

    #[test]
    fn concurrent_writers_lose_nothing_under_capacity() {
        let ring = std::sync::Arc::new(TraceRing::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..256u64 {
                    r.record(t * 1000 + i, EventKind::Render, i, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.drain();
        assert_eq!(events.len(), 4 * 256);
        assert_eq!(ring.dropped(), 0);
        // Every (writer, seq) pair shows up exactly once.
        let mut seen: Vec<u64> = events.iter().map(|e| e.frame).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4 * 256);
    }
}
