//! Supervision: frame deadlines, the watchdog thread, retry/backoff
//! and the per-scene circuit breaker.
//!
//! PR 6 gave the serve tier admission control — a policy for work it
//! has not accepted yet. This module supervises the work it *has*
//! accepted:
//!
//! * **Deadlines.** Every admitted frame is watched against its
//!   [`DeadlineClass`]'s wall-clock budget ([`SupervisorConfig`]). A
//!   single watchdog thread sleeps until the earliest deadline and
//!   resolves overdue handles with
//!   [`ServeError::TimedOut`](crate::ServeError::TimedOut) — a frame
//!   can be slow, but its caller can never be stuck.
//! * **Cancellation.** When a watched frame times out mid-render, the
//!   watchdog fires the batch's
//!   [`CancelToken`](gen_nerf_parallel::CancelToken); the render
//!   pipeline polls it at per-ray boundaries, so the shard worker and
//!   its pool slice drain within one ray's work instead of sleeping
//!   out a stall.
//! * **Retry.** Transient batch failures (an injected panic, a
//!   poisoned pool) re-render the surviving frames one at a time under
//!   a bounded [`RetryPolicy`] — exponential backoff, attempt-capped,
//!   never past the frame's deadline. All render RNG is pose/seed
//!   derived, so a retried frame is bitwise identical to a clean one.
//! * **Breaking.** A per-scene [`CircuitBreaker`] watches the
//!   success/failure history. A scene failing persistently trips the
//!   breaker Open: its submissions shed instantly with
//!   [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen)
//!   instead of burning render budget, until a cooldown admits a small
//!   quota of HalfOpen probe frames whose outcomes close (or re-open)
//!   the circuit. Every state-machine method takes an explicit `now`,
//!   so `tests/shard_scheduling.rs` can property-test transitions
//!   against a reference model on synthetic clocks.

use crate::server::{fulfill, ServeError, Slot};
use crate::session::DeadlineClass;
use gen_nerf_parallel::CancelToken;
use gen_nerf_telemetry::{Clock, Counter, EventKind, Gauge, ResolveOutcome, TraceRing};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-class wall-clock frame budgets enforced by the server's
/// watchdog (`Supervisor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Budget for [`DeadlineClass::Interactive`] frames, submission to
    /// resolution.
    pub interactive_budget: Duration,
    /// Budget for [`DeadlineClass::BestEffort`] frames.
    pub best_effort_budget: Duration,
}

impl Default for SupervisorConfig {
    /// Generous defaults (10 s interactive, 30 s best-effort): wide
    /// enough that healthy renders — including deliberately stalled
    /// test frames — never time out spuriously, tight enough that
    /// nothing waits forever. Serving deployments tune these down to
    /// their real frame budgets.
    fn default() -> Self {
        Self {
            interactive_budget: Duration::from_secs(10),
            best_effort_budget: Duration::from_secs(30),
        }
    }
}

impl SupervisorConfig {
    /// Sets the Interactive frame budget.
    pub fn with_interactive_budget(mut self, budget: Duration) -> Self {
        self.interactive_budget = budget;
        self
    }

    /// Sets the BestEffort frame budget.
    pub fn with_best_effort_budget(mut self, budget: Duration) -> Self {
        self.best_effort_budget = budget;
        self
    }

    /// The wall-clock budget of `class`.
    pub fn budget(&self, class: DeadlineClass) -> Duration {
        match class {
            DeadlineClass::Interactive => self.interactive_budget,
            DeadlineClass::BestEffort => self.best_effort_budget,
        }
    }
}

/// Watchdog counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Frames ever registered with the watchdog.
    pub watched: u64,
    /// Interactive frames resolved with a timeout.
    pub timed_out_interactive: u64,
    /// BestEffort frames resolved with a timeout.
    pub timed_out_best_effort: u64,
    /// Frames currently in flight (watched, not yet resolved).
    pub in_flight: usize,
}

impl SupervisorStats {
    /// Timeouts across both classes.
    pub fn timed_out_total(&self) -> u64 {
        self.timed_out_interactive + self.timed_out_best_effort
    }

    /// Derives the counter set from a telemetry snapshot, folding every
    /// label set matching `subset` (a server passes its instance
    /// label). Like
    /// [`AdmissionStats::from_snapshot`](crate::AdmissionStats::from_snapshot),
    /// this is the only name→field mapping for the watchdog counters.
    pub fn from_snapshot(snap: &gen_nerf_telemetry::Snapshot, subset: &[(&str, &str)]) -> Self {
        let timed_out = |class: &str| {
            let mut s: Vec<(&str, &str)> = subset.to_vec();
            s.push(("class", class));
            snap.counter_with("serve_frames_timed_out_total", &s)
        };
        Self {
            watched: snap.counter_with("serve_frames_watched_total", subset),
            timed_out_interactive: timed_out("interactive"),
            timed_out_best_effort: timed_out("best_effort"),
            in_flight: snap.gauge_with("serve_frames_in_flight", subset).max(0) as usize,
        }
    }
}

/// One watched frame: the handle slot to resolve on timeout, the
/// absolute deadline, (once rendering) the batch's cancel token, and
/// the frame's trace identity so a winning timeout can emit the
/// terminal `Resolve` event itself.
struct WatchEntry {
    slot: Arc<Slot>,
    deadline: Instant,
    class: DeadlineClass,
    cancel: Option<CancelToken>,
    /// Frame-trace id ([`gen_nerf_telemetry::next_frame_id`]).
    frame: u64,
    /// The owning shard's trace ring.
    ring: Arc<TraceRing>,
    /// Submission instant, for the Resolve event's latency payload.
    submitted: Instant,
}

struct WatchState {
    watches: HashMap<u64, WatchEntry>,
    shutdown: bool,
}

/// A periodic callback run on the watchdog thread (the server installs
/// its shard health sweep here, so self-healing needs no extra thread).
struct SweepHook {
    interval: Duration,
    /// When the hook last ran (on the supervisor clock); `None` until
    /// the first run.
    last: Option<Instant>,
    run: Box<dyn FnMut() + Send>,
}

struct SupervisorInner {
    state: Mutex<WatchState>,
    /// Wakes the watchdog: a new (possibly earlier) watch or shutdown.
    wake: Condvar,
    /// The periodic sweep hook, under its own lock so running it never
    /// holds the watch state (the hook takes the server's topology
    /// lock and calls back into [`Supervisor::resolve`]).
    sweep: Mutex<Option<SweepHook>>,
    /// Deadline arithmetic goes through this clock so tests can drive
    /// the watchdog on virtual time.
    clock: Clock,
    watched: Counter,
    in_flight: Gauge,
    timed_out_interactive: Counter,
    timed_out_best_effort: Counter,
    next_id: AtomicU64,
}

/// The frame watchdog: one thread per server, asleep until the
/// earliest outstanding deadline, resolving every overdue handle with
/// [`ServeError::TimedOut`] and cancelling its render. Shared by the
/// server front end (which registers watches at submission) and every
/// shard (which attaches cancel tokens and resolves watches).
pub(crate) struct Supervisor {
    inner: Arc<SupervisorInner>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Supervisor {
    pub(crate) fn spawn(instance: u64, clock: Clock) -> Self {
        let inst = instance.to_string();
        let labels: [(&'static str, &str); 1] = [("instance", &inst)];
        let timed_out = |class: &str| {
            gen_nerf_telemetry::counter(
                "serve_frames_timed_out_total",
                &[("instance", &inst), ("class", class)],
            )
        };
        let inner = Arc::new(SupervisorInner {
            state: Mutex::new(WatchState {
                watches: HashMap::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            sweep: Mutex::new(None),
            clock,
            watched: gen_nerf_telemetry::counter("serve_frames_watched_total", &labels),
            in_flight: gen_nerf_telemetry::gauge("serve_frames_in_flight", &labels),
            timed_out_interactive: timed_out("interactive"),
            timed_out_best_effort: timed_out("best_effort"),
            next_id: AtomicU64::new(1),
        });
        let loop_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("gen-nerf-watchdog".to_string())
            .spawn(move || watchdog_loop(&loop_inner))
            .expect("spawn watchdog thread");
        Self {
            inner,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Registers `slot` against `class`'s budget starting at
    /// `submitted`; returns the watch id the frame carries to its
    /// shard. `frame`/`ring` identify the frame's trace, so a timeout
    /// this watchdog wins emits the terminal `Resolve` event itself.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn watch(
        &self,
        slot: &Arc<Slot>,
        class: DeadlineClass,
        submitted: Instant,
        cfg: &SupervisorConfig,
        frame: u64,
        ring: &Arc<TraceRing>,
    ) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.watched.inc();
        let entry = WatchEntry {
            slot: Arc::clone(slot),
            deadline: submitted + cfg.budget(class),
            class,
            cancel: None,
            frame,
            ring: Arc::clone(ring),
            submitted,
        };
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.watches.insert(id, entry);
        self.inner.in_flight.inc();
        // The new deadline may be the earliest; the watchdog re-reads
        // the minimum on every wake, so one notify is always enough.
        self.inner.wake.notify_all();
        id
    }

    /// Attaches the executing batch's cancel token to `watch`, so a
    /// timeout fired mid-render reclaims the worker. A no-op when the
    /// watch already resolved (the shard detects that through the
    /// slot and skips the render).
    pub(crate) fn begin_render(&self, watch: u64, cancel: &CancelToken) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = state.watches.get_mut(&watch) {
            entry.cancel = Some(cancel.clone());
        }
    }

    /// Drops the watch after its frame resolved (idempotent: the
    /// watchdog removes timed-out watches itself).
    pub(crate) fn resolve(&self, watch: u64) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.watches.remove(&watch).is_some() {
            self.inner.in_flight.dec();
        }
    }

    /// Installs (or replaces) the periodic sweep hook, run on the
    /// watchdog thread every `interval` (on the supervisor clock). The
    /// hook must not call back into anything that takes the watch
    /// state lock *while holding locks the hook's caller also takes* —
    /// in practice: the server's health sweep takes the topology lock,
    /// then per-shard locks, then possibly the watch state (via
    /// `resolve`), and nothing takes those in the opposite order.
    pub(crate) fn set_sweep(&self, interval: Duration, run: Box<dyn FnMut() + Send>) {
        *self.inner.sweep.lock().unwrap_or_else(|e| e.into_inner()) = Some(SweepHook {
            interval: interval.max(Duration::from_millis(1)),
            last: None,
            run,
        });
        // The watchdog may be in an unbounded idle wait from before
        // the hook existed.
        self.inner.wake.notify_all();
    }

    /// The clock this supervisor's deadline math runs on.
    pub(crate) fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    pub(crate) fn stats(&self) -> SupervisorStats {
        let in_flight = {
            let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.watches.len()
        };
        SupervisorStats {
            watched: self.inner.watched.get(),
            timed_out_interactive: self.inner.timed_out_interactive.get(),
            timed_out_best_effort: self.inner.timed_out_best_effort.get(),
            in_flight,
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.inner.wake.notify_all();
        }
        let handle = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            // The sweep hook runs on the watchdog thread and may hold
            // the last strong reference to structures that own this
            // supervisor — if that drop lands here, on the watchdog
            // itself, joining would deadlock on self. Detach instead:
            // shutdown is set, so the loop exits on its own.
            if handle.thread().id() == std::thread::current().id() {
                return;
            }
            let _ = handle.join();
        }
    }
}

/// The watchdog body: fire every overdue watch, run the sweep hook if
/// due, then sleep until the earliest remaining deadline or the next
/// sweep (or a wake). The watch-state lock is **released** while the
/// sweep hook runs — the hook takes the server's topology lock and
/// calls back into [`Supervisor::resolve`].
fn watchdog_loop(inner: &SupervisorInner) {
    loop {
        {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.shutdown {
                return;
            }
            let now = inner.clock.now();
            let overdue: Vec<u64> = state
                .watches
                .iter()
                .filter(|(_, w)| w.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in overdue {
                let entry = state.watches.remove(&id).expect("overdue watch present");
                inner.in_flight.dec();
                // First write wins: the shard may have resolved the
                // slot a moment ago without dropping the watch yet —
                // then this is a no-op, not a timeout.
                if fulfill(
                    &entry.slot,
                    Err(ServeError::TimedOut { class: entry.class }),
                ) {
                    match entry.class {
                        DeadlineClass::Interactive => &inner.timed_out_interactive,
                        DeadlineClass::BestEffort => &inner.timed_out_best_effort,
                    }
                    .inc();
                    // Winning the fulfill race makes this the frame's
                    // one terminal trace event.
                    entry.ring.record(
                        entry.frame,
                        EventKind::Resolve,
                        ResolveOutcome::TimedOut as u64,
                        now.saturating_duration_since(entry.submitted).as_nanos() as u64,
                    );
                    // Reclaim the worker: the render polls the token
                    // at per-ray boundaries and drains.
                    if let Some(cancel) = &entry.cancel {
                        cancel.cancel();
                    }
                }
            }
        }
        // Watch state released: run the sweep hook if its interval
        // elapsed, and learn how long until it is next due.
        let sweep_wait: Option<Duration> = {
            let mut sweep = inner.sweep.lock().unwrap_or_else(|e| e.into_inner());
            match sweep.as_mut() {
                None => None,
                Some(hook) => {
                    let now = inner.clock.now();
                    let since_last = hook.last.map(|last| now.saturating_duration_since(last));
                    if since_last.map_or(true, |since| since >= hook.interval) {
                        (hook.run)();
                        hook.last = Some(inner.clock.now());
                        Some(hook.interval)
                    } else {
                        Some(hook.interval - since_last.expect("checked above"))
                    }
                }
            }
        };
        // Re-acquire and sleep. Deadlines are recomputed under the
        // fresh guard: a watch registered while the sweep ran is seen.
        let state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown {
            return;
        }
        let next = state.watches.values().map(|w| w.deadline).min();
        let deadline_wait =
            next.map(|deadline| deadline.saturating_duration_since(inner.clock.now()));
        let wait = match (deadline_wait, sweep_wait) {
            (Some(d), Some(s)) => Some(d.min(s)),
            (Some(d), None) => Some(d),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        match wait {
            Some(wait) => {
                let mut wait = wait.max(Duration::from_millis(1));
                if inner.clock.is_virtual() {
                    // Virtual time advances out of band; poll so an
                    // `advance` past a deadline is noticed promptly.
                    wait = wait.min(Duration::from_millis(1));
                }
                drop(
                    inner
                        .wake
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|e| e.into_inner()),
                );
            }
            // Nothing watched and no sweep installed: sleep until a
            // registration (or shutdown) wakes us.
            None => {
                drop(inner.wake.wait(state).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }
}

/// Bounded re-render policy for transiently failed frames (render
/// panics, poisoned pools). Retries are attempt-capped, exponentially
/// backed off, and never scheduled past the frame's deadline — the
/// watchdog owns the final word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total render attempts per frame, including the first
    /// (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; each further retry doubles it.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms → 20 ms backoff, capped at 200 ms.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn disabled() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Sets the total attempt cap (at least one).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base backoff (doubled per further retry).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// The backoff before attempt `attempt` (attempts count from 0;
    /// attempt 1 is the first retry): `base * 2^(attempt-1)`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return self.backoff_base.min(self.backoff_cap);
        }
        let factor = 1u32 << (attempt - 1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Circuit-breaker tuning. See [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window of most recent frame outcomes consulted while
    /// Closed.
    pub window: usize,
    /// Failure rate (within the window) at which the breaker opens.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the rate is trusted — a
    /// single early failure must not open a fresh circuit.
    pub min_samples: usize,
    /// How long an Open circuit sheds before admitting probes.
    pub cooldown: Duration,
    /// Probe frames admitted in HalfOpen; all must succeed to close.
    pub probe_quota: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: Duration::from_secs(2),
            probe_quota: 2,
        }
    }
}

impl BreakerConfig {
    /// Sets the failure window and the minimum sample count.
    pub fn with_window(mut self, window: usize, min_samples: usize) -> Self {
        self.window = window.max(1);
        self.min_samples = min_samples.clamp(1, self.window);
        self
    }

    /// Sets the opening failure-rate threshold (clamped to (0, 1]).
    pub fn with_failure_threshold(mut self, threshold: f64) -> Self {
        self.failure_threshold = threshold.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Sets the Open→HalfOpen cooldown.
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the HalfOpen probe quota (at least one).
    pub fn with_probe_quota(mut self, quota: u32) -> Self {
        self.probe_quota = quota.max(1);
        self
    }
}

/// The three circuit states. `Open` and `HalfOpen` carry no public
/// payload; interrogate the breaker with [`CircuitBreaker::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every submission admitted, outcomes windowed.
    Closed,
    /// Tripped: submissions shed until the cooldown elapses.
    Open,
    /// Probing: up to the probe quota admitted; their outcomes close
    /// or re-open the circuit.
    HalfOpen,
}

/// What the breaker decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAdmit {
    /// Circuit closed: admit normally.
    Admit,
    /// Circuit half-open: admit as a probe (its outcome must be
    /// recorded with `probe = true`, or released with
    /// [`CircuitBreaker::abort_probe`] if never rendered).
    Probe,
    /// Circuit open: shed with
    /// [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen).
    Shed,
}

enum BreakerInner {
    Closed {
        /// Most recent outcomes, `true` = success (front = oldest).
        outcomes: std::collections::VecDeque<bool>,
    },
    Open {
        since: Instant,
    },
    HalfOpen {
        /// Probes admitted and not yet resolved.
        in_flight: u32,
        /// Probes that succeeded this HalfOpen episode.
        successes: u32,
    },
}

/// A per-scene failure-rate circuit breaker (Closed → Open →
/// HalfOpen).
///
/// While **Closed**, frame outcomes feed a sliding window; once the
/// window holds at least `min_samples` outcomes and its failure rate
/// reaches `failure_threshold`, the circuit **Opens** and every
/// submission for the scene sheds immediately — a sick scene costs an
/// error result, not a render slot. After `cooldown`, the next
/// submission flips the circuit **HalfOpen**: up to `probe_quota`
/// frames are admitted as probes. A failed probe re-opens the circuit
/// (restarting the cooldown); `probe_quota` successful probes close it
/// with a fresh window.
///
/// Every method takes an explicit `now` so the state machine is a pure
/// function of its call sequence — deterministic under test (the
/// proptest in `tests/shard_scheduling.rs` drives it on a synthetic
/// clock). Outcomes of frames admitted *before* a trip are ignored
/// while Open/HalfOpen: stragglers of the sick era must not corrupt
/// probe accounting.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    clock: Clock,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
    shed: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window, on the real clock.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_clock(cfg, Clock::real())
    }

    /// A closed breaker whose convenience methods
    /// ([`CircuitBreaker::admit_now`], [`CircuitBreaker::record_now`])
    /// read `clock` — pass a [`Clock::virtual_clock`] to drive the
    /// state machine on deterministic time (the breaker proptest does).
    pub fn with_clock(cfg: BreakerConfig, clock: Clock) -> Self {
        Self {
            cfg,
            clock,
            inner: Mutex::new(BreakerInner::Closed {
                outcomes: std::collections::VecDeque::new(),
            }),
            trips: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The clock behind [`CircuitBreaker::admit_now`] /
    /// [`CircuitBreaker::record_now`].
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// [`CircuitBreaker::admit`] at the breaker clock's current time.
    pub fn admit_now(&self) -> BreakerAdmit {
        self.admit(self.clock.now())
    }

    /// [`CircuitBreaker::record`] at the breaker clock's current time.
    pub fn record_now(&self, ok: bool, probe: bool) {
        self.record(ok, probe, self.clock.now());
    }

    /// Decides one submission at `now`. `Probe` admissions must be
    /// resolved by a matching [`CircuitBreaker::record`] with
    /// `probe = true` (or released with
    /// [`CircuitBreaker::abort_probe`]).
    pub fn admit(&self, now: Instant) -> BreakerAdmit {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *inner {
            BreakerInner::Closed { .. } => BreakerAdmit::Admit,
            BreakerInner::Open { since } => {
                if now.saturating_duration_since(*since) < self.cfg.cooldown {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return BreakerAdmit::Shed;
                }
                // Cooldown over: this submission is the first probe.
                *inner = BreakerInner::HalfOpen {
                    in_flight: 1,
                    successes: 0,
                };
                BreakerAdmit::Probe
            }
            BreakerInner::HalfOpen {
                in_flight,
                successes,
            } => {
                if *in_flight + *successes < self.cfg.probe_quota {
                    *in_flight += 1;
                    BreakerAdmit::Probe
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    BreakerAdmit::Shed
                }
            }
        }
    }

    /// Records one frame outcome at `now`. `probe` marks outcomes of
    /// frames admitted as HalfOpen probes; non-probe outcomes are
    /// ignored unless the circuit is Closed (stragglers of a tripped
    /// era carry no signal about recovery).
    pub fn record(&self, ok: bool, probe: bool, now: Instant) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *inner {
            BreakerInner::Closed { outcomes } => {
                // A probe outcome arriving while Closed means the
                // circuit already closed on earlier probes; it windows
                // like any other outcome.
                let _ = probe;
                outcomes.push_back(ok);
                while outcomes.len() > self.cfg.window {
                    outcomes.pop_front();
                }
                let n = outcomes.len();
                if n >= self.cfg.min_samples {
                    let failures = outcomes.iter().filter(|&&o| !o).count();
                    if failures as f64 / n as f64 >= self.cfg.failure_threshold {
                        *inner = BreakerInner::Open { since: now };
                        self.trips.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            BreakerInner::Open { .. } => {}
            BreakerInner::HalfOpen {
                in_flight,
                successes,
            } => {
                if !probe {
                    return;
                }
                *in_flight = in_flight.saturating_sub(1);
                if ok {
                    *successes += 1;
                    if *successes >= self.cfg.probe_quota {
                        *inner = BreakerInner::Closed {
                            outcomes: std::collections::VecDeque::new(),
                        };
                    }
                } else {
                    *inner = BreakerInner::Open { since: now };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Releases a probe admission that will never render (e.g. shed by
    /// depth admission after the breaker admitted it), freeing its
    /// quota slot for another probe.
    pub fn abort_probe(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let BreakerInner::HalfOpen { in_flight, .. } = &mut *inner {
            *in_flight = in_flight.saturating_sub(1);
        }
    }

    /// The current state (no transition is taken; an elapsed cooldown
    /// still reports `Open` until a submission flips it).
    pub fn state(&self) -> BreakerState {
        match &*self.inner.lock().unwrap_or_else(|e| e.into_inner()) {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Times the circuit has tripped Open (from Closed or HalfOpen).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Submissions shed by this breaker.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff(9), Duration::from_millis(35));
    }

    #[test]
    fn breaker_trips_on_failure_rate_and_probes_back() {
        let base = Instant::now();
        let cfg = BreakerConfig::default()
            .with_window(4, 4)
            .with_failure_threshold(0.5)
            .with_cooldown(Duration::from_millis(100))
            .with_probe_quota(2);
        let b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        // Two failures in a window of four at threshold 0.5 → trip.
        for ok in [true, true, false, false] {
            assert_eq!(b.admit(t(base, 0)), BreakerAdmit::Admit);
            b.record(ok, false, t(base, 0));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Open sheds until the cooldown elapses.
        assert_eq!(b.admit(t(base, 50)), BreakerAdmit::Shed);
        assert_eq!(b.shed(), 1);
        // Cooldown over: exactly the probe quota is admitted.
        assert_eq!(b.admit(t(base, 150)), BreakerAdmit::Probe);
        assert_eq!(b.admit(t(base, 150)), BreakerAdmit::Probe);
        assert_eq!(b.admit(t(base, 150)), BreakerAdmit::Shed);
        // Both probes succeed → Closed with a fresh window.
        b.record(true, true, t(base, 160));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(true, true, t(base, 170));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t(base, 180)), BreakerAdmit::Admit);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let base = Instant::now();
        let cfg = BreakerConfig::default()
            .with_window(2, 2)
            .with_failure_threshold(0.5)
            .with_cooldown(Duration::from_millis(100))
            .with_probe_quota(1);
        let b = CircuitBreaker::new(cfg);
        b.admit(t(base, 0));
        b.record(false, false, t(base, 0));
        b.admit(t(base, 0));
        b.record(false, false, t(base, 0));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t(base, 150)), BreakerAdmit::Probe);
        b.record(false, true, t(base, 160));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The cooldown restarted at the probe failure (t=160).
        assert_eq!(b.admit(t(base, 200)), BreakerAdmit::Shed);
        assert_eq!(b.admit(t(base, 300)), BreakerAdmit::Probe);
    }

    #[test]
    fn straggler_outcomes_do_not_corrupt_probe_accounting() {
        let base = Instant::now();
        let cfg = BreakerConfig::default()
            .with_window(2, 2)
            .with_cooldown(Duration::from_millis(10))
            .with_probe_quota(2);
        let b = CircuitBreaker::new(cfg);
        b.record(false, false, t(base, 0));
        b.record(false, false, t(base, 0));
        assert_eq!(b.state(), BreakerState::Open);
        // Stragglers while Open: ignored.
        b.record(true, false, t(base, 5));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t(base, 20)), BreakerAdmit::Probe);
        // A non-probe straggler while HalfOpen: ignored.
        b.record(true, false, t(base, 25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Aborted probe frees its slot.
        b.abort_probe();
        assert_eq!(b.admit(t(base, 30)), BreakerAdmit::Probe);
        assert_eq!(b.admit(t(base, 30)), BreakerAdmit::Probe);
        assert_eq!(b.admit(t(base, 30)), BreakerAdmit::Shed);
    }
}
