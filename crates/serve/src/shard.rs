//! One shard: a scheduler thread owning a scene's request queue, a
//! private render pool, and the fused batch execution path.
//!
//! The server routes every session of a scene to one shard (see
//! [`registry`](crate::registry)); the shard thread drains its bounded
//! queue through a [`FairQueue`] — class priority, round-robin across
//! sessions, FIFO per session — carves the largest batch of frames
//! that can legally share one fused render (same scene `Arc`, same
//! strategy, at most one frame of any cache-enabled session), and runs
//! it on the shard's own [`Pool`] slice of the server's thread budget.
//! A panic inside a render fails that batch's handles and leaves the
//! shard serving; nothing a frame does can take the server down.
//!
//! Supervision (PR 7) hardens the loop: every queued frame carries a
//! watchdog registration, a wall-clock deadline, and its scene's
//! circuit breaker. A render batch runs under a shared [`CancelToken`]
//! the watchdog fires when any batch member blows its budget — the
//! render unwinds cooperatively at the next chunk boundary (releasing
//! the Pool slice a `Fault::Stall` used to park forever) and the
//! surviving frames are re-rendered solo under the shard's
//! [`RetryPolicy`], bitwise identical to a clean render. Every frame's
//! final outcome (success, failure, timeout) is recorded into its
//! scene's breaker so repeated failures open the circuit at admission.
//!
//! Output integrity (PR 8) closes the remaining gap: batches render
//! through the pipeline's fallible API, so a GEMM checksum miscompare
//! or a tripped stage sentinel fails the batch with
//! [`RenderError::Corrupt`] *before* any pixel is published. A corrupt
//! batch is treated exactly like a transient panic — every member
//! re-renders solo under the retry policy, and the scene's breaker
//! sees the failure. Repeated GEMM miscompares while a SIMD kernel
//! backend is active quarantine that backend process-wide
//! ([`integrity::quarantine`]): all further math falls back to the
//! scalar kernels, which are bitwise-identical by the dispatch
//! contract. Cache anchors are digest-checked at import; a corrupted
//! anchor is discarded and counted as a miss instead of seeding a
//! fresh render with poisoned weights.

use crate::admission::{AdmissionStats, FairQueue};
use crate::server::{fulfill, fulfill_error, CacheOutcome, Fault, FrameResult, ServeStats, Slot};
use crate::session::{CacheEntry, DeadlineClass, ResolutionTier, SessionMap, SessionState};
use crate::supervisor::{CircuitBreaker, RetryPolicy, Supervisor};
use gen_nerf::config::SamplingStrategy;
use gen_nerf::pipeline::{self, CoarseFrame, RenderError, RenderStats, Renderer};
use gen_nerf_geometry::{Camera, Pose};
use gen_nerf_nn::kernels::{self, integrity, Backend};
use gen_nerf_parallel::{CancelToken, Pool};
use gen_nerf_scene::Image;
use gen_nerf_telemetry::{
    Counter, EventKind, Gauge, Histogram, ResolveOutcome, TraceRing, DEFAULT_RING_CAPACITY,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One admitted frame travelling from `submit` to its shard.
pub(crate) struct QueuedFrame {
    /// Frame-trace id ([`gen_nerf_telemetry::next_frame_id`]) — keys
    /// every [`gen_nerf_telemetry::TraceEvent`] of this frame's life.
    pub frame: u64,
    pub session: u64,
    pub pose: Pose,
    /// Tier actually rendered (admission may have degraded it).
    pub tier: ResolutionTier,
    pub deadline: DeadlineClass,
    /// Whether admission lowered the tier below the request.
    pub degraded: bool,
    pub reuse: Option<Image>,
    pub fault: Option<Fault>,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
    /// Wall-clock instant past which the watchdog resolves the handle
    /// with `TimedOut`; retries are never scheduled beyond it.
    pub deadline_at: Instant,
    /// This frame's registration with the server's [`Supervisor`].
    pub watch: u64,
    /// Whether the scene's circuit breaker admitted this frame as a
    /// HalfOpen probe (its outcome decides Closed vs back to Open).
    pub probe: bool,
    /// The scene's breaker — carried on the frame so outcome recording
    /// and probe-quota accounting survive session removal.
    pub breaker: Arc<CircuitBreaker>,
}

/// Counters and gauges shared between a shard's thread and the server
/// front end (admission reads the depth gauge, tests read the rest).
///
/// Every handle is a metric in the process-global telemetry registry,
/// labelled `{instance, shard}` — the same atomics back both the
/// exact-count stats views (read through the handles) and any snapshot
/// fold, so there is no parallel bookkeeping to drift.
pub(crate) struct ShardShared {
    /// Frames admitted but not yet pulled into a render batch
    /// (`serve_queue_depth`; SeqCst, the admission policy reads it).
    pub depth: Gauge,
    /// Every frame that entered `submit` for this shard, whatever its
    /// fate (`serve_frames_submitted_total`).
    pub submitted: Counter,
    pub admitted: Counter,
    pub degraded: Counter,
    pub shed_best_effort: Counter,
    pub shed_interactive: Counter,
    /// Frames shed at submission because the scene's breaker was open.
    pub shed_circuit: Counter,
    /// Frames whose handle resolved successfully.
    pub rendered: Counter,
    /// Frames whose handle resolved with an error (render panic or
    /// vanished session).
    pub failed: Counter,
    /// Individual re-render attempts after a transient failure.
    pub retries: Counter,
    /// Fused render jobs executed.
    pub batches: Counter,
    /// Render attempts that failed integrity verification (GEMM
    /// checksum miscompare or a tripped stage sentinel) and were never
    /// published.
    pub corrupt: Counter,
    /// Times this shard latched the process-wide kernel quarantine
    /// (repeated SIMD miscompares demoting to the scalar backend).
    pub quarantined: Counter,
    /// Submit→resolve latency of successfully rendered frames, per
    /// deadline class (`serve_latency_ns`).
    pub latency_interactive: Histogram,
    pub latency_best_effort: Histogram,
    /// Coarse-cache outcomes served by this shard
    /// (`serve_cache_events_total{outcome}`) — the instance-level view
    /// of the per-session [`CacheStats`](crate::CacheStats) counters.
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_bypasses: Counter,
    pub cache_evictions: Counter,
    pub cache_rejects: Counter,
    /// This shard's frame-lifecycle event ring.
    pub ring: Arc<TraceRing>,
}

impl ShardShared {
    /// Registers this shard's metric set under `{instance, shard}`.
    pub(crate) fn new(instance: u64, shard: usize) -> Self {
        let inst = instance.to_string();
        let idx = shard.to_string();
        let labels: [(&'static str, &str); 2] = [("instance", &inst), ("shard", &idx)];
        let counter = |name: &'static str| gen_nerf_telemetry::counter(name, &labels);
        let shed = |reason: &str| {
            gen_nerf_telemetry::counter(
                "serve_frames_shed_total",
                &[("instance", &inst), ("shard", &idx), ("reason", reason)],
            )
        };
        let latency = |class: &str| {
            gen_nerf_telemetry::histogram(
                "serve_latency_ns",
                &[("instance", &inst), ("shard", &idx), ("class", class)],
            )
        };
        let cache = |outcome: &str| {
            gen_nerf_telemetry::counter(
                "serve_cache_events_total",
                &[("instance", &inst), ("shard", &idx), ("outcome", outcome)],
            )
        };
        Self {
            depth: gen_nerf_telemetry::gauge("serve_queue_depth", &labels),
            submitted: counter("serve_frames_submitted_total"),
            admitted: counter("serve_frames_admitted_total"),
            degraded: counter("serve_frames_degraded_total"),
            shed_best_effort: shed("best_effort"),
            shed_interactive: shed("interactive"),
            shed_circuit: shed("circuit"),
            rendered: counter("serve_frames_rendered_total"),
            failed: counter("serve_frames_failed_total"),
            retries: counter("serve_retries_total"),
            batches: counter("serve_batches_total"),
            corrupt: counter("serve_corrupt_renders_total"),
            quarantined: counter("serve_quarantine_events_total"),
            latency_interactive: latency("interactive"),
            latency_best_effort: latency("best_effort"),
            cache_hits: cache("hit"),
            cache_misses: cache("miss"),
            cache_bypasses: cache("bypass"),
            cache_evictions: cache("eviction"),
            cache_rejects: cache("integrity_reject"),
            ring: Arc::new(TraceRing::new(DEFAULT_RING_CAPACITY)),
        }
    }

    pub(crate) fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.get(),
            degraded: self.degraded.get(),
            shed_best_effort: self.shed_best_effort.get(),
            shed_interactive: self.shed_interactive.get(),
            shed_circuit: self.shed_circuit.get(),
        }
    }

    /// The latency histogram of `class`.
    fn latency(&self, class: DeadlineClass) -> Histogram {
        match class {
            DeadlineClass::Interactive => self.latency_interactive,
            DeadlineClass::BestEffort => self.latency_best_effort,
        }
    }
}

/// A point-in-time snapshot of one shard's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames admitted and still waiting in the shard queue.
    pub queued: usize,
    /// Admission counters (admitted / degraded / shed).
    pub admission: AdmissionStats,
    /// Frames rendered to completion.
    pub rendered_frames: u64,
    /// Frames resolved with an error.
    pub failed_frames: u64,
    /// Individual re-render attempts after a transient failure (panic,
    /// pool poison, or a batch-mate's timeout cancelling the batch).
    pub retries: u64,
    /// Fused render jobs executed (`rendered_frames / batches` is the
    /// shard's average batch occupancy).
    pub batches: u64,
    /// Render attempts caught by the integrity machinery (ABFT GEMM
    /// checksum or a stage sentinel) before any pixel was published.
    /// Each detection feeds the retry path, so a transient corruption
    /// shows up here *and* in `retries`, not in `failed_frames`.
    pub corrupt_renders: u64,
    /// Times this shard tripped the process-wide kernel quarantine,
    /// demoting the active SIMD backend to scalar for good.
    pub quarantine_events: u64,
    /// Persistent render workers owned by this shard.
    pub pool_threads: usize,
}

/// The server's handle on one shard: its submission channel, shared
/// counters, and the scheduler thread to join at shutdown.
pub(crate) struct Shard {
    pub tx: Option<Sender<QueuedFrame>>,
    pub shared: Arc<ShardShared>,
    pub pool_threads: usize,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Shard {
    /// Spawns shard `index` of server `instance` with `pool_threads`
    /// render workers, reporting frame lifecycles to `supervisor` and
    /// re-rendering transient failures under `retry`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        instance: u64,
        index: usize,
        pool_threads: usize,
        max_batch: usize,
        sessions: SessionMap,
        supervisor: Arc<Supervisor>,
        retry: RetryPolicy,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<QueuedFrame>();
        let shared = Arc::new(ShardShared::new(instance, index));
        let loop_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("gen-nerf-shard-{index}"))
            .spawn(move || {
                shard_loop(
                    index,
                    rx,
                    sessions,
                    loop_shared,
                    pool_threads,
                    max_batch,
                    supervisor,
                    retry,
                )
            })
            .expect("spawn shard thread");
        Self {
            tx: Some(tx),
            shared,
            pool_threads,
            worker: Some(worker),
        }
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            queued: self.shared.depth.get().max(0) as usize,
            admission: self.shared.admission_stats(),
            rendered_frames: self.shared.rendered.get(),
            failed_frames: self.shared.failed.get(),
            retries: self.shared.retries.get(),
            batches: self.shared.batches.get(),
            corrupt_renders: self.shared.corrupt.get(),
            quarantine_events: self.shared.quarantined.get(),
            pool_threads: self.pool_threads,
        }
    }

    /// Closes the queue (the shard drains, then exits) and joins the
    /// scheduler thread.
    pub(crate) fn shutdown(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cumulative GEMM-checksum miscompares observed under a SIMD backend,
/// across every shard in the process. The counter is process-wide on
/// purpose: quarantine is a verdict about the *hardware/kernel* pair,
/// not about any one scene's queue.
static SIMD_MISCOMPARES: AtomicU32 = AtomicU32::new(0);

/// Miscompares under a SIMD backend tolerated before that backend is
/// quarantined process-wide. One miscompare can be a stray bit flip;
/// a repeat offender is a broken unit.
const QUARANTINE_AFTER: u32 = 3;

/// Books one corrupt render attempt and applies the quarantine policy:
/// a GEMM-stage miscompare while a non-scalar backend is active counts
/// a strike against that backend, and strike `QUARANTINE_AFTER` latches
/// the process-wide quarantine (`kernels` demotes to scalar, sticky).
/// Sentinel trips never strike — a non-finite pixel indicts the math
/// upstream, not the SIMD unit specifically.
fn note_corrupt_render(err: &RenderError, shared: &ShardShared) {
    shared.corrupt.inc();
    let RenderError::Corrupt { stage, detail } = err;
    if *stage != "gemm" {
        return;
    }
    let backend = kernels::active_backend();
    if backend == Backend::Scalar {
        return;
    }
    let strikes = SIMD_MISCOMPARES.fetch_add(1, Ordering::Relaxed) + 1;
    if strikes >= QUARANTINE_AFTER && integrity::quarantine(backend) {
        shared.quarantined.inc();
        eprintln!(
            "gen-nerf-serve: quarantined kernel backend {backend:?} after \
             {strikes} GEMM miscompares (last: {detail}); serving on scalar"
        );
    }
}

/// Nanoseconds elapsed since `since`, saturating (trace payloads).
fn ns_since(since: Instant) -> u64 {
    Instant::now().saturating_duration_since(since).as_nanos() as u64
}

/// Fails a frame's handle with `msg`, keeping the counter and the
/// terminal trace event consistent with the first-write-wins fulfil:
/// the counter and the `Resolve` event book only when this call's
/// write is the resolving one.
fn fail_frame(frame: &QueuedFrame, shared: &ShardShared, msg: &str) {
    shared.failed.inc();
    if fulfill_error(&frame.slot, msg) {
        shared.ring.record(
            frame.frame,
            EventKind::Resolve,
            ResolveOutcome::Failed as u64,
            ns_since(frame.submitted),
        );
    } else {
        shared.failed.sub(1);
    }
}

fn resolve(sessions: &SessionMap, id: u64) -> Option<Arc<SessionState>> {
    sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&id)
        .cloned()
}

/// Whether the coherence cache constrains batching for `state` (at
/// most one of its frames per fused job, so in-order cache updates are
/// a guarantee rather than a race).
fn cache_applies(state: &SessionState) -> bool {
    state.cfg.coherence.enabled
        && matches!(state.cfg.strategy, SamplingStrategy::CoarseThenFocus { .. })
}

/// Releases a frame that will never render: returns its breaker-probe
/// quota slot (if it held one) and detaches its watchdog registration.
/// Deliberately records **no** breaker outcome — a frame that timed
/// out while still queued, or whose session vanished, says nothing
/// about the scene's health.
fn release_unrendered(frame: &QueuedFrame, supervisor: &Supervisor) {
    if frame.probe {
        frame.breaker.abort_probe();
    }
    supervisor.resolve(frame.watch);
}

/// The shard event loop: block for one frame, drain the channel into
/// the fair queue, dequeue the policy-ordered head, grow the largest
/// compatible batch around it, render, repeat. Exits when the channel
/// closes *and* every admitted frame is resolved.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    index: usize,
    rx: Receiver<QueuedFrame>,
    sessions: SessionMap,
    shared: Arc<ShardShared>,
    pool_threads: usize,
    max_batch: usize,
    supervisor: Arc<Supervisor>,
    retry: RetryPolicy,
) {
    let pool = Pool::new(pool_threads.max(1));
    let max_batch = max_batch.max(1);
    let mut queue: FairQueue<QueuedFrame> = FairQueue::new();
    let mut open = true;
    while open || !queue.is_empty() {
        if queue.is_empty() {
            match rx.recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        while open {
            match rx.try_recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }

        // Policy-ordered head. A frame leaves the admission depth
        // gauge the moment it is pulled out of the queue.
        let Some(head) = queue.pop() else { continue };
        shared.depth.dec();
        shared.ring.record(
            head.frame,
            EventKind::Pop,
            ns_since(head.submitted),
            shared.depth.get().max(0) as u64,
        );
        if head.slot.is_resolved() {
            // Timed out while still queued (the watchdog already
            // resolved the handle): skip the render entirely.
            release_unrendered(&head, &supervisor);
            continue;
        }
        let Some(head_state) = resolve(&sessions, head.session) else {
            fail_frame(&head, &shared, "session removed with frames queued");
            release_unrendered(&head, &supervisor);
            continue;
        };

        // Grow the batch: only lane heads compatible with the batch
        // head ride along (dead sessions and already-resolved frames
        // are popped so they don't park their lane forever).
        let mut cache_sessions: Vec<u64> = Vec::new();
        if cache_applies(&head_state) {
            cache_sessions.push(head.session);
        }
        let mut group: Vec<(QueuedFrame, Arc<SessionState>)> = vec![(head, head_state)];
        while group.len() < max_batch {
            let head_scene = Arc::clone(&group[0].1.scene);
            let head_strategy = group[0].1.cfg.strategy;
            let candidate = queue.pop_next(|frame| {
                if frame.slot.is_resolved() {
                    return true;
                }
                match resolve(&sessions, frame.session) {
                    // Pop dead-session frames so they fail instead of
                    // parking their lane forever.
                    None => true,
                    Some(state) => {
                        Arc::ptr_eq(&state.scene, &head_scene)
                            && state.cfg.strategy == head_strategy
                            && !(cache_applies(&state) && cache_sessions.contains(&frame.session))
                    }
                }
            });
            let Some(frame) = candidate else { break };
            shared.depth.dec();
            shared.ring.record(
                frame.frame,
                EventKind::Pop,
                ns_since(frame.submitted),
                shared.depth.get().max(0) as u64,
            );
            if frame.slot.is_resolved() {
                release_unrendered(&frame, &supervisor);
                continue;
            }
            match resolve(&sessions, frame.session) {
                None => {
                    fail_frame(&frame, &shared, "session removed with frames queued");
                    release_unrendered(&frame, &supervisor);
                }
                Some(state) => {
                    if cache_applies(&state) {
                        cache_sessions.push(frame.session);
                    }
                    group.push((frame, state));
                }
            }
        }
        execute_group(index, &pool, group, &shared, &supervisor, retry);
    }
}

/// Renders one admission batch as a single fused multi-frame job and
/// fulfills its handles. A panic anywhere in the render — or a
/// watchdog cancellation fired by any batch member's deadline — fails
/// over to per-frame [`retry_frame`] recovery instead of killing the
/// shard; every frame's final outcome is recorded into its scene's
/// circuit breaker exactly once.
fn execute_group(
    shard: usize,
    pool: &Pool,
    mut group: Vec<(QueuedFrame, Arc<SessionState>)>,
    shared: &ShardShared,
    supervisor: &Supervisor,
    retry: RetryPolicy,
) {
    shared.batches.inc();
    for (frame, _) in &group {
        shared.ring.record(
            frame.frame,
            EventKind::Batch,
            group.len() as u64,
            (group.len() - 1) as u64,
        );
    }
    // Take the recycled buffers out of the requests up front: they are
    // moved (not cloned) into the render and returned in the results.
    let buffers: Vec<Option<Image>> = group
        .iter_mut()
        .map(|(frame, _)| frame.reuse.take())
        .collect();
    // One token guards the whole fused job: the watchdog fires it when
    // *any* member blows its budget, and the render unwinds at the
    // next chunk boundary.
    let cancel = CancelToken::new();
    for (frame, _) in &group {
        supervisor.begin_render(frame.watch, &cancel);
    }
    let attempt_start = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        render_group(shard, pool, &group, buffers, &cancel, 0, shared)
    }));
    // Render-attempt trace payload: elapsed ns + outcome code (0 ok,
    // 1 cancelled, 2 corrupt, 3 panicked).
    let render_ns = ns_since(attempt_start);
    let render_outcome = match &outcome {
        Ok(Ok(_)) if !cancel.is_cancelled() => 0,
        Ok(Ok(_)) => 1,
        Ok(Err(_)) => 2,
        Err(_) => 3,
    };
    for (frame, _) in &group {
        shared
            .ring
            .record(frame.frame, EventKind::Render, render_ns, render_outcome);
    }
    let first_error = match outcome {
        Ok(Ok(results)) => {
            if !cancel.is_cancelled() {
                for ((frame, _), result) in group.into_iter().zip(results) {
                    conclude(frame, Ok(result), shared, supervisor);
                }
                return;
            }
            // A cancelled batch renders its remaining rays as
            // background: every member's output is suspect, so none
            // may be fulfilled. Unresolved members re-render solo.
            "render cancelled by a timed-out batch member".to_string()
        }
        // Integrity verification failed: the batch's pixels were never
        // published and every member is retryable, exactly like a
        // panic — corruption is transient until quarantine says
        // otherwise.
        Ok(Err(err)) => {
            note_corrupt_render(&err, shared);
            err.to_string()
        }
        Err(payload) => panic_message(payload.as_ref()),
    };
    for (frame, state) in group {
        retry_frame(
            shard,
            pool,
            frame,
            state,
            shared,
            supervisor,
            retry,
            first_error.clone(),
        );
    }
}

/// Resolves one frame's final outcome: records the outcome into the
/// scene's breaker, fulfills the handle (unless the watchdog got there
/// first — `fulfill` is first-write-wins), and detaches the watch.
fn conclude(
    frame: QueuedFrame,
    outcome: Result<FrameResult, String>,
    shared: &ShardShared,
    supervisor: &Supervisor,
) {
    // The breaker and the counters move *before* the fulfill so a
    // waiter that wakes on the handle already sees them. The breaker
    // takes the render's true outcome even when the watchdog wins the
    // fulfill race — the frame blew its budget, but the scene itself
    // rendered, and the breaker gauges scene health, not deadline
    // pressure. (Stall-sick scenes still record failures: their
    // cancelled renders resolve through the retry path instead.)
    let ok = outcome.is_ok();
    frame.breaker.record(ok, frame.probe, Instant::now());
    match outcome {
        Ok(result) => {
            shared.rendered.inc();
            let latency_ns = ns_since(frame.submitted);
            if fulfill(&frame.slot, Ok(result)) {
                // Winning the race makes this the frame's one terminal
                // trace event; the latency histogram books only real
                // (delivered) successes.
                shared.latency(frame.deadline).observe(latency_ns);
                shared.ring.record(
                    frame.frame,
                    EventKind::Resolve,
                    ResolveOutcome::Ok as u64,
                    latency_ns,
                );
            } else {
                shared.rendered.sub(1);
            }
        }
        Err(message) => {
            fail_frame(&frame, shared, &message);
        }
    }
    supervisor.resolve(frame.watch);
}

/// Re-renders one frame solo after a transient batch failure (panic,
/// pool poison, or a batch-mate's timeout): bounded attempts with
/// exponential backoff, never scheduled past the frame's deadline.
/// The kernel batch-independence contract makes a successful retry
/// bitwise identical to the original batched render.
#[allow(clippy::too_many_arguments)]
fn retry_frame(
    shard: usize,
    pool: &Pool,
    frame: QueuedFrame,
    state: Arc<SessionState>,
    shared: &ShardShared,
    supervisor: &Supervisor,
    retry: RetryPolicy,
    mut last_error: String,
) {
    let pair = (frame, state);
    for attempt in 1..retry.max_attempts.max(1) {
        if pair.0.slot.is_resolved() {
            // The watchdog timed this frame out: its budget is spent,
            // which is a scene failure even without a fresh attempt.
            let (frame, _) = pair;
            frame.breaker.record(false, frame.probe, Instant::now());
            supervisor.resolve(frame.watch);
            return;
        }
        let backoff = retry.backoff(attempt);
        if Instant::now() + backoff >= pair.0.deadline_at {
            // A retry that lands past the deadline is wasted work: the
            // watchdog would discard it anyway.
            break;
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        shared.retries.inc();
        shared.ring.record(
            pair.0.frame,
            EventKind::Retry,
            attempt as u64,
            backoff.as_nanos() as u64,
        );
        let cancel = CancelToken::new();
        supervisor.begin_render(pair.0.watch, &cancel);
        let attempt_start = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            render_group(
                shard,
                pool,
                std::slice::from_ref(&pair),
                vec![None],
                &cancel,
                attempt,
                shared,
            )
        }));
        let render_ns = ns_since(attempt_start);
        let render_outcome = match &outcome {
            Ok(Ok(_)) if !cancel.is_cancelled() => 0,
            Ok(Ok(_)) => 1,
            Ok(Err(_)) => 2,
            Err(_) => 3,
        };
        shared
            .ring
            .record(pair.0.frame, EventKind::Render, render_ns, render_outcome);
        match outcome {
            Ok(Ok(mut results)) if !cancel.is_cancelled() => {
                let result = results.pop().expect("one frame in, one result out");
                conclude(pair.0, Ok(result), shared, supervisor);
                return;
            }
            // Cancelled mid-retry: the top-of-loop check (or the
            // exhausted path below) observes the resolved slot.
            Ok(Ok(_)) => {}
            // The retry itself produced corrupt output — book it and
            // keep retrying (quarantine may demote the backend between
            // attempts, which is exactly the recovery path).
            Ok(Err(err)) => {
                note_corrupt_render(&err, shared);
                last_error = err.to_string();
            }
            Err(payload) => last_error = panic_message(payload.as_ref()),
        }
    }
    // Attempts or wall-clock budget exhausted. `fulfill_error` loses
    // (returns false) if the watchdog already resolved the handle.
    let (frame, _) = pair;
    frame.breaker.record(false, frame.probe, Instant::now());
    fail_frame(&frame, shared, &last_error);
    supervisor.resolve(frame.watch);
}

/// Sleeps `total` in small slices, returning early the moment `cancel`
/// fires — a stalled worker yields its slot within ~5 ms of the
/// watchdog's verdict instead of parking for the full stall.
fn cancellable_sleep(total: Duration, cancel: &CancelToken) {
    let deadline = Instant::now() + total;
    while !cancel.is_cancelled() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
}

/// The render half of [`execute_group`]: cache lookups, one fused
/// multi-frame render, cache updates. `group` frames share one scene
/// and strategy (batch carving guarantees it). `attempt` is 0 for the
/// first (batched) render and counts up through retries — transient
/// injected faults consult it via [`Fault::fires`]. When `cancel`
/// fires mid-render the returned images are garbage (remaining rays
/// render as background) and the caller must not fulfill them; cache
/// anchors are likewise withheld.
#[allow(clippy::too_many_arguments)]
fn render_group(
    shard: usize,
    pool: &Pool,
    group: &[(QueuedFrame, Arc<SessionState>)],
    buffers: Vec<Option<Image>>,
    cancel: &CancelToken,
    attempt: u32,
    shared: &ShardShared,
) -> Result<Vec<FrameResult>, RenderError> {
    let started = Instant::now();
    let n = group.len();
    let scene = &group[0].1.scene;
    let strategy = group[0].1.cfg.strategy;
    let is_ctf = matches!(strategy, SamplingStrategy::CoarseThenFocus { .. });

    // Injected faults fire inside the batch's unwind boundary, exactly
    // where a real mid-frame failure would: after admission, before
    // the frame resolves. The corruption family arms the pipeline's
    // chaos hooks — a supra-tolerance GEMM perturbation or a poisoned
    // pixel — which the integrity machinery must then catch.
    for (frame, _) in group {
        let Some(fault) = frame.fault else { continue };
        if !fault.fires(attempt) {
            continue;
        }
        match fault {
            Fault::Stall(delay) => cancellable_sleep(delay, cancel),
            Fault::Panic | Fault::PanicOnce => panic!("injected render fault"),
            Fault::CorruptGemm(seed) => integrity::arm_corruption(seed),
            Fault::CorruptPixels(seed) => pipeline::arm_pixel_corruption(seed),
            // Fired below, against the session's cache under its lock.
            Fault::CorruptAnchor(_) => {}
        }
    }

    // Cache lookups resolve against each session's anchors *before*
    // the job, so a batch behaves exactly like the same frames served
    // one at a time in admission order. Imports are validated: an
    // anchor whose digest or ray count no longer checks out is
    // discarded and the lookup counts as a miss.
    let mut cameras: Vec<Camera> = Vec::with_capacity(n);
    let mut cached_arcs: Vec<Option<Arc<CoarseFrame>>> = Vec::with_capacity(n);
    let mut outcomes: Vec<CacheOutcome> = Vec::with_capacity(n);
    for (frame, state) in group {
        let intrinsics = frame.tier.apply(state.cfg.intrinsics);
        let expected_rays = intrinsics.width as usize * intrinsics.height as usize;
        cameras.push(Camera::new(intrinsics, frame.pose));
        if !is_ctf || !state.cfg.coherence.enabled {
            state.bypasses.fetch_add(1, Ordering::Relaxed);
            shared.cache_bypasses.inc();
            cached_arcs.push(None);
            outcomes.push(CacheOutcome::Bypass);
            continue;
        }
        let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(fault @ Fault::CorruptAnchor(seed)) = frame.fault {
            if fault.fires(attempt) {
                cache.corrupt_for_chaos(seed);
            }
        }
        let rejects_before = cache.rejected();
        match cache.lookup(frame.tier, &frame.pose, &state.cfg.coherence, expected_rays) {
            Some(coarse) => {
                state.hits.fetch_add(1, Ordering::Relaxed);
                shared.cache_hits.inc();
                cached_arcs.push(Some(coarse));
                outcomes.push(CacheOutcome::Hit);
            }
            None => {
                state.misses.fetch_add(1, Ordering::Relaxed);
                shared.cache_misses.inc();
                cached_arcs.push(None);
                outcomes.push(CacheOutcome::Miss);
            }
        }
        shared.cache_rejects.add(cache.rejected() - rejects_before);
    }

    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .with_threads(pool.threads())
    .with_pool(pool)
    .with_cancel(cancel);

    let mut images: Vec<Image> = buffers
        .into_iter()
        .map(|buf| buf.unwrap_or_else(|| Image::new(0, 0)))
        .collect();
    let mut stats = vec![RenderStats::default(); n];
    let cached_refs: Vec<Option<&CoarseFrame>> = cached_arcs.iter().map(|c| c.as_deref()).collect();
    // The fallible render: a GEMM miscompare or a tripped sentinel
    // surfaces here as `RenderError::Corrupt` — nothing downstream
    // (fulfill, cache anchoring) ever sees the poisoned output.
    let exports =
        renderer.try_render_frames_cached(&cameras, &cached_refs, &mut images, &mut stats)?;
    let finished = Instant::now();

    // Anchor fresh coarse passes, in admission order; the LRU tail is
    // evicted past the session's byte budget and counted. A cancelled
    // render anchors nothing: its coarse exports are as suspect as its
    // images (the token is sticky, so a fire during the render is
    // still visible here).
    for (((frame, state), export), outcome) in group.iter().zip(exports).zip(&outcomes) {
        if let Some(coarse) = export {
            if *outcome == CacheOutcome::Miss && !cancel.is_cancelled() {
                let evicted = state
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        CacheEntry {
                            pose: frame.pose,
                            tier: frame.tier,
                            coarse: Arc::new(coarse),
                        },
                        state.cfg.cache_budget_bytes,
                    );
                if evicted > 0 {
                    state.evictions.fetch_add(evicted, Ordering::Relaxed);
                    shared.cache_evictions.add(evicted);
                }
            }
        }
    }

    Ok(images
        .into_iter()
        .zip(stats)
        .zip(outcomes)
        .zip(group)
        .map(|(((image, stats), cache), (frame, _))| FrameResult {
            image,
            stats,
            serve: ServeStats {
                queue_wait: started.saturating_duration_since(frame.submitted),
                render_time: finished.saturating_duration_since(started),
                latency: finished.saturating_duration_since(frame.submitted),
                cache,
                batched_frames: n,
                shard,
                degraded: frame.degraded,
                tier: frame.tier,
            },
        })
        .collect())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "render panic".to_string()
    }
}
