//! One shard: a scheduler thread owning a scene's request queue, a
//! private render pool, and the fused batch execution path.
//!
//! The server routes every session of a scene to one shard (see
//! [`registry`](crate::registry)); the shard thread drains its bounded
//! queue through a [`FairQueue`] — class priority, round-robin across
//! sessions, FIFO per session — carves the largest batch of frames
//! that can legally share one fused render (same scene `Arc`, same
//! strategy, at most one frame of any cache-enabled session), and runs
//! it on the shard's own [`Pool`] slice of the server's thread budget.
//! A panic inside a render fails that batch's handles and leaves the
//! shard serving; nothing a frame does can take the server down.
//!
//! Supervision (PR 7) hardens the loop: every queued frame carries a
//! watchdog registration, a wall-clock deadline, and its scene's
//! circuit breaker. A render batch runs under a shared [`CancelToken`]
//! the watchdog fires when any batch member blows its budget — the
//! render unwinds cooperatively at the next chunk boundary (releasing
//! the Pool slice a `Fault::Stall` used to park forever) and the
//! surviving frames are re-rendered solo under the shard's
//! [`RetryPolicy`], bitwise identical to a clean render. Every frame's
//! final outcome (success, failure, timeout) is recorded into its
//! scene's breaker so repeated failures open the circuit at admission.
//!
//! Output integrity (PR 8) closes the remaining gap: batches render
//! through the pipeline's fallible API, so a GEMM checksum miscompare
//! or a tripped stage sentinel fails the batch with
//! [`RenderError::Corrupt`] *before* any pixel is published. A corrupt
//! batch is treated exactly like a transient panic — every member
//! re-renders solo under the retry policy, and the scene's breaker
//! sees the failure. Repeated GEMM miscompares while a SIMD kernel
//! backend is active quarantine that backend process-wide
//! ([`integrity::quarantine`]): all further math falls back to the
//! scalar kernels, which are bitwise-identical by the dispatch
//! contract. Cache anchors are digest-checked at import; a corrupted
//! anchor is discarded and counted as a miss instead of seeding a
//! fresh render with poisoned weights.

use crate::admission::{AdmissionStats, FairQueue};
use crate::server::{fulfill, fulfill_error, CacheOutcome, Fault, FrameResult, ServeStats, Slot};
use crate::session::{CacheEntry, DeadlineClass, ResolutionTier, SessionMap, SessionState};
use crate::supervisor::{CircuitBreaker, RetryPolicy, Supervisor};
use gen_nerf::config::SamplingStrategy;
use gen_nerf::pipeline::{self, CoarseFrame, RenderError, RenderStats, Renderer};
use gen_nerf_geometry::{Camera, Pose};
use gen_nerf_nn::kernels::{self, integrity, Backend};
use gen_nerf_parallel::{CancelToken, Pool};
use gen_nerf_scene::Image;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One admitted frame travelling from `submit` to its shard.
pub(crate) struct QueuedFrame {
    pub session: u64,
    pub pose: Pose,
    /// Tier actually rendered (admission may have degraded it).
    pub tier: ResolutionTier,
    pub deadline: DeadlineClass,
    /// Whether admission lowered the tier below the request.
    pub degraded: bool,
    pub reuse: Option<Image>,
    pub fault: Option<Fault>,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
    /// Wall-clock instant past which the watchdog resolves the handle
    /// with `TimedOut`; retries are never scheduled beyond it.
    pub deadline_at: Instant,
    /// This frame's registration with the server's [`Supervisor`].
    pub watch: u64,
    /// Whether the scene's circuit breaker admitted this frame as a
    /// HalfOpen probe (its outcome decides Closed vs back to Open).
    pub probe: bool,
    /// The scene's breaker — carried on the frame so outcome recording
    /// and probe-quota accounting survive session removal.
    pub breaker: Arc<CircuitBreaker>,
}

/// Counters and gauges shared between a shard's thread and the server
/// front end (admission reads the depth gauge, tests read the rest).
#[derive(Default)]
pub(crate) struct ShardShared {
    /// Frames admitted but not yet pulled into a render batch.
    pub depth: AtomicUsize,
    pub admitted: AtomicU64,
    pub degraded: AtomicU64,
    pub shed_best_effort: AtomicU64,
    pub shed_interactive: AtomicU64,
    /// Frames shed at submission because the scene's breaker was open.
    pub shed_circuit: AtomicU64,
    /// Frames whose handle resolved successfully.
    pub rendered: AtomicU64,
    /// Frames whose handle resolved with an error (render panic or
    /// vanished session).
    pub failed: AtomicU64,
    /// Individual re-render attempts after a transient failure.
    pub retries: AtomicU64,
    /// Fused render jobs executed.
    pub batches: AtomicU64,
    /// Render attempts that failed integrity verification (GEMM
    /// checksum miscompare or a tripped stage sentinel) and were never
    /// published.
    pub corrupt: AtomicU64,
    /// Times this shard latched the process-wide kernel quarantine
    /// (repeated SIMD miscompares demoting to the scalar backend).
    pub quarantined: AtomicU64,
}

impl ShardShared {
    pub(crate) fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed_best_effort: self.shed_best_effort.load(Ordering::Relaxed),
            shed_interactive: self.shed_interactive.load(Ordering::Relaxed),
            shed_circuit: self.shed_circuit.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one shard's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames admitted and still waiting in the shard queue.
    pub queued: usize,
    /// Admission counters (admitted / degraded / shed).
    pub admission: AdmissionStats,
    /// Frames rendered to completion.
    pub rendered_frames: u64,
    /// Frames resolved with an error.
    pub failed_frames: u64,
    /// Individual re-render attempts after a transient failure (panic,
    /// pool poison, or a batch-mate's timeout cancelling the batch).
    pub retries: u64,
    /// Fused render jobs executed (`rendered_frames / batches` is the
    /// shard's average batch occupancy).
    pub batches: u64,
    /// Render attempts caught by the integrity machinery (ABFT GEMM
    /// checksum or a stage sentinel) before any pixel was published.
    /// Each detection feeds the retry path, so a transient corruption
    /// shows up here *and* in `retries`, not in `failed_frames`.
    pub corrupt_renders: u64,
    /// Times this shard tripped the process-wide kernel quarantine,
    /// demoting the active SIMD backend to scalar for good.
    pub quarantine_events: u64,
    /// Persistent render workers owned by this shard.
    pub pool_threads: usize,
}

/// The server's handle on one shard: its submission channel, shared
/// counters, and the scheduler thread to join at shutdown.
pub(crate) struct Shard {
    pub tx: Option<Sender<QueuedFrame>>,
    pub shared: Arc<ShardShared>,
    pub pool_threads: usize,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Shard {
    /// Spawns shard `index` with `pool_threads` render workers,
    /// reporting frame lifecycles to `supervisor` and re-rendering
    /// transient failures under `retry`.
    pub(crate) fn spawn(
        index: usize,
        pool_threads: usize,
        max_batch: usize,
        sessions: SessionMap,
        supervisor: Arc<Supervisor>,
        retry: RetryPolicy,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<QueuedFrame>();
        let shared = Arc::new(ShardShared::default());
        let loop_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("gen-nerf-shard-{index}"))
            .spawn(move || {
                shard_loop(
                    index,
                    rx,
                    sessions,
                    loop_shared,
                    pool_threads,
                    max_batch,
                    supervisor,
                    retry,
                )
            })
            .expect("spawn shard thread");
        Self {
            tx: Some(tx),
            shared,
            pool_threads,
            worker: Some(worker),
        }
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            queued: self.shared.depth.load(Ordering::Relaxed),
            admission: self.shared.admission_stats(),
            rendered_frames: self.shared.rendered.load(Ordering::Relaxed),
            failed_frames: self.shared.failed.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            corrupt_renders: self.shared.corrupt.load(Ordering::Relaxed),
            quarantine_events: self.shared.quarantined.load(Ordering::Relaxed),
            pool_threads: self.pool_threads,
        }
    }

    /// Closes the queue (the shard drains, then exits) and joins the
    /// scheduler thread.
    pub(crate) fn shutdown(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cumulative GEMM-checksum miscompares observed under a SIMD backend,
/// across every shard in the process. The counter is process-wide on
/// purpose: quarantine is a verdict about the *hardware/kernel* pair,
/// not about any one scene's queue.
static SIMD_MISCOMPARES: AtomicU32 = AtomicU32::new(0);

/// Miscompares under a SIMD backend tolerated before that backend is
/// quarantined process-wide. One miscompare can be a stray bit flip;
/// a repeat offender is a broken unit.
const QUARANTINE_AFTER: u32 = 3;

/// Books one corrupt render attempt and applies the quarantine policy:
/// a GEMM-stage miscompare while a non-scalar backend is active counts
/// a strike against that backend, and strike `QUARANTINE_AFTER` latches
/// the process-wide quarantine (`kernels` demotes to scalar, sticky).
/// Sentinel trips never strike — a non-finite pixel indicts the math
/// upstream, not the SIMD unit specifically.
fn note_corrupt_render(err: &RenderError, shared: &ShardShared) {
    shared.corrupt.fetch_add(1, Ordering::Relaxed);
    let RenderError::Corrupt { stage, detail } = err;
    if *stage != "gemm" {
        return;
    }
    let backend = kernels::active_backend();
    if backend == Backend::Scalar {
        return;
    }
    let strikes = SIMD_MISCOMPARES.fetch_add(1, Ordering::Relaxed) + 1;
    if strikes >= QUARANTINE_AFTER && integrity::quarantine(backend) {
        shared.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "gen-nerf-serve: quarantined kernel backend {backend:?} after \
             {strikes} GEMM miscompares (last: {detail}); serving on scalar"
        );
    }
}

fn resolve(sessions: &SessionMap, id: u64) -> Option<Arc<SessionState>> {
    sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&id)
        .cloned()
}

/// Whether the coherence cache constrains batching for `state` (at
/// most one of its frames per fused job, so in-order cache updates are
/// a guarantee rather than a race).
fn cache_applies(state: &SessionState) -> bool {
    state.cfg.coherence.enabled
        && matches!(state.cfg.strategy, SamplingStrategy::CoarseThenFocus { .. })
}

/// Releases a frame that will never render: returns its breaker-probe
/// quota slot (if it held one) and detaches its watchdog registration.
/// Deliberately records **no** breaker outcome — a frame that timed
/// out while still queued, or whose session vanished, says nothing
/// about the scene's health.
fn release_unrendered(frame: &QueuedFrame, supervisor: &Supervisor) {
    if frame.probe {
        frame.breaker.abort_probe();
    }
    supervisor.resolve(frame.watch);
}

/// The shard event loop: block for one frame, drain the channel into
/// the fair queue, dequeue the policy-ordered head, grow the largest
/// compatible batch around it, render, repeat. Exits when the channel
/// closes *and* every admitted frame is resolved.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    index: usize,
    rx: Receiver<QueuedFrame>,
    sessions: SessionMap,
    shared: Arc<ShardShared>,
    pool_threads: usize,
    max_batch: usize,
    supervisor: Arc<Supervisor>,
    retry: RetryPolicy,
) {
    let pool = Pool::new(pool_threads.max(1));
    let max_batch = max_batch.max(1);
    let mut queue: FairQueue<QueuedFrame> = FairQueue::new();
    let mut open = true;
    while open || !queue.is_empty() {
        if queue.is_empty() {
            match rx.recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        while open {
            match rx.try_recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }

        // Policy-ordered head. A frame leaves the admission depth
        // gauge the moment it is pulled out of the queue.
        let Some(head) = queue.pop() else { continue };
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        if head.slot.is_resolved() {
            // Timed out while still queued (the watchdog already
            // resolved the handle): skip the render entirely.
            release_unrendered(&head, &supervisor);
            continue;
        }
        let Some(head_state) = resolve(&sessions, head.session) else {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            if !fulfill_error(&head.slot, "session removed with frames queued") {
                shared.failed.fetch_sub(1, Ordering::Relaxed);
            }
            release_unrendered(&head, &supervisor);
            continue;
        };

        // Grow the batch: only lane heads compatible with the batch
        // head ride along (dead sessions and already-resolved frames
        // are popped so they don't park their lane forever).
        let mut cache_sessions: Vec<u64> = Vec::new();
        if cache_applies(&head_state) {
            cache_sessions.push(head.session);
        }
        let mut group: Vec<(QueuedFrame, Arc<SessionState>)> = vec![(head, head_state)];
        while group.len() < max_batch {
            let head_scene = Arc::clone(&group[0].1.scene);
            let head_strategy = group[0].1.cfg.strategy;
            let candidate = queue.pop_next(|frame| {
                if frame.slot.is_resolved() {
                    return true;
                }
                match resolve(&sessions, frame.session) {
                    // Pop dead-session frames so they fail instead of
                    // parking their lane forever.
                    None => true,
                    Some(state) => {
                        Arc::ptr_eq(&state.scene, &head_scene)
                            && state.cfg.strategy == head_strategy
                            && !(cache_applies(&state) && cache_sessions.contains(&frame.session))
                    }
                }
            });
            let Some(frame) = candidate else { break };
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            if frame.slot.is_resolved() {
                release_unrendered(&frame, &supervisor);
                continue;
            }
            match resolve(&sessions, frame.session) {
                None => {
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    if !fulfill_error(&frame.slot, "session removed with frames queued") {
                        shared.failed.fetch_sub(1, Ordering::Relaxed);
                    }
                    release_unrendered(&frame, &supervisor);
                }
                Some(state) => {
                    if cache_applies(&state) {
                        cache_sessions.push(frame.session);
                    }
                    group.push((frame, state));
                }
            }
        }
        execute_group(index, &pool, group, &shared, &supervisor, retry);
    }
}

/// Renders one admission batch as a single fused multi-frame job and
/// fulfills its handles. A panic anywhere in the render — or a
/// watchdog cancellation fired by any batch member's deadline — fails
/// over to per-frame [`retry_frame`] recovery instead of killing the
/// shard; every frame's final outcome is recorded into its scene's
/// circuit breaker exactly once.
fn execute_group(
    shard: usize,
    pool: &Pool,
    mut group: Vec<(QueuedFrame, Arc<SessionState>)>,
    shared: &ShardShared,
    supervisor: &Supervisor,
    retry: RetryPolicy,
) {
    shared.batches.fetch_add(1, Ordering::Relaxed);
    // Take the recycled buffers out of the requests up front: they are
    // moved (not cloned) into the render and returned in the results.
    let buffers: Vec<Option<Image>> = group
        .iter_mut()
        .map(|(frame, _)| frame.reuse.take())
        .collect();
    // One token guards the whole fused job: the watchdog fires it when
    // *any* member blows its budget, and the render unwinds at the
    // next chunk boundary.
    let cancel = CancelToken::new();
    for (frame, _) in &group {
        supervisor.begin_render(frame.watch, &cancel);
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        render_group(shard, pool, &group, buffers, &cancel, 0)
    }));
    let first_error = match outcome {
        Ok(Ok(results)) => {
            if !cancel.is_cancelled() {
                for ((frame, _), result) in group.into_iter().zip(results) {
                    conclude(frame, Ok(result), shared, supervisor);
                }
                return;
            }
            // A cancelled batch renders its remaining rays as
            // background: every member's output is suspect, so none
            // may be fulfilled. Unresolved members re-render solo.
            "render cancelled by a timed-out batch member".to_string()
        }
        // Integrity verification failed: the batch's pixels were never
        // published and every member is retryable, exactly like a
        // panic — corruption is transient until quarantine says
        // otherwise.
        Ok(Err(err)) => {
            note_corrupt_render(&err, shared);
            err.to_string()
        }
        Err(payload) => panic_message(payload.as_ref()),
    };
    for (frame, state) in group {
        retry_frame(
            shard,
            pool,
            frame,
            state,
            shared,
            supervisor,
            retry,
            first_error.clone(),
        );
    }
}

/// Resolves one frame's final outcome: records the outcome into the
/// scene's breaker, fulfills the handle (unless the watchdog got there
/// first — `fulfill` is first-write-wins), and detaches the watch.
fn conclude(
    frame: QueuedFrame,
    outcome: Result<FrameResult, String>,
    shared: &ShardShared,
    supervisor: &Supervisor,
) {
    // The breaker and the counters move *before* the fulfill so a
    // waiter that wakes on the handle already sees them. The breaker
    // takes the render's true outcome even when the watchdog wins the
    // fulfill race — the frame blew its budget, but the scene itself
    // rendered, and the breaker gauges scene health, not deadline
    // pressure. (Stall-sick scenes still record failures: their
    // cancelled renders resolve through the retry path instead.)
    let ok = outcome.is_ok();
    frame.breaker.record(ok, frame.probe, Instant::now());
    match outcome {
        Ok(result) => {
            shared.rendered.fetch_add(1, Ordering::Relaxed);
            if !fulfill(&frame.slot, Ok(result)) {
                shared.rendered.fetch_sub(1, Ordering::Relaxed);
            }
        }
        Err(message) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            if !fulfill_error(&frame.slot, &message) {
                shared.failed.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
    supervisor.resolve(frame.watch);
}

/// Re-renders one frame solo after a transient batch failure (panic,
/// pool poison, or a batch-mate's timeout): bounded attempts with
/// exponential backoff, never scheduled past the frame's deadline.
/// The kernel batch-independence contract makes a successful retry
/// bitwise identical to the original batched render.
#[allow(clippy::too_many_arguments)]
fn retry_frame(
    shard: usize,
    pool: &Pool,
    frame: QueuedFrame,
    state: Arc<SessionState>,
    shared: &ShardShared,
    supervisor: &Supervisor,
    retry: RetryPolicy,
    mut last_error: String,
) {
    let pair = (frame, state);
    for attempt in 1..retry.max_attempts.max(1) {
        if pair.0.slot.is_resolved() {
            // The watchdog timed this frame out: its budget is spent,
            // which is a scene failure even without a fresh attempt.
            let (frame, _) = pair;
            frame.breaker.record(false, frame.probe, Instant::now());
            supervisor.resolve(frame.watch);
            return;
        }
        let backoff = retry.backoff(attempt);
        if Instant::now() + backoff >= pair.0.deadline_at {
            // A retry that lands past the deadline is wasted work: the
            // watchdog would discard it anyway.
            break;
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        shared.retries.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        supervisor.begin_render(pair.0.watch, &cancel);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            render_group(
                shard,
                pool,
                std::slice::from_ref(&pair),
                vec![None],
                &cancel,
                attempt,
            )
        }));
        match outcome {
            Ok(Ok(mut results)) if !cancel.is_cancelled() => {
                let result = results.pop().expect("one frame in, one result out");
                conclude(pair.0, Ok(result), shared, supervisor);
                return;
            }
            // Cancelled mid-retry: the top-of-loop check (or the
            // exhausted path below) observes the resolved slot.
            Ok(Ok(_)) => {}
            // The retry itself produced corrupt output — book it and
            // keep retrying (quarantine may demote the backend between
            // attempts, which is exactly the recovery path).
            Ok(Err(err)) => {
                note_corrupt_render(&err, shared);
                last_error = err.to_string();
            }
            Err(payload) => last_error = panic_message(payload.as_ref()),
        }
    }
    // Attempts or wall-clock budget exhausted. `fulfill_error` loses
    // (returns false) if the watchdog already resolved the handle.
    let (frame, _) = pair;
    frame.breaker.record(false, frame.probe, Instant::now());
    shared.failed.fetch_add(1, Ordering::Relaxed);
    if !fulfill_error(&frame.slot, &last_error) {
        shared.failed.fetch_sub(1, Ordering::Relaxed);
    }
    supervisor.resolve(frame.watch);
}

/// Sleeps `total` in small slices, returning early the moment `cancel`
/// fires — a stalled worker yields its slot within ~5 ms of the
/// watchdog's verdict instead of parking for the full stall.
fn cancellable_sleep(total: Duration, cancel: &CancelToken) {
    let deadline = Instant::now() + total;
    while !cancel.is_cancelled() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
}

/// The render half of [`execute_group`]: cache lookups, one fused
/// multi-frame render, cache updates. `group` frames share one scene
/// and strategy (batch carving guarantees it). `attempt` is 0 for the
/// first (batched) render and counts up through retries — transient
/// injected faults consult it via [`Fault::fires`]. When `cancel`
/// fires mid-render the returned images are garbage (remaining rays
/// render as background) and the caller must not fulfill them; cache
/// anchors are likewise withheld.
fn render_group(
    shard: usize,
    pool: &Pool,
    group: &[(QueuedFrame, Arc<SessionState>)],
    buffers: Vec<Option<Image>>,
    cancel: &CancelToken,
    attempt: u32,
) -> Result<Vec<FrameResult>, RenderError> {
    let started = Instant::now();
    let n = group.len();
    let scene = &group[0].1.scene;
    let strategy = group[0].1.cfg.strategy;
    let is_ctf = matches!(strategy, SamplingStrategy::CoarseThenFocus { .. });

    // Injected faults fire inside the batch's unwind boundary, exactly
    // where a real mid-frame failure would: after admission, before
    // the frame resolves. The corruption family arms the pipeline's
    // chaos hooks — a supra-tolerance GEMM perturbation or a poisoned
    // pixel — which the integrity machinery must then catch.
    for (frame, _) in group {
        let Some(fault) = frame.fault else { continue };
        if !fault.fires(attempt) {
            continue;
        }
        match fault {
            Fault::Stall(delay) => cancellable_sleep(delay, cancel),
            Fault::Panic | Fault::PanicOnce => panic!("injected render fault"),
            Fault::CorruptGemm(seed) => integrity::arm_corruption(seed),
            Fault::CorruptPixels(seed) => pipeline::arm_pixel_corruption(seed),
            // Fired below, against the session's cache under its lock.
            Fault::CorruptAnchor(_) => {}
        }
    }

    // Cache lookups resolve against each session's anchors *before*
    // the job, so a batch behaves exactly like the same frames served
    // one at a time in admission order. Imports are validated: an
    // anchor whose digest or ray count no longer checks out is
    // discarded and the lookup counts as a miss.
    let mut cameras: Vec<Camera> = Vec::with_capacity(n);
    let mut cached_arcs: Vec<Option<Arc<CoarseFrame>>> = Vec::with_capacity(n);
    let mut outcomes: Vec<CacheOutcome> = Vec::with_capacity(n);
    for (frame, state) in group {
        let intrinsics = frame.tier.apply(state.cfg.intrinsics);
        let expected_rays = intrinsics.width as usize * intrinsics.height as usize;
        cameras.push(Camera::new(intrinsics, frame.pose));
        if !is_ctf || !state.cfg.coherence.enabled {
            state.bypasses.fetch_add(1, Ordering::Relaxed);
            cached_arcs.push(None);
            outcomes.push(CacheOutcome::Bypass);
            continue;
        }
        let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(fault @ Fault::CorruptAnchor(seed)) = frame.fault {
            if fault.fires(attempt) {
                cache.corrupt_for_chaos(seed);
            }
        }
        match cache.lookup(frame.tier, &frame.pose, &state.cfg.coherence, expected_rays) {
            Some(coarse) => {
                state.hits.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(Some(coarse));
                outcomes.push(CacheOutcome::Hit);
            }
            None => {
                state.misses.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(None);
                outcomes.push(CacheOutcome::Miss);
            }
        }
    }

    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .with_threads(pool.threads())
    .with_pool(pool)
    .with_cancel(cancel);

    let mut images: Vec<Image> = buffers
        .into_iter()
        .map(|buf| buf.unwrap_or_else(|| Image::new(0, 0)))
        .collect();
    let mut stats = vec![RenderStats::default(); n];
    let cached_refs: Vec<Option<&CoarseFrame>> = cached_arcs.iter().map(|c| c.as_deref()).collect();
    // The fallible render: a GEMM miscompare or a tripped sentinel
    // surfaces here as `RenderError::Corrupt` — nothing downstream
    // (fulfill, cache anchoring) ever sees the poisoned output.
    let exports =
        renderer.try_render_frames_cached(&cameras, &cached_refs, &mut images, &mut stats)?;
    let finished = Instant::now();

    // Anchor fresh coarse passes, in admission order; the LRU tail is
    // evicted past the session's byte budget and counted. A cancelled
    // render anchors nothing: its coarse exports are as suspect as its
    // images (the token is sticky, so a fire during the render is
    // still visible here).
    for (((frame, state), export), outcome) in group.iter().zip(exports).zip(&outcomes) {
        if let Some(coarse) = export {
            if *outcome == CacheOutcome::Miss && !cancel.is_cancelled() {
                let evicted = state
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        CacheEntry {
                            pose: frame.pose,
                            tier: frame.tier,
                            coarse: Arc::new(coarse),
                        },
                        state.cfg.cache_budget_bytes,
                    );
                if evicted > 0 {
                    state.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
    }

    Ok(images
        .into_iter()
        .zip(stats)
        .zip(outcomes)
        .zip(group)
        .map(|(((image, stats), cache), (frame, _))| FrameResult {
            image,
            stats,
            serve: ServeStats {
                queue_wait: started.saturating_duration_since(frame.submitted),
                render_time: finished.saturating_duration_since(started),
                latency: finished.saturating_duration_since(frame.submitted),
                cache,
                batched_frames: n,
                shard,
                degraded: frame.degraded,
                tier: frame.tier,
            },
        })
        .collect())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "render panic".to_string()
    }
}
