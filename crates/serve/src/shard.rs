//! One shard: a scheduler thread owning a scene's request queue, a
//! private render pool, and the fused batch execution path.
//!
//! The server routes every session of a scene to one shard (see
//! [`registry`](crate::registry)); the shard thread drains its bounded
//! queue through a [`FairQueue`] — class priority, round-robin across
//! sessions, FIFO per session — carves the largest batch of frames
//! that can legally share one fused render (same scene `Arc`, same
//! strategy, at most one frame of any cache-enabled session), and runs
//! it on the shard's own [`Pool`] slice of the server's thread budget.
//! A panic inside a render fails that batch's handles and leaves the
//! shard serving; nothing a frame does can take the server down.
//!
//! Supervision (PR 7) hardens the loop: every queued frame carries a
//! watchdog registration, a wall-clock deadline, and its scene's
//! circuit breaker. A render batch runs under a shared [`CancelToken`]
//! the watchdog fires when any batch member blows its budget — the
//! render unwinds cooperatively at the next chunk boundary (releasing
//! the Pool slice a `Fault::Stall` used to park forever) and the
//! surviving frames are re-rendered solo under the shard's
//! [`RetryPolicy`], bitwise identical to a clean render. Every frame's
//! final outcome (success, failure, timeout) is recorded into its
//! scene's breaker so repeated failures open the circuit at admission.
//!
//! Output integrity (PR 8) closes the next gap: batches render through
//! the pipeline's fallible API, so a GEMM checksum miscompare or a
//! tripped stage sentinel fails the batch with
//! [`RenderError::Corrupt`] *before* any pixel is published. A corrupt
//! batch is treated exactly like a transient panic — every member
//! re-renders solo under the retry policy, and the scene's breaker
//! sees the failure. Repeated GEMM miscompares while a SIMD kernel
//! backend is active quarantine that backend process-wide
//! ([`integrity::quarantine`]): all further math falls back to the
//! scalar kernels, which are bitwise-identical by the dispatch
//! contract. Cache anchors are digest-checked at import; a corrupted
//! anchor is discarded and counted as a miss instead of seeding a
//! fresh render with poisoned weights.
//!
//! Self-healing (this PR) makes the scheduler thread itself
//! replaceable. The queue moved out of the thread into a shared
//! control block ([`ShardCtl`]): the worker *incarnation* popping from
//! it publishes a [`Heartbeat`] on every wakeup and batch boundary,
//! and the supervisor's health sweep ([`Shard::sweep`]) classifies the
//! shard Healthy / Wedged / Dead. A condemned incarnation is
//! invalidated (the incarnation counter in the queue state bumps, so
//! the old loop exits at its next queue observation instead of racing
//! its replacement), its in-flight batch is cancelled, queued frames
//! are requeued FIFO-preserving, and a fresh worker spawns under an
//! exponential per-shard restart budget. Past the budget the shard is
//! declared down: queued frames fail with
//! [`ServeError::ShardDown`](crate::ServeError::ShardDown) and further
//! submissions shed at admission. Session caches live in
//! [`SessionState`], not in the worker, so they survive restarts; the
//! worker's coarse-anchor inserts are charged against the server's
//! process-wide [`MemoryGovernor`] *before* insertion, so the global
//! byte budget holds even across a restart storm re-anchoring caches.

use crate::admission::{AdmissionStats, FairQueue};
use crate::governor::MemoryGovernor;
use crate::health::{CondemnReason, HealthConfig, Heartbeat, ShardHealth, ShardHealthStats};
use crate::server::{
    fulfill, fulfill_error, CacheOutcome, Fault, FrameResult, ServeError, ServeStats, Slot,
};
use crate::session::{
    coarse_entry_cost, CacheEntry, DeadlineClass, PendingGuard, ResolutionTier, SessionMap,
    SessionState,
};
use crate::supervisor::{CircuitBreaker, RetryPolicy, Supervisor};
use gen_nerf::config::SamplingStrategy;
use gen_nerf::pipeline::{self, CoarseFrame, RenderError, RenderStats, Renderer};
use gen_nerf_geometry::{Camera, Pose};
use gen_nerf_nn::kernels::{self, integrity, Backend};
use gen_nerf_parallel::{CancelToken, Pool};
use gen_nerf_scene::Image;
use gen_nerf_telemetry::{
    Counter, EventKind, Gauge, Histogram, ResolveOutcome, TraceRing, DEFAULT_RING_CAPACITY,
};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fixed per-worker arena reservation charged against the process-wide
/// memory governor when a shard spawns: scratch buffers, per-thread
/// render state. Reserved once per shard (not per incarnation — a
/// respawned worker reuses the same slice of the budget).
pub(crate) const ARENA_BYTES_PER_WORKER: u64 = 1 << 20;

/// One admitted frame travelling from `submit` to its shard.
pub(crate) struct QueuedFrame {
    /// Frame-trace id ([`gen_nerf_telemetry::next_frame_id`]) — keys
    /// every [`gen_nerf_telemetry::TraceEvent`] of this frame's life.
    pub frame: u64,
    pub session: u64,
    pub pose: Pose,
    /// Tier actually rendered (admission may have degraded it).
    pub tier: ResolutionTier,
    pub deadline: DeadlineClass,
    /// Whether admission lowered the tier below the request.
    pub degraded: bool,
    pub reuse: Option<Image>,
    pub fault: Option<Fault>,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
    /// Wall-clock instant past which the watchdog resolves the handle
    /// with `TimedOut`; retries are never scheduled beyond it.
    pub deadline_at: Instant,
    /// This frame's registration with the server's [`Supervisor`].
    pub watch: u64,
    /// Whether the scene's circuit breaker admitted this frame as a
    /// HalfOpen probe (its outcome decides Closed vs back to Open).
    pub probe: bool,
    /// The scene's breaker — carried on the frame so outcome recording
    /// and probe-quota accounting survive session removal.
    pub breaker: Arc<CircuitBreaker>,
    /// RAII claim on the session's pending-frame counter: dropped
    /// wherever the frame is — resolved, failed, requeued-then-settled
    /// — so `remove_session` can wait for true quiescence. Never read;
    /// its `Drop` is the point.
    #[allow(dead_code)]
    pub pending: PendingGuard,
}

/// The queue half of a shard's shared control block, under one lock:
/// the fair queue itself, the close latch, and the worker incarnation
/// counter that invalidates condemned loops.
pub(crate) struct QueueState {
    pub q: FairQueue<QueuedFrame>,
    /// Set at shutdown: the worker drains what is queued and exits.
    pub closed: bool,
    /// Bumped by every condemnation. A worker loop captures the value
    /// it was spawned at and exits as soon as the shared value moved —
    /// the fence that keeps a condemned incarnation from racing its
    /// replacement for the queue.
    pub incarnation: u64,
}

/// A shard's shared control block: everything the server front end,
/// the health sweep, and the worker incarnation(s) coordinate through.
/// Lives in an `Arc` so a restart replaces the thread, never the
/// state.
pub(crate) struct ShardCtl {
    pub queue: Mutex<QueueState>,
    /// Signals the worker: new frame, close, or incarnation bump.
    pub ready: Condvar,
    /// The worker's progress beacon the health sweep reads.
    pub heartbeat: Heartbeat,
    /// Frames popped from the queue and not yet settled by the current
    /// batch (the sweep's "work pending" signal alongside queue depth).
    pub inflight: AtomicU64,
    /// Consecutive render attempts that panicked or failed integrity;
    /// cleared by any clean render. Crossing
    /// [`HealthConfig::pool_respawn_after`] respawns the pool workers
    /// in place; crossing [`HealthConfig::pool_condemn_after`]
    /// condemns the whole shard.
    pub poison_streak: AtomicU32,
    /// Latched when the restart budget is exhausted: submissions shed
    /// with [`ServeError::ShardDown`], queued frames fail.
    pub down: AtomicBool,
    /// The cancel token of the batch currently rendering, for the
    /// sweep (condemnation) and `drain` to fire from outside the
    /// worker thread.
    pub current_cancel: Mutex<Option<CancelToken>>,
    /// The server's process-wide memory governor (anchor inserts are
    /// charged before insertion).
    pub governor: Arc<MemoryGovernor>,
}

impl ShardCtl {
    /// Frames admitted and still waiting in the queue.
    pub(crate) fn queued(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).q.len()
    }

    /// Publishes worker progress (and counts the beat).
    fn beat(&self, shared: &ShardShared, now: Instant) {
        self.heartbeat.beat(now);
        shared.heartbeats.inc();
    }
}

/// Counters and gauges shared between a shard's thread and the server
/// front end (admission reads the depth gauge, tests read the rest).
///
/// Every handle is a metric in the process-global telemetry registry,
/// labelled `{instance, shard}` — the same atomics back both the
/// exact-count stats views (read through the handles) and any snapshot
/// fold, so there is no parallel bookkeeping to drift.
pub(crate) struct ShardShared {
    /// Frames admitted but not yet pulled into a render batch
    /// (`serve_queue_depth`; SeqCst, the admission policy reads it).
    pub depth: Gauge,
    /// Every frame that entered `submit` for this shard, whatever its
    /// fate (`serve_frames_submitted_total`).
    pub submitted: Counter,
    pub admitted: Counter,
    pub degraded: Counter,
    pub shed_best_effort: Counter,
    pub shed_interactive: Counter,
    /// Frames shed at submission because the scene's breaker was open.
    pub shed_circuit: Counter,
    /// Frames shed at submission because the server was draining.
    pub shed_draining: Counter,
    /// Frames shed at submission because this shard exhausted its
    /// restart budget and was declared down.
    pub shed_shard_down: Counter,
    /// BestEffort frames shed at submission by the memory governor's
    /// pressure hook.
    pub shed_memory: Counter,
    /// Frames whose handle resolved successfully.
    pub rendered: Counter,
    /// Frames whose handle resolved with an error (render panic or
    /// vanished session).
    pub failed: Counter,
    /// Individual re-render attempts after a transient failure.
    pub retries: Counter,
    /// Fused render jobs executed.
    pub batches: Counter,
    /// Render attempts that failed integrity verification (GEMM
    /// checksum miscompare or a tripped stage sentinel) and were never
    /// published.
    pub corrupt: Counter,
    /// Times this shard latched the process-wide kernel quarantine
    /// (repeated SIMD miscompares demoting to the scalar backend).
    pub quarantined: Counter,
    /// Heartbeats published by this shard's worker
    /// (`serve_heartbeats_total`).
    pub heartbeats: Counter,
    /// Worker restarts performed (`serve_shard_restarts_total`).
    pub restarts: Counter,
    /// Condemnations by reason
    /// (`serve_shard_condemned_total{reason}`).
    pub condemned_wedged: Counter,
    pub condemned_dead: Counter,
    pub condemned_poisoned: Counter,
    /// Frames put back in the queue across a restart or a shard-level
    /// fault (`serve_requeued_frames_total`).
    pub requeued: Counter,
    /// Frames force-failed at a drain deadline
    /// (`serve_drain_forced_total`).
    pub drain_forced: Counter,
    /// Submit→resolve latency of successfully rendered frames, per
    /// deadline class (`serve_latency_ns`).
    pub latency_interactive: Histogram,
    pub latency_best_effort: Histogram,
    /// Coarse-cache outcomes served by this shard
    /// (`serve_cache_events_total{outcome}`) — the instance-level view
    /// of the per-session [`CacheStats`](crate::CacheStats) counters.
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_bypasses: Counter,
    pub cache_evictions: Counter,
    pub cache_rejects: Counter,
    /// This shard's frame-lifecycle event ring.
    pub ring: Arc<TraceRing>,
}

impl ShardShared {
    /// Registers this shard's metric set under `{instance, shard}`.
    pub(crate) fn new(instance: u64, shard: usize) -> Self {
        let inst = instance.to_string();
        let idx = shard.to_string();
        let labels: [(&'static str, &str); 2] = [("instance", &inst), ("shard", &idx)];
        let counter = |name: &'static str| gen_nerf_telemetry::counter(name, &labels);
        let shed = |reason: &str| {
            gen_nerf_telemetry::counter(
                "serve_frames_shed_total",
                &[("instance", &inst), ("shard", &idx), ("reason", reason)],
            )
        };
        let condemned = |reason: &str| {
            gen_nerf_telemetry::counter(
                "serve_shard_condemned_total",
                &[("instance", &inst), ("shard", &idx), ("reason", reason)],
            )
        };
        let latency = |class: &str| {
            gen_nerf_telemetry::histogram(
                "serve_latency_ns",
                &[("instance", &inst), ("shard", &idx), ("class", class)],
            )
        };
        let cache = |outcome: &str| {
            gen_nerf_telemetry::counter(
                "serve_cache_events_total",
                &[("instance", &inst), ("shard", &idx), ("outcome", outcome)],
            )
        };
        Self {
            depth: gen_nerf_telemetry::gauge("serve_queue_depth", &labels),
            submitted: counter("serve_frames_submitted_total"),
            admitted: counter("serve_frames_admitted_total"),
            degraded: counter("serve_frames_degraded_total"),
            shed_best_effort: shed("best_effort"),
            shed_interactive: shed("interactive"),
            shed_circuit: shed("circuit"),
            shed_draining: shed("draining"),
            shed_shard_down: shed("shard_down"),
            shed_memory: shed("memory"),
            rendered: counter("serve_frames_rendered_total"),
            failed: counter("serve_frames_failed_total"),
            retries: counter("serve_retries_total"),
            batches: counter("serve_batches_total"),
            corrupt: counter("serve_corrupt_renders_total"),
            quarantined: counter("serve_quarantine_events_total"),
            heartbeats: counter("serve_heartbeats_total"),
            restarts: counter("serve_shard_restarts_total"),
            condemned_wedged: condemned("wedged"),
            condemned_dead: condemned("dead"),
            condemned_poisoned: condemned("poisoned"),
            requeued: counter("serve_requeued_frames_total"),
            drain_forced: counter("serve_drain_forced_total"),
            latency_interactive: latency("interactive"),
            latency_best_effort: latency("best_effort"),
            cache_hits: cache("hit"),
            cache_misses: cache("miss"),
            cache_bypasses: cache("bypass"),
            cache_evictions: cache("eviction"),
            cache_rejects: cache("integrity_reject"),
            ring: Arc::new(TraceRing::new(DEFAULT_RING_CAPACITY)),
        }
    }

    pub(crate) fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.get(),
            degraded: self.degraded.get(),
            shed_best_effort: self.shed_best_effort.get(),
            shed_interactive: self.shed_interactive.get(),
            shed_circuit: self.shed_circuit.get(),
        }
    }

    /// The latency histogram of `class`.
    fn latency(&self, class: DeadlineClass) -> Histogram {
        match class {
            DeadlineClass::Interactive => self.latency_interactive,
            DeadlineClass::BestEffort => self.latency_best_effort,
        }
    }
}

/// A point-in-time snapshot of one shard's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames admitted and still waiting in the shard queue.
    pub queued: usize,
    /// Admission counters (admitted / degraded / shed).
    pub admission: AdmissionStats,
    /// Frames rendered to completion.
    pub rendered_frames: u64,
    /// Frames resolved with an error.
    pub failed_frames: u64,
    /// Individual re-render attempts after a transient failure (panic,
    /// pool poison, or a batch-mate's timeout cancelling the batch).
    pub retries: u64,
    /// Fused render jobs executed (`rendered_frames / batches` is the
    /// shard's average batch occupancy).
    pub batches: u64,
    /// Render attempts caught by the integrity machinery (ABFT GEMM
    /// checksum or a stage sentinel) before any pixel was published.
    /// Each detection feeds the retry path, so a transient corruption
    /// shows up here *and* in `retries`, not in `failed_frames`.
    pub corrupt_renders: u64,
    /// Times this shard tripped the process-wide kernel quarantine,
    /// demoting the active SIMD backend to scalar for good.
    pub quarantine_events: u64,
    /// Persistent render workers owned by this shard.
    pub pool_threads: usize,
}

/// The server's handle on one shard: the shared control block, shared
/// counters, the live worker incarnation, and the restart ledger the
/// health sweep mutates.
pub(crate) struct Shard {
    pub shared: Arc<ShardShared>,
    pub ctl: Arc<ShardCtl>,
    pub pool_threads: usize,
    index: usize,
    max_batch: usize,
    retry: RetryPolicy,
    health: HealthConfig,
    sessions: SessionMap,
    supervisor: Arc<Supervisor>,
    /// The current worker incarnation's thread.
    worker: Option<std::thread::JoinHandle<()>>,
    /// Condemned-but-unfinished incarnations (e.g. wedged in an
    /// uncancellable sleep). Joined at shutdown *before* the live
    /// worker, so a late requeue still lands in a served queue.
    graveyard: Vec<std::thread::JoinHandle<()>>,
    /// Lifetime restart count.
    restarts: u64,
    /// Restarts since the last successfully rendered frame.
    consecutive_restarts: u32,
    /// `rendered` counter at the last condemnation — progress beyond
    /// it proves the restart took and resets the give-up counter.
    rendered_at_condemn: u64,
    /// When the pending (backed-off) respawn is due.
    respawn_at: Option<Instant>,
}

impl Shard {
    /// Spawns shard `index` of server `instance` with `pool_threads`
    /// render workers, reporting frame lifecycles to `supervisor`,
    /// re-rendering transient failures under `retry`, and healing
    /// under `health`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        instance: u64,
        index: usize,
        pool_threads: usize,
        max_batch: usize,
        sessions: SessionMap,
        supervisor: Arc<Supervisor>,
        retry: RetryPolicy,
        health: HealthConfig,
        governor: Arc<MemoryGovernor>,
    ) -> Self {
        let shared = Arc::new(ShardShared::new(instance, index));
        let now = supervisor.clock().now();
        let ctl = Arc::new(ShardCtl {
            queue: Mutex::new(QueueState {
                q: FairQueue::new(),
                closed: false,
                incarnation: 0,
            }),
            ready: Condvar::new(),
            heartbeat: Heartbeat::new(now),
            inflight: AtomicU64::new(0),
            poison_streak: AtomicU32::new(0),
            down: AtomicBool::new(false),
            current_cancel: Mutex::new(None),
            governor,
        });
        // Born alive: the first sweep must not find a zero-aged shard
        // stale.
        ctl.beat(&shared, now);
        ctl.governor
            .reserve(pool_threads.max(1) as u64 * ARENA_BYTES_PER_WORKER);
        let worker = Self::spawn_worker(
            index,
            0,
            &ctl,
            &sessions,
            &shared,
            pool_threads,
            max_batch,
            &supervisor,
            retry,
            health,
        );
        Self {
            shared,
            ctl,
            pool_threads,
            index,
            max_batch,
            retry,
            health,
            sessions,
            supervisor,
            worker: Some(worker),
            graveyard: Vec::new(),
            restarts: 0,
            consecutive_restarts: 0,
            rendered_at_condemn: 0,
            respawn_at: None,
        }
    }

    /// Spawns one worker incarnation bound to `incarnation`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_worker(
        index: usize,
        incarnation: u64,
        ctl: &Arc<ShardCtl>,
        sessions: &SessionMap,
        shared: &Arc<ShardShared>,
        pool_threads: usize,
        max_batch: usize,
        supervisor: &Arc<Supervisor>,
        retry: RetryPolicy,
        health: HealthConfig,
    ) -> std::thread::JoinHandle<()> {
        let ctl = Arc::clone(ctl);
        let sessions = Arc::clone(sessions);
        let shared = Arc::clone(shared);
        let supervisor = Arc::clone(supervisor);
        std::thread::Builder::new()
            .name(format!("gen-nerf-shard-{index}-i{incarnation}"))
            .spawn(move || {
                shard_loop(
                    index,
                    incarnation,
                    ctl,
                    sessions,
                    shared,
                    pool_threads,
                    max_batch,
                    supervisor,
                    retry,
                    health,
                )
            })
            .expect("spawn shard thread")
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            queued: self.shared.depth.get().max(0) as usize,
            admission: self.shared.admission_stats(),
            rendered_frames: self.shared.rendered.get(),
            failed_frames: self.shared.failed.get(),
            retries: self.shared.retries.get(),
            batches: self.shared.batches.get(),
            corrupt_renders: self.shared.corrupt.get(),
            quarantine_events: self.shared.quarantined.get(),
            pool_threads: self.pool_threads,
        }
    }

    /// One pass of the health sweep, on the supervisor's clock. Runs
    /// on the watchdog thread, under the server's topology lock.
    pub(crate) fn sweep(&mut self, now: Instant) {
        if self.ctl.down.load(Ordering::Relaxed) {
            // Down for good — but a wedged old incarnation may still
            // requeue its frame after the give-up drain; fail such
            // stragglers instead of stranding them.
            if self.ctl.queued() > 0 {
                self.fail_queue_shard_down(now);
            }
            return;
        }
        // Any rendered frame since the last condemnation proves the
        // current incarnation makes progress: give-up counter resets.
        if self.consecutive_restarts > 0 && self.shared.rendered.get() > self.rendered_at_condemn {
            self.consecutive_restarts = 0;
        }
        if let Some(at) = self.respawn_at {
            // Condemned, backing off: no fresh verdicts until the
            // replacement is running.
            if now >= at {
                self.respawn_at = None;
                self.respawn(now);
            }
            return;
        }
        if let Some(reason) = self.verdict(now) {
            self.condemn(reason, now);
        }
    }

    /// Classifies the live worker at `now`.
    fn verdict(&self, now: Instant) -> Option<CondemnReason> {
        let (queued, closed) = {
            let qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            (qs.q.len(), qs.closed)
        };
        if !closed {
            if let Some(worker) = &self.worker {
                if worker.is_finished() {
                    return Some(CondemnReason::Dead);
                }
            }
        }
        if self.ctl.poison_streak.load(Ordering::Relaxed) >= self.health.pool_condemn_after {
            return Some(CondemnReason::Poisoned);
        }
        let busy = queued > 0 || self.ctl.inflight.load(Ordering::SeqCst) > 0;
        if busy && self.ctl.heartbeat.age(now) > self.health.heartbeat_budget {
            return Some(CondemnReason::Wedged);
        }
        None
    }

    /// Tears the live incarnation down: invalidates it, cancels its
    /// in-flight batch, and schedules (or gives up on) a respawn.
    fn condemn(&mut self, reason: CondemnReason, now: Instant) {
        match reason {
            CondemnReason::Wedged => self.shared.condemned_wedged.inc(),
            CondemnReason::Dead => self.shared.condemned_dead.inc(),
            CondemnReason::Poisoned => self.shared.condemned_poisoned.inc(),
        };
        self.shared
            .ring
            .record(0, EventKind::Condemn, self.index as u64, reason.code());
        {
            let mut qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            qs.incarnation += 1;
        }
        self.ctl.ready.notify_all();
        // Unwind whatever the condemned incarnation is rendering; a
        // truly wedged one ignores this, which is why it goes to the
        // graveyard instead of being joined here.
        if let Some(cancel) = self
            .ctl
            .current_cancel
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            cancel.cancel();
        }
        if let Some(worker) = self.worker.take() {
            if worker.is_finished() {
                let _ = worker.join();
            } else {
                self.graveyard.push(worker);
            }
        }
        self.ctl.poison_streak.store(0, Ordering::Relaxed);
        self.consecutive_restarts += 1;
        self.rendered_at_condemn = self.shared.rendered.get();
        if self.consecutive_restarts > self.health.max_restarts {
            self.give_up(now);
        } else {
            self.respawn_at = Some(now + self.health.backoff_for(self.consecutive_restarts));
        }
    }

    /// Restart budget exhausted: latch down, fail everything queued.
    fn give_up(&mut self, now: Instant) {
        self.ctl.down.store(true, Ordering::Relaxed);
        self.fail_queue_shard_down(now);
    }

    /// Fails every queued frame with [`ServeError::ShardDown`],
    /// recording each outcome into its scene's breaker.
    fn fail_queue_shard_down(&self, now: Instant) {
        let drained = {
            let mut qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            qs.q.drain()
        };
        for (_, _, frame) in drained {
            self.shared.depth.dec();
            frame.breaker.record(false, frame.probe, now);
            fail_frame_with(&frame, &self.shared, ServeError::ShardDown);
            self.supervisor.resolve(frame.watch);
        }
    }

    /// Spawns the replacement incarnation: requeues what is queued
    /// (FIFO per lane, tenant ring preserved), grants a fresh
    /// heartbeat grace period, and starts the worker.
    fn respawn(&mut self, now: Instant) {
        let incarnation = {
            let mut qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            let held = qs.q.drain();
            for (position, (class, tenant, frame)) in held.into_iter().enumerate() {
                self.shared.requeued.inc();
                self.shared.ring.record(
                    frame.frame,
                    EventKind::Requeue,
                    self.index as u64,
                    position as u64,
                );
                qs.q.push(class, tenant, frame);
            }
            qs.incarnation
        };
        // The new worker must not be born already past the heartbeat
        // budget.
        self.ctl.beat(&self.shared, now);
        self.restarts += 1;
        self.shared.restarts.inc();
        self.shared
            .ring
            .record(0, EventKind::Restart, self.index as u64, incarnation);
        self.worker = Some(Self::spawn_worker(
            self.index,
            incarnation,
            &self.ctl,
            &self.sessions,
            &self.shared,
            self.pool_threads,
            self.max_batch,
            &self.supervisor,
            self.retry,
            self.health,
        ));
        self.ctl.ready.notify_all();
    }

    /// This shard's lifecycle counters and current health verdict.
    pub(crate) fn health_stats(&self, now: Instant) -> ShardHealthStats {
        let down = self.ctl.down.load(Ordering::Relaxed);
        let health = if down {
            ShardHealth::Dead
        } else if self.respawn_at.is_some() {
            // Condemned, between incarnations.
            ShardHealth::Dead
        } else {
            match self.verdict(now) {
                None => ShardHealth::Healthy,
                Some(CondemnReason::Dead) => ShardHealth::Dead,
                Some(CondemnReason::Wedged) | Some(CondemnReason::Poisoned) => ShardHealth::Wedged,
            }
        };
        let incarnation = self
            .ctl
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .incarnation;
        ShardHealthStats {
            shard: self.index,
            incarnation,
            restarts: self.restarts,
            consecutive_restarts: self.consecutive_restarts,
            down,
            heartbeat_epoch: self.ctl.heartbeat.epoch(),
            health,
        }
    }

    /// Closes the queue (the worker drains, then exits) and joins
    /// every incarnation; frames no incarnation will ever serve (down
    /// shard, late requeues) are failed.
    pub(crate) fn shutdown(&mut self) {
        {
            let mut qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            qs.closed = true;
        }
        self.ctl.ready.notify_all();
        // Graveyard first: a wedged incarnation finishes its sleep and
        // requeues its frame; the live worker (joined next) may still
        // serve it, and the leftover pass below catches the rest.
        for handle in self.graveyard.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        let leftovers = {
            let mut qs = self.ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            qs.q.drain()
        };
        for (_, _, frame) in leftovers {
            self.shared.depth.dec();
            fail_frame(&frame, &self.shared, "server shut down with frames queued");
            release_unrendered(&frame, &self.supervisor);
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cumulative GEMM-checksum miscompares observed under a SIMD backend,
/// across every shard in the process. The counter is process-wide on
/// purpose: quarantine is a verdict about the *hardware/kernel* pair,
/// not about any one scene's queue.
static SIMD_MISCOMPARES: AtomicU32 = AtomicU32::new(0);

/// Miscompares under a SIMD backend tolerated before that backend is
/// quarantined process-wide. One miscompare can be a stray bit flip;
/// a repeat offender is a broken unit.
const QUARANTINE_AFTER: u32 = 3;

/// Books one corrupt render attempt and applies the quarantine policy:
/// a GEMM-stage miscompare while a non-scalar backend is active counts
/// a strike against that backend, and strike `QUARANTINE_AFTER` latches
/// the process-wide quarantine (`kernels` demotes to scalar, sticky).
/// Sentinel trips never strike — a non-finite pixel indicts the math
/// upstream, not the SIMD unit specifically.
fn note_corrupt_render(err: &RenderError, shared: &ShardShared) {
    shared.corrupt.inc();
    let RenderError::Corrupt { stage, detail } = err;
    if *stage != "gemm" {
        return;
    }
    let backend = kernels::active_backend();
    if backend == Backend::Scalar {
        return;
    }
    let strikes = SIMD_MISCOMPARES.fetch_add(1, Ordering::Relaxed) + 1;
    if strikes >= QUARANTINE_AFTER && integrity::quarantine(backend) {
        shared.quarantined.inc();
        eprintln!(
            "gen-nerf-serve: quarantined kernel backend {backend:?} after \
             {strikes} GEMM miscompares (last: {detail}); serving on scalar"
        );
    }
}

/// Nanoseconds elapsed since `since`, saturating (trace payloads).
fn ns_since(since: Instant) -> u64 {
    Instant::now().saturating_duration_since(since).as_nanos() as u64
}

/// Fails a frame's handle with `err`, keeping the counter and the
/// terminal trace event consistent with the first-write-wins fulfil:
/// the counter and the `Resolve` event book only when this call's
/// write is the resolving one.
pub(crate) fn fail_frame_with(frame: &QueuedFrame, shared: &ShardShared, err: ServeError) {
    shared.failed.inc();
    if fulfill(&frame.slot, Err(err)) {
        shared.ring.record(
            frame.frame,
            EventKind::Resolve,
            ResolveOutcome::Failed as u64,
            ns_since(frame.submitted),
        );
    } else {
        shared.failed.sub(1);
    }
}

/// [`fail_frame_with`] for plain message failures.
fn fail_frame(frame: &QueuedFrame, shared: &ShardShared, msg: &str) {
    shared.failed.inc();
    if fulfill_error(&frame.slot, msg) {
        shared.ring.record(
            frame.frame,
            EventKind::Resolve,
            ResolveOutcome::Failed as u64,
            ns_since(frame.submitted),
        );
    } else {
        shared.failed.sub(1);
    }
}

fn resolve(sessions: &SessionMap, id: u64) -> Option<Arc<SessionState>> {
    sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&id)
        .cloned()
}

/// Whether the coherence cache constrains batching for `state` (at
/// most one of its frames per fused job, so in-order cache updates are
/// a guarantee rather than a race).
fn cache_applies(state: &SessionState) -> bool {
    state.cfg.coherence.enabled
        && matches!(state.cfg.strategy, SamplingStrategy::CoarseThenFocus { .. })
}

/// Releases a frame that will never render: returns its breaker-probe
/// quota slot (if it held one) and detaches its watchdog registration.
/// Deliberately records **no** breaker outcome — a frame that timed
/// out while still queued, or whose session vanished, says nothing
/// about the scene's health.
pub(crate) fn release_unrendered(frame: &QueuedFrame, supervisor: &Supervisor) {
    if frame.probe {
        frame.breaker.abort_probe();
    }
    supervisor.resolve(frame.watch);
}

/// Force-fails everything queued on `ctl` with
/// [`ServeError::Draining`] — the deadline half of
/// [`RenderServer::drain`](crate::RenderServer::drain). Returns how
/// many frames were forced.
pub(crate) fn force_drain(ctl: &ShardCtl, shared: &ShardShared, supervisor: &Supervisor) -> u64 {
    let drained = {
        let mut qs = ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
        qs.q.drain()
    };
    let mut forced = 0u64;
    for (_, _, frame) in drained {
        shared.depth.dec();
        shared.drain_forced.inc();
        fail_frame_with(&frame, shared, ServeError::Draining);
        release_unrendered(&frame, supervisor);
        forced += 1;
    }
    forced
}

/// Requeues a popped-but-unexecuted head at the **front** of its lane
/// (FIFO preserved) — the hand-back a condemned or killed incarnation
/// uses so its frame is re-served, not lost.
fn requeue_head(frame: QueuedFrame, index: usize, ctl: &ShardCtl, shared: &ShardShared) {
    shared.requeued.inc();
    shared
        .ring
        .record(frame.frame, EventKind::Requeue, index as u64, 0);
    {
        let mut qs = ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
        shared.depth.inc();
        qs.q.push_front(frame.deadline, frame.session, frame);
    }
    ctl.ready.notify_one();
}

/// The shard event loop, one *incarnation* of it: block on the shared
/// queue, dequeue the policy-ordered head, grow the largest compatible
/// batch around it, render, repeat — publishing a heartbeat at every
/// step. Exits when the queue closes and empties, or the moment the
/// shared incarnation counter moves past the one this loop was spawned
/// at (a condemnation installed a replacement).
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    index: usize,
    incarnation: u64,
    ctl: Arc<ShardCtl>,
    sessions: SessionMap,
    shared: Arc<ShardShared>,
    pool_threads: usize,
    max_batch: usize,
    supervisor: Arc<Supervisor>,
    retry: RetryPolicy,
    health: HealthConfig,
) {
    let mut pool = Pool::new(pool_threads.max(1));
    let max_batch = max_batch.max(1);
    let mut last_pool_respawn_streak = 0u32;
    loop {
        // Blocking pop under the shared queue lock; every wakeup beats
        // so an idle shard's heartbeat stays fresh.
        let mut head = {
            let mut qs = ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if qs.incarnation != incarnation {
                    return;
                }
                if let Some(frame) = qs.q.pop() {
                    break frame;
                }
                if qs.closed {
                    return;
                }
                ctl.beat(&shared, supervisor.clock().now());
                qs = ctl
                    .ready
                    .wait_timeout(qs, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        ctl.inflight.fetch_add(1, Ordering::SeqCst);
        ctl.beat(&shared, supervisor.clock().now());
        shared.depth.dec();
        shared.ring.record(
            head.frame,
            EventKind::Pop,
            ns_since(head.submitted),
            shared.depth.get().max(0) as u64,
        );

        // Shard-level chaos faults fire here, between pop and render —
        // where a real scheduler-thread defect would. Both are
        // one-shot (cleared before the requeue) so the re-served frame
        // renders normally, and both hand the frame back first so no
        // frame is ever lost to the fault.
        if let Some(fault) = head.fault {
            if fault.is_shard_level() {
                head.fault = None;
                match fault {
                    Fault::KillShard => {
                        requeue_head(head, index, &ctl, &shared);
                        ctl.inflight.fetch_sub(1, Ordering::SeqCst);
                        // Clean exit with the queue open: the sweep
                        // finds the JoinHandle finished → Dead.
                        return;
                    }
                    Fault::WedgeShard(stall) => {
                        // Uncancellable on purpose — the heartbeat
                        // goes stale while `inflight` holds the shard
                        // busy, which is exactly the Wedged signature.
                        std::thread::sleep(stall);
                        requeue_head(head, index, &ctl, &shared);
                        ctl.inflight.fetch_sub(1, Ordering::SeqCst);
                        // If the sweep condemned us during the sleep,
                        // the incarnation check at the top exits.
                        continue;
                    }
                    _ => unreachable!("is_shard_level covers exactly these"),
                }
            }
        }
        if head.slot.is_resolved() {
            // Timed out while still queued (the watchdog already
            // resolved the handle): skip the render entirely.
            release_unrendered(&head, &supervisor);
            ctl.inflight.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let Some(head_state) = resolve(&sessions, head.session) else {
            fail_frame(&head, &shared, "session removed with frames queued");
            release_unrendered(&head, &supervisor);
            ctl.inflight.fetch_sub(1, Ordering::SeqCst);
            continue;
        };

        // Grow the batch: only lane heads compatible with the batch
        // head ride along (dead sessions and already-resolved frames
        // are popped so they don't park their lane forever; frames
        // carrying a shard-level fault wait to become head so the
        // fault fires against a lone frame).
        let mut cache_sessions: Vec<u64> = Vec::new();
        if cache_applies(&head_state) {
            cache_sessions.push(head.session);
        }
        let mut group: Vec<(QueuedFrame, Arc<SessionState>)> = vec![(head, head_state)];
        while group.len() < max_batch {
            let head_scene = Arc::clone(&group[0].1.scene);
            let head_strategy = group[0].1.cfg.strategy;
            let candidate = {
                let mut qs = ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
                qs.q.pop_next(|frame| {
                    if frame.fault.is_some_and(|f| f.is_shard_level()) {
                        return false;
                    }
                    if frame.slot.is_resolved() {
                        return true;
                    }
                    match resolve(&sessions, frame.session) {
                        // Pop dead-session frames so they fail instead
                        // of parking their lane forever.
                        None => true,
                        Some(state) => {
                            Arc::ptr_eq(&state.scene, &head_scene)
                                && state.cfg.strategy == head_strategy
                                && !(cache_applies(&state)
                                    && cache_sessions.contains(&frame.session))
                        }
                    }
                })
            };
            let Some(frame) = candidate else { break };
            ctl.inflight.fetch_add(1, Ordering::SeqCst);
            shared.depth.dec();
            shared.ring.record(
                frame.frame,
                EventKind::Pop,
                ns_since(frame.submitted),
                shared.depth.get().max(0) as u64,
            );
            if frame.slot.is_resolved() {
                release_unrendered(&frame, &supervisor);
                ctl.inflight.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            match resolve(&sessions, frame.session) {
                None => {
                    fail_frame(&frame, &shared, "session removed with frames queued");
                    release_unrendered(&frame, &supervisor);
                    ctl.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                Some(state) => {
                    if cache_applies(&state) {
                        cache_sessions.push(frame.session);
                    }
                    group.push((frame, state));
                }
            }
        }
        let group_len = group.len() as u64;
        execute_group(index, &pool, group, &shared, &ctl, &supervisor, retry);
        ctl.inflight.fetch_sub(group_len, Ordering::SeqCst);
        ctl.beat(&shared, supervisor.clock().now());

        // Pool-poison escalation: a streak of panicked attempts at the
        // respawn threshold replaces the pool's worker crew in place —
        // the cheap reclaim for a sick pool. The streak keeps counting
        // (only a clean render clears it); if respawning didn't help,
        // the sweep condemns the whole shard at `pool_condemn_after`.
        let streak = ctl.poison_streak.load(Ordering::Relaxed);
        if streak >= health.pool_respawn_after
            && streak != last_pool_respawn_streak
            && streak % health.pool_respawn_after == 0
        {
            pool.respawn_workers();
            last_pool_respawn_streak = streak;
        }
    }
}

/// Renders one admission batch as a single fused multi-frame job and
/// fulfills its handles. A panic anywhere in the render — or a
/// watchdog cancellation fired by any batch member's deadline — fails
/// over to per-frame [`retry_frame`] recovery instead of killing the
/// shard; every frame's final outcome is recorded into its scene's
/// circuit breaker exactly once.
fn execute_group(
    shard: usize,
    pool: &Pool,
    mut group: Vec<(QueuedFrame, Arc<SessionState>)>,
    shared: &ShardShared,
    ctl: &ShardCtl,
    supervisor: &Supervisor,
    retry: RetryPolicy,
) {
    shared.batches.inc();
    for (frame, _) in &group {
        shared.ring.record(
            frame.frame,
            EventKind::Batch,
            group.len() as u64,
            (group.len() - 1) as u64,
        );
    }
    // Take the recycled buffers out of the requests up front: they are
    // moved (not cloned) into the render and returned in the results.
    let buffers: Vec<Option<Image>> = group
        .iter_mut()
        .map(|(frame, _)| frame.reuse.take())
        .collect();
    // One token guards the whole fused job: the watchdog fires it when
    // *any* member blows its budget, and the render unwinds at the
    // next chunk boundary. It is also published on the control block
    // so a condemnation or a drain deadline can fire it from outside
    // this thread.
    let cancel = CancelToken::new();
    *ctl.current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = Some(cancel.clone());
    for (frame, _) in &group {
        supervisor.begin_render(frame.watch, &cancel);
    }
    let attempt_start = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        render_group(
            shard,
            pool,
            &group,
            buffers,
            &cancel,
            0,
            shared,
            &ctl.governor,
        )
    }));
    // Render-attempt trace payload: elapsed ns + outcome code (0 ok,
    // 1 cancelled, 2 corrupt, 3 panicked).
    let render_ns = ns_since(attempt_start);
    let render_outcome = match &outcome {
        Ok(Ok(_)) if !cancel.is_cancelled() => 0,
        Ok(Ok(_)) => 1,
        Ok(Err(_)) => 2,
        Err(_) => 3,
    };
    match render_outcome {
        0 => ctl.poison_streak.store(0, Ordering::Relaxed),
        2 | 3 => {
            ctl.poison_streak.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    for (frame, _) in &group {
        shared
            .ring
            .record(frame.frame, EventKind::Render, render_ns, render_outcome);
    }
    let first_error = match outcome {
        Ok(Ok(results)) => {
            if !cancel.is_cancelled() {
                for ((frame, _), result) in group.into_iter().zip(results) {
                    conclude(frame, Ok(result), shared, supervisor);
                }
                return;
            }
            // A cancelled batch renders its remaining rays as
            // background: every member's output is suspect, so none
            // may be fulfilled. Unresolved members re-render solo.
            "render cancelled by a timed-out batch member".to_string()
        }
        // Integrity verification failed: the batch's pixels were never
        // published and every member is retryable, exactly like a
        // panic — corruption is transient until quarantine says
        // otherwise.
        Ok(Err(err)) => {
            note_corrupt_render(&err, shared);
            err.to_string()
        }
        Err(payload) => panic_message(payload.as_ref()),
    };
    for (frame, state) in group {
        retry_frame(
            shard,
            pool,
            frame,
            state,
            shared,
            ctl,
            supervisor,
            retry,
            first_error.clone(),
        );
    }
}

/// Resolves one frame's final outcome: records the outcome into the
/// scene's breaker, fulfills the handle (unless the watchdog got there
/// first — `fulfill` is first-write-wins), and detaches the watch.
fn conclude(
    frame: QueuedFrame,
    outcome: Result<FrameResult, String>,
    shared: &ShardShared,
    supervisor: &Supervisor,
) {
    // The breaker and the counters move *before* the fulfill so a
    // waiter that wakes on the handle already sees them. The breaker
    // takes the render's true outcome even when the watchdog wins the
    // fulfill race — the frame blew its budget, but the scene itself
    // rendered, and the breaker gauges scene health, not deadline
    // pressure. (Stall-sick scenes still record failures: their
    // cancelled renders resolve through the retry path instead.)
    let ok = outcome.is_ok();
    frame.breaker.record(ok, frame.probe, Instant::now());
    match outcome {
        Ok(result) => {
            shared.rendered.inc();
            let latency_ns = ns_since(frame.submitted);
            if fulfill(&frame.slot, Ok(result)) {
                // Winning the race makes this the frame's one terminal
                // trace event; the latency histogram books only real
                // (delivered) successes.
                shared.latency(frame.deadline).observe(latency_ns);
                shared.ring.record(
                    frame.frame,
                    EventKind::Resolve,
                    ResolveOutcome::Ok as u64,
                    latency_ns,
                );
            } else {
                shared.rendered.sub(1);
            }
        }
        Err(message) => {
            fail_frame(&frame, shared, &message);
        }
    }
    supervisor.resolve(frame.watch);
}

/// Re-renders one frame solo after a transient batch failure (panic,
/// pool poison, or a batch-mate's timeout): bounded attempts with
/// exponential backoff, never scheduled past the frame's deadline.
/// The kernel batch-independence contract makes a successful retry
/// bitwise identical to the original batched render.
#[allow(clippy::too_many_arguments)]
fn retry_frame(
    shard: usize,
    pool: &Pool,
    frame: QueuedFrame,
    state: Arc<SessionState>,
    shared: &ShardShared,
    ctl: &ShardCtl,
    supervisor: &Supervisor,
    retry: RetryPolicy,
    mut last_error: String,
) {
    let pair = (frame, state);
    for attempt in 1..retry.max_attempts.max(1) {
        if pair.0.slot.is_resolved() {
            // The watchdog timed this frame out: its budget is spent,
            // which is a scene failure even without a fresh attempt.
            let (frame, _) = pair;
            frame.breaker.record(false, frame.probe, Instant::now());
            supervisor.resolve(frame.watch);
            return;
        }
        let backoff = retry.backoff(attempt);
        if Instant::now() + backoff >= pair.0.deadline_at {
            // A retry that lands past the deadline is wasted work: the
            // watchdog would discard it anyway.
            break;
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        shared.retries.inc();
        shared.ring.record(
            pair.0.frame,
            EventKind::Retry,
            attempt as u64,
            backoff.as_nanos() as u64,
        );
        let cancel = CancelToken::new();
        *ctl.current_cancel.lock().unwrap_or_else(|e| e.into_inner()) = Some(cancel.clone());
        supervisor.begin_render(pair.0.watch, &cancel);
        let attempt_start = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            render_group(
                shard,
                pool,
                std::slice::from_ref(&pair),
                vec![None],
                &cancel,
                attempt,
                shared,
                &ctl.governor,
            )
        }));
        let render_ns = ns_since(attempt_start);
        let render_outcome = match &outcome {
            Ok(Ok(_)) if !cancel.is_cancelled() => 0,
            Ok(Ok(_)) => 1,
            Ok(Err(_)) => 2,
            Err(_) => 3,
        };
        match render_outcome {
            0 => ctl.poison_streak.store(0, Ordering::Relaxed),
            2 | 3 => {
                ctl.poison_streak.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        shared
            .ring
            .record(pair.0.frame, EventKind::Render, render_ns, render_outcome);
        match outcome {
            Ok(Ok(mut results)) if !cancel.is_cancelled() => {
                let result = results.pop().expect("one frame in, one result out");
                conclude(pair.0, Ok(result), shared, supervisor);
                return;
            }
            // Cancelled mid-retry: the top-of-loop check (or the
            // exhausted path below) observes the resolved slot.
            Ok(Ok(_)) => {}
            // The retry itself produced corrupt output — book it and
            // keep retrying (quarantine may demote the backend between
            // attempts, which is exactly the recovery path).
            Ok(Err(err)) => {
                note_corrupt_render(&err, shared);
                last_error = err.to_string();
            }
            Err(payload) => last_error = panic_message(payload.as_ref()),
        }
    }
    // Attempts or wall-clock budget exhausted. `fulfill_error` loses
    // (returns false) if the watchdog already resolved the handle.
    let (frame, _) = pair;
    frame.breaker.record(false, frame.probe, Instant::now());
    fail_frame(&frame, shared, &last_error);
    supervisor.resolve(frame.watch);
}

/// Sleeps `total` in small slices, returning early the moment `cancel`
/// fires — a stalled worker yields its slot within ~5 ms of the
/// watchdog's verdict instead of parking for the full stall.
fn cancellable_sleep(total: Duration, cancel: &CancelToken) {
    let deadline = Instant::now() + total;
    while !cancel.is_cancelled() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
}

/// The render half of [`execute_group`]: cache lookups, one fused
/// multi-frame render, cache updates. `group` frames share one scene
/// and strategy (batch carving guarantees it). `attempt` is 0 for the
/// first (batched) render and counts up through retries — transient
/// injected faults consult it via [`Fault::fires`]. When `cancel`
/// fires mid-render the returned images are garbage (remaining rays
/// render as background) and the caller must not fulfill them; cache
/// anchors are likewise withheld. Anchor inserts are charged against
/// `governor` **before** insertion (a refused charge skips the anchor;
/// the frame still renders), so the process-wide byte budget is never
/// exceeded, even transiently.
#[allow(clippy::too_many_arguments)]
fn render_group(
    shard: usize,
    pool: &Pool,
    group: &[(QueuedFrame, Arc<SessionState>)],
    buffers: Vec<Option<Image>>,
    cancel: &CancelToken,
    attempt: u32,
    shared: &ShardShared,
    governor: &MemoryGovernor,
) -> Result<Vec<FrameResult>, RenderError> {
    let started = Instant::now();
    let n = group.len();
    let scene = &group[0].1.scene;
    let strategy = group[0].1.cfg.strategy;
    let is_ctf = matches!(strategy, SamplingStrategy::CoarseThenFocus { .. });

    // Injected faults fire inside the batch's unwind boundary, exactly
    // where a real mid-frame failure would: after admission, before
    // the frame resolves. The corruption family arms the pipeline's
    // chaos hooks — a supra-tolerance GEMM perturbation or a poisoned
    // pixel — which the integrity machinery must then catch.
    for (frame, _) in group {
        let Some(fault) = frame.fault else { continue };
        if !fault.fires(attempt) {
            continue;
        }
        match fault {
            Fault::Stall(delay) => cancellable_sleep(delay, cancel),
            Fault::Panic | Fault::PanicOnce => panic!("injected render fault"),
            Fault::CorruptGemm(seed) => integrity::arm_corruption(seed),
            Fault::CorruptPixels(seed) => pipeline::arm_pixel_corruption(seed),
            // Fired below, against the session's cache under its lock.
            Fault::CorruptAnchor(_) => {}
            // Shard-level faults are intercepted (and cleared) by the
            // shard loop before the frame ever reaches a render.
            Fault::KillShard | Fault::WedgeShard(_) => {}
        }
    }

    // Cache lookups resolve against each session's anchors *before*
    // the job, so a batch behaves exactly like the same frames served
    // one at a time in admission order. Imports are validated: an
    // anchor whose digest or ray count no longer checks out is
    // discarded and the lookup counts as a miss (its bytes are
    // returned to the global budget).
    let mut cameras: Vec<Camera> = Vec::with_capacity(n);
    let mut cached_arcs: Vec<Option<Arc<CoarseFrame>>> = Vec::with_capacity(n);
    let mut outcomes: Vec<CacheOutcome> = Vec::with_capacity(n);
    for (frame, state) in group {
        let intrinsics = frame.tier.apply(state.cfg.intrinsics);
        let expected_rays = intrinsics.width as usize * intrinsics.height as usize;
        cameras.push(Camera::new(intrinsics, frame.pose));
        if !is_ctf || !state.cfg.coherence.enabled {
            state.bypasses.fetch_add(1, Ordering::Relaxed);
            shared.cache_bypasses.inc();
            cached_arcs.push(None);
            outcomes.push(CacheOutcome::Bypass);
            continue;
        }
        let freed = {
            let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
            let bytes_before = cache.bytes();
            if let Some(fault @ Fault::CorruptAnchor(seed)) = frame.fault {
                if fault.fires(attempt) {
                    cache.corrupt_for_chaos(seed);
                }
            }
            let rejects_before = cache.rejected();
            match cache.lookup(frame.tier, &frame.pose, &state.cfg.coherence, expected_rays) {
                Some(coarse) => {
                    state.hits.fetch_add(1, Ordering::Relaxed);
                    shared.cache_hits.inc();
                    cached_arcs.push(Some(coarse));
                    outcomes.push(CacheOutcome::Hit);
                }
                None => {
                    state.misses.fetch_add(1, Ordering::Relaxed);
                    shared.cache_misses.inc();
                    cached_arcs.push(None);
                    outcomes.push(CacheOutcome::Miss);
                }
            }
            shared.cache_rejects.add(cache.rejected() - rejects_before);
            bytes_before.saturating_sub(cache.bytes())
        };
        if freed > 0 {
            // Integrity rejects discarded anchors: their bytes go back
            // to the process-wide budget.
            governor.discharge(freed as u64);
        }
    }

    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .with_threads(pool.threads())
    .with_pool(pool)
    .with_cancel(cancel);

    let mut images: Vec<Image> = buffers
        .into_iter()
        .map(|buf| buf.unwrap_or_else(|| Image::new(0, 0)))
        .collect();
    let mut stats = vec![RenderStats::default(); n];
    let cached_refs: Vec<Option<&CoarseFrame>> = cached_arcs.iter().map(|c| c.as_deref()).collect();
    // The fallible render: a GEMM miscompare or a tripped sentinel
    // surfaces here as `RenderError::Corrupt` — nothing downstream
    // (fulfill, cache anchoring) ever sees the poisoned output.
    let exports =
        renderer.try_render_frames_cached(&cameras, &cached_refs, &mut images, &mut stats)?;
    let finished = Instant::now();

    // Anchor fresh coarse passes, in admission order; the LRU tail is
    // evicted past the session's byte budget and counted. A cancelled
    // render anchors nothing: its coarse exports are as suspect as its
    // images (the token is sticky, so a fire during the render is
    // still visible here). Every insert is charged against the global
    // budget *first*: a refused charge (nothing left to evict
    // anywhere) skips the anchor and the frame still resolves.
    for (((frame, state), export), outcome) in group.iter().zip(exports).zip(&outcomes) {
        if let Some(coarse) = export {
            if *outcome == CacheOutcome::Miss && !cancel.is_cancelled() {
                let coarse = Arc::new(coarse);
                let cost = coarse_entry_cost(&coarse);
                if !governor.try_charge(cost as u64) {
                    continue;
                }
                let (bytes_before, bytes_after, evicted) = {
                    let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
                    let bytes_before = cache.bytes();
                    let evicted = cache.insert(
                        CacheEntry {
                            pose: frame.pose,
                            tier: frame.tier,
                            coarse,
                        },
                        state.cfg.cache_budget_bytes,
                    );
                    (bytes_before, cache.bytes(), evicted)
                };
                // The insert added `cost`; whatever the session-budget
                // eviction (or an outright refusal) freed goes back.
                let freed = (bytes_before + cost).saturating_sub(bytes_after);
                if freed > 0 {
                    governor.discharge(freed as u64);
                }
                if evicted > 0 {
                    state.evictions.fetch_add(evicted, Ordering::Relaxed);
                    shared.cache_evictions.add(evicted);
                }
            }
        }
    }

    Ok(images
        .into_iter()
        .zip(stats)
        .zip(outcomes)
        .zip(group)
        .map(|(((image, stats), cache), (frame, _))| FrameResult {
            image,
            stats,
            serve: ServeStats {
                queue_wait: started.saturating_duration_since(frame.submitted),
                render_time: finished.saturating_duration_since(started),
                latency: finished.saturating_duration_since(frame.submitted),
                cache,
                batched_frames: n,
                shard,
                degraded: frame.degraded,
                tier: frame.tier,
            },
        })
        .collect())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "render panic".to_string()
    }
}
