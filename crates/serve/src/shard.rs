//! One shard: a scheduler thread owning a scene's request queue, a
//! private render pool, and the fused batch execution path.
//!
//! The server routes every session of a scene to one shard (see
//! [`registry`](crate::registry)); the shard thread drains its bounded
//! queue through a [`FairQueue`] — class priority, round-robin across
//! sessions, FIFO per session — carves the largest batch of frames
//! that can legally share one fused render (same scene `Arc`, same
//! strategy, at most one frame of any cache-enabled session), and runs
//! it on the shard's own [`Pool`] slice of the server's thread budget.
//! A panic inside a render fails that batch's handles and leaves the
//! shard serving; nothing a frame does can take the server down.

use crate::admission::{AdmissionStats, FairQueue};
use crate::server::{fulfill, fulfill_error, CacheOutcome, Fault, FrameResult, ServeStats, Slot};
use crate::session::{CacheEntry, DeadlineClass, ResolutionTier, SessionMap, SessionState};
use gen_nerf::config::SamplingStrategy;
use gen_nerf::pipeline::{CoarseFrame, RenderStats, Renderer};
use gen_nerf_geometry::{Camera, Pose};
use gen_nerf_parallel::Pool;
use gen_nerf_scene::Image;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// One admitted frame travelling from `submit` to its shard.
pub(crate) struct QueuedFrame {
    pub session: u64,
    pub pose: Pose,
    /// Tier actually rendered (admission may have degraded it).
    pub tier: ResolutionTier,
    pub deadline: DeadlineClass,
    /// Whether admission lowered the tier below the request.
    pub degraded: bool,
    pub reuse: Option<Image>,
    pub fault: Option<Fault>,
    pub slot: Arc<Slot>,
    pub submitted: Instant,
}

/// Counters and gauges shared between a shard's thread and the server
/// front end (admission reads the depth gauge, tests read the rest).
#[derive(Default)]
pub(crate) struct ShardShared {
    /// Frames admitted but not yet pulled into a render batch.
    pub depth: AtomicUsize,
    pub admitted: AtomicU64,
    pub degraded: AtomicU64,
    pub shed_best_effort: AtomicU64,
    pub shed_interactive: AtomicU64,
    /// Frames whose handle resolved successfully.
    pub rendered: AtomicU64,
    /// Frames whose handle resolved with an error (render panic or
    /// vanished session).
    pub failed: AtomicU64,
    /// Fused render jobs executed.
    pub batches: AtomicU64,
}

impl ShardShared {
    pub(crate) fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed_best_effort: self.shed_best_effort.load(Ordering::Relaxed),
            shed_interactive: self.shed_interactive.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one shard's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames admitted and still waiting in the shard queue.
    pub queued: usize,
    /// Admission counters (admitted / degraded / shed).
    pub admission: AdmissionStats,
    /// Frames rendered to completion.
    pub rendered_frames: u64,
    /// Frames resolved with an error.
    pub failed_frames: u64,
    /// Fused render jobs executed (`rendered_frames / batches` is the
    /// shard's average batch occupancy).
    pub batches: u64,
    /// Persistent render workers owned by this shard.
    pub pool_threads: usize,
}

/// The server's handle on one shard: its submission channel, shared
/// counters, and the scheduler thread to join at shutdown.
pub(crate) struct Shard {
    pub tx: Option<Sender<QueuedFrame>>,
    pub shared: Arc<ShardShared>,
    pub pool_threads: usize,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Shard {
    /// Spawns shard `index` with `pool_threads` render workers.
    pub(crate) fn spawn(
        index: usize,
        pool_threads: usize,
        max_batch: usize,
        sessions: SessionMap,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<QueuedFrame>();
        let shared = Arc::new(ShardShared::default());
        let loop_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("gen-nerf-shard-{index}"))
            .spawn(move || shard_loop(index, rx, sessions, loop_shared, pool_threads, max_batch))
            .expect("spawn shard thread");
        Self {
            tx: Some(tx),
            shared,
            pool_threads,
            worker: Some(worker),
        }
    }

    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            queued: self.shared.depth.load(Ordering::Relaxed),
            admission: self.shared.admission_stats(),
            rendered_frames: self.shared.rendered.load(Ordering::Relaxed),
            failed_frames: self.shared.failed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            pool_threads: self.pool_threads,
        }
    }

    /// Closes the queue (the shard drains, then exits) and joins the
    /// scheduler thread.
    pub(crate) fn shutdown(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn resolve(sessions: &SessionMap, id: u64) -> Option<Arc<SessionState>> {
    sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&id)
        .cloned()
}

/// Whether the coherence cache constrains batching for `state` (at
/// most one of its frames per fused job, so in-order cache updates are
/// a guarantee rather than a race).
fn cache_applies(state: &SessionState) -> bool {
    state.cfg.coherence.enabled
        && matches!(state.cfg.strategy, SamplingStrategy::CoarseThenFocus { .. })
}

/// The shard event loop: block for one frame, drain the channel into
/// the fair queue, dequeue the policy-ordered head, grow the largest
/// compatible batch around it, render, repeat. Exits when the channel
/// closes *and* every admitted frame is resolved.
fn shard_loop(
    index: usize,
    rx: Receiver<QueuedFrame>,
    sessions: SessionMap,
    shared: Arc<ShardShared>,
    pool_threads: usize,
    max_batch: usize,
) {
    let pool = Pool::new(pool_threads.max(1));
    let max_batch = max_batch.max(1);
    let mut queue: FairQueue<QueuedFrame> = FairQueue::new();
    let mut open = true;
    while open || !queue.is_empty() {
        if queue.is_empty() {
            match rx.recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        while open {
            match rx.try_recv() {
                Ok(frame) => queue.push(frame.deadline, frame.session, frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }

        // Policy-ordered head. A frame leaves the admission depth
        // gauge the moment it is pulled out of the queue.
        let Some(head) = queue.pop() else { continue };
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        let Some(head_state) = resolve(&sessions, head.session) else {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            fulfill_error(&head.slot, "session removed with frames queued");
            continue;
        };

        // Grow the batch: only lane heads compatible with the batch
        // head ride along (dead sessions are popped to be failed).
        let mut cache_sessions: Vec<u64> = Vec::new();
        if cache_applies(&head_state) {
            cache_sessions.push(head.session);
        }
        let mut group: Vec<(QueuedFrame, Arc<SessionState>)> = vec![(head, head_state)];
        while group.len() < max_batch {
            let head_scene = Arc::clone(&group[0].1.scene);
            let head_strategy = group[0].1.cfg.strategy;
            let candidate = queue.pop_next(|frame| match resolve(&sessions, frame.session) {
                // Pop dead-session frames so they fail instead of
                // parking their lane forever.
                None => true,
                Some(state) => {
                    Arc::ptr_eq(&state.scene, &head_scene)
                        && state.cfg.strategy == head_strategy
                        && !(cache_applies(&state) && cache_sessions.contains(&frame.session))
                }
            });
            let Some(frame) = candidate else { break };
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            match resolve(&sessions, frame.session) {
                None => {
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    fulfill_error(&frame.slot, "session removed with frames queued");
                }
                Some(state) => {
                    if cache_applies(&state) {
                        cache_sessions.push(frame.session);
                    }
                    group.push((frame, state));
                }
            }
        }
        execute_group(index, &pool, group, &shared);
    }
}

/// Renders one admission batch as a single fused multi-frame job and
/// fulfills its handles. A panic anywhere in the render fails every
/// frame of the batch (reported through the handles) instead of
/// killing the shard.
fn execute_group(
    shard: usize,
    pool: &Pool,
    mut group: Vec<(QueuedFrame, Arc<SessionState>)>,
    shared: &ShardShared,
) {
    shared.batches.fetch_add(1, Ordering::Relaxed);
    // Take the recycled buffers out of the requests up front: they are
    // moved (not cloned) into the render and returned in the results.
    let buffers: Vec<Option<Image>> = group
        .iter_mut()
        .map(|(frame, _)| frame.reuse.take())
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        render_group(shard, pool, &group, buffers)
    }));
    match outcome {
        Ok(results) => {
            shared
                .rendered
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            for ((frame, _), result) in group.into_iter().zip(results) {
                fulfill(&frame.slot, Ok(result));
            }
        }
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            shared
                .failed
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            for (frame, _) in group {
                fulfill_error(&frame.slot, &msg);
            }
        }
    }
}

/// The render half of [`execute_group`]: cache lookups, one fused
/// multi-frame render, cache updates. `group` frames share one scene
/// and strategy (batch carving guarantees it).
fn render_group(
    shard: usize,
    pool: &Pool,
    group: &[(QueuedFrame, Arc<SessionState>)],
    buffers: Vec<Option<Image>>,
) -> Vec<FrameResult> {
    let started = Instant::now();
    let n = group.len();
    let scene = &group[0].1.scene;
    let strategy = group[0].1.cfg.strategy;
    let is_ctf = matches!(strategy, SamplingStrategy::CoarseThenFocus { .. });

    // Injected faults fire inside the batch's unwind boundary, exactly
    // where a real mid-frame failure would: after admission, before
    // the frame resolves.
    for (frame, _) in group {
        match frame.fault {
            Some(Fault::Stall(delay)) => std::thread::sleep(delay),
            Some(Fault::Panic) => panic!("injected render fault"),
            None => {}
        }
    }

    // Cache lookups resolve against each session's anchors *before*
    // the job, so a batch behaves exactly like the same frames served
    // one at a time in admission order.
    let mut cameras: Vec<Camera> = Vec::with_capacity(n);
    let mut cached_arcs: Vec<Option<Arc<CoarseFrame>>> = Vec::with_capacity(n);
    let mut outcomes: Vec<CacheOutcome> = Vec::with_capacity(n);
    for (frame, state) in group {
        cameras.push(Camera::new(
            frame.tier.apply(state.cfg.intrinsics),
            frame.pose,
        ));
        if !is_ctf || !state.cfg.coherence.enabled {
            state.bypasses.fetch_add(1, Ordering::Relaxed);
            cached_arcs.push(None);
            outcomes.push(CacheOutcome::Bypass);
            continue;
        }
        let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
        match cache.lookup(frame.tier, &frame.pose, &state.cfg.coherence) {
            Some(coarse) => {
                state.hits.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(Some(coarse));
                outcomes.push(CacheOutcome::Hit);
            }
            None => {
                state.misses.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(None);
                outcomes.push(CacheOutcome::Miss);
            }
        }
    }

    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .with_threads(pool.threads())
    .with_pool(pool);

    let mut images: Vec<Image> = buffers
        .into_iter()
        .map(|buf| buf.unwrap_or_else(|| Image::new(0, 0)))
        .collect();
    let mut stats = vec![RenderStats::default(); n];
    let cached_refs: Vec<Option<&CoarseFrame>> = cached_arcs.iter().map(|c| c.as_deref()).collect();
    let exports = renderer.render_frames_cached(&cameras, &cached_refs, &mut images, &mut stats);
    let finished = Instant::now();

    // Anchor fresh coarse passes, in admission order; the LRU tail is
    // evicted past the session's byte budget and counted.
    for (((frame, state), export), outcome) in group.iter().zip(exports).zip(&outcomes) {
        if let Some(coarse) = export {
            if *outcome == CacheOutcome::Miss {
                let evicted = state
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        CacheEntry {
                            pose: frame.pose,
                            tier: frame.tier,
                            coarse: Arc::new(coarse),
                        },
                        state.cfg.cache_budget_bytes,
                    );
                if evicted > 0 {
                    state.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
    }

    images
        .into_iter()
        .zip(stats)
        .zip(outcomes)
        .zip(group)
        .map(|(((image, stats), cache), (frame, _))| FrameResult {
            image,
            stats,
            serve: ServeStats {
                queue_wait: started.saturating_duration_since(frame.submitted),
                render_time: finished.saturating_duration_since(started),
                latency: finished.saturating_duration_since(frame.submitted),
                cache,
                batched_frames: n,
                shard,
                degraded: frame.degraded,
                tier: frame.tier,
            },
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "render panic".to_string()
    }
}
