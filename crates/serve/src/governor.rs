//! The process-wide memory governor.
//!
//! Every session owns a per-session coarse-cache budget, but budgets
//! compose additively: a server with many sessions (or a restart storm
//! re-anchoring caches) can honour every per-session cap and still
//! exhaust the machine. The [`MemoryGovernor`] closes that gap with
//! **one** byte budget spanning all sessions' coarse-cache LRUs plus
//! the per-shard worker-arena reservations:
//!
//! * **Reserve-before-insert.** A shard about to anchor a coarse pass
//!   first charges the entry's cost ([`try_charge`]); the governor
//!   evicts cold anchors elsewhere to make room, and refuses the
//!   charge (the shard skips the anchor — the frame still renders)
//!   when nothing more can be evicted. Charging *before* inserting
//!   means the budget is never exceeded, even transiently — the heal
//!   gate pins `peak ≤ budget`.
//! * **Pressure-ordered eviction.** Room is made by evicting the
//!   LRU-tail anchor of the *fattest* live session first, one anchor
//!   at a time, so global pressure lands on whoever holds the most
//!   bytes rather than on the session that happened to insert last.
//! * **Admission pressure hook.** Past the pressure watermark
//!   (`pressure_fraction` of the budget), BestEffort submissions are
//!   shed at admission (`reason="memory"`) before any rendering
//!   happens — interactive traffic keeps its anchors while prefetch
//!   yields first.
//!
//! The governor is bookkeeping-only: it never holds a cache lock
//! across another lock acquisition except its own registry, and
//! callers must not invoke it while holding a session cache lock.

use crate::session::SessionState;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Environment variable overriding the process-wide budget, in MiB.
pub const MEMORY_BUDGET_ENV: &str = "GEN_NERF_MEMORY_BUDGET_MB";

/// Default process-wide budget: 256 MiB.
const DEFAULT_BUDGET_BYTES: u64 = 256 << 20;

/// Configuration of the process-wide [`MemoryGovernor`].
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// The hard byte budget across all sessions' coarse caches plus
    /// worker-arena reservations. Default 256 MiB, overridable via
    /// [`MEMORY_BUDGET_ENV`].
    pub budget_bytes: u64,
    /// Fraction of the budget at which admission pressure begins:
    /// BestEffort submissions are shed while usage is at or above
    /// `budget_bytes * pressure_fraction`.
    pub pressure_fraction: f64,
}

impl GovernorConfig {
    /// Overrides the byte budget.
    pub fn with_budget_bytes(mut self, bytes: u64) -> Self {
        self.budget_bytes = bytes.max(1);
        self
    }

    /// Overrides the pressure watermark fraction (clamped to `0..=1`).
    pub fn with_pressure_fraction(mut self, fraction: f64) -> Self {
        self.pressure_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        let budget_bytes = std::env::var(MEMORY_BUDGET_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&mb| mb >= 1)
            .map(|mb| mb << 20)
            .unwrap_or(DEFAULT_BUDGET_BYTES);
        Self {
            budget_bytes,
            pressure_fraction: 0.85,
        }
    }
}

/// Counters of the process-wide governor, as reported by
/// [`RenderServer::governor_stats`](crate::RenderServer::governor_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// The configured hard budget.
    pub budget_bytes: u64,
    /// Bytes currently charged (caches + arena reservations).
    pub used_bytes: u64,
    /// High-water mark of `used_bytes` — the heal gate pins
    /// `peak_bytes <= budget_bytes`.
    pub peak_bytes: u64,
    /// Anchors evicted across sessions by global pressure (beyond any
    /// per-session budget evictions).
    pub evictions: u64,
    /// Anchor inserts refused because no more room could be made.
    pub refused_inserts: u64,
    /// BestEffort submissions shed by the admission pressure hook.
    pub pressure_sheds: u64,
}

/// The process-wide byte-budget arbiter. One per [`RenderServer`]
/// (shared by every shard via `Arc`); see the module docs for policy.
///
/// [`RenderServer`]: crate::RenderServer
pub(crate) struct MemoryGovernor {
    budget: u64,
    pressure_at: u64,
    used: AtomicU64,
    peak: AtomicU64,
    evictions: AtomicU64,
    refused: AtomicU64,
    pressure_sheds: AtomicU64,
    /// Live sessions whose caches are evictable under pressure. Dead
    /// weaks are pruned opportunistically during eviction scans.
    sessions: Mutex<Vec<Weak<SessionState>>>,
}

impl MemoryGovernor {
    pub(crate) fn new(cfg: &GovernorConfig) -> Self {
        let budget = cfg.budget_bytes.max(1);
        let pressure_at = (budget as f64 * cfg.pressure_fraction.clamp(0.0, 1.0)) as u64;
        Self {
            budget,
            pressure_at,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            pressure_sheds: AtomicU64::new(0),
            sessions: Mutex::new(Vec::new()),
        }
    }

    /// Makes the session's cache evictable under global pressure.
    pub(crate) fn register(&self, session: &Arc<SessionState>) {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::downgrade(session));
    }

    fn bump_peak(&self, used_now: u64) {
        self.peak.fetch_max(used_now, Ordering::Relaxed);
    }

    /// Charges `bytes` against the budget, evicting cold anchors from
    /// the fattest sessions to make room. Returns `false` (and charges
    /// nothing) when the budget cannot fit `bytes` even after evicting
    /// everything evictable — the caller skips its insert.
    ///
    /// Must not be called while holding any session's cache lock.
    pub(crate) fn try_charge(&self, bytes: u64) -> bool {
        loop {
            let used = self.used.load(Ordering::Relaxed);
            if used.saturating_add(bytes) <= self.budget {
                if self
                    .used
                    .compare_exchange(used, used + bytes, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    self.bump_peak(used + bytes);
                    return true;
                }
                continue;
            }
            if !self.evict_one() {
                self.refused.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }

    /// Returns `bytes` to the budget (anchor evicted locally, lookup
    /// rejected an anchor, or a session was removed).
    pub(crate) fn discharge(&self, bytes: u64) {
        // Saturating: a discharge can only follow a matching charge,
        // but never trap on accounting drift in release builds.
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            });
    }

    /// Unconditionally charges a fixed reservation (per-shard worker
    /// arenas at spawn). Reservations are part of `used`, so budgets
    /// must leave headroom for them; they are never evicted.
    pub(crate) fn reserve(&self, bytes: u64) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bump_peak(now);
    }

    /// Evicts the LRU-tail anchor of the live session holding the most
    /// cache bytes. Returns `false` when nothing was evictable.
    fn evict_one(&self) -> bool {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        sessions.retain(|w| w.strong_count() > 0);
        let victim = sessions
            .iter()
            .filter_map(Weak::upgrade)
            .map(|s| {
                let bytes = s.cache.lock().unwrap_or_else(|e| e.into_inner()).bytes();
                (bytes, s)
            })
            .filter(|(bytes, _)| *bytes > 0)
            .max_by_key(|(bytes, _)| *bytes);
        drop(sessions);
        let Some((_, victim)) = victim else {
            return false;
        };
        let freed = victim
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .evict_tail();
        match freed {
            Some(freed) => {
                self.discharge(freed as u64);
                victim.evictions.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            // Raced with the victim's own eviction/teardown; report
            // "made no room" only if a rescan would also find nothing.
            None => false,
        }
    }

    /// Whether usage has crossed the pressure watermark (the admission
    /// hook sheds BestEffort while this holds).
    pub(crate) fn under_pressure(&self) -> bool {
        self.used.load(Ordering::Relaxed) >= self.pressure_at
    }

    /// Counts one BestEffort submission shed by the pressure hook.
    pub(crate) fn note_pressure_shed(&self) {
        self.pressure_sheds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> GovernorStats {
        GovernorStats {
            budget_bytes: self.budget,
            used_bytes: self.used.load(Ordering::Relaxed),
            peak_bytes: self.peak.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            refused_inserts: self.refused.load(Ordering::Relaxed),
            pressure_sheds: self.pressure_sheds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_builders() {
        let cfg = GovernorConfig::default()
            .with_budget_bytes(1 << 20)
            .with_pressure_fraction(0.5);
        assert_eq!(cfg.budget_bytes, 1 << 20);
        assert!((cfg.pressure_fraction - 0.5).abs() < 1e-12);
        // Clamps.
        assert_eq!(
            GovernorConfig::default().with_budget_bytes(0).budget_bytes,
            1
        );
        let over = GovernorConfig::default().with_pressure_fraction(7.0);
        assert!((over.pressure_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_discharge_and_peak() {
        let gov = MemoryGovernor::new(&GovernorConfig::default().with_budget_bytes(100));
        assert!(gov.try_charge(60));
        assert!(gov.try_charge(40));
        // Full: nothing evictable (no sessions registered) → refused.
        assert!(!gov.try_charge(1));
        let s = gov.stats();
        assert_eq!(s.used_bytes, 100);
        assert_eq!(s.peak_bytes, 100);
        assert_eq!(s.refused_inserts, 1);
        assert_eq!(s.evictions, 0);
        gov.discharge(50);
        assert!(gov.try_charge(30));
        let s = gov.stats();
        assert_eq!(s.used_bytes, 80);
        assert_eq!(s.peak_bytes, 100, "peak is a high-water mark");
        // Peak never exceeded the budget at any point.
        assert!(s.peak_bytes <= s.budget_bytes);
    }

    #[test]
    fn pressure_watermark() {
        let cfg = GovernorConfig::default()
            .with_budget_bytes(1000)
            .with_pressure_fraction(0.8);
        let gov = MemoryGovernor::new(&cfg);
        assert!(!gov.under_pressure());
        gov.reserve(799);
        assert!(!gov.under_pressure());
        gov.reserve(1);
        assert!(gov.under_pressure());
        gov.note_pressure_shed();
        assert_eq!(gov.stats().pressure_sheds, 1);
    }

    #[test]
    fn discharge_saturates() {
        let gov = MemoryGovernor::new(&GovernorConfig::default().with_budget_bytes(10));
        gov.discharge(5);
        assert_eq!(gov.stats().used_bytes, 0);
    }
}
