//! Sessions: per-scene cached state, per-session render configuration
//! and the temporal-coherence policy.

use gen_nerf::config::SamplingStrategy;
use gen_nerf::features::{prepare_sources, SourceViewData};
use gen_nerf::model::GenNerfModel;
use gen_nerf::occupancy::OccupancyGrid;
use gen_nerf::pipeline::CoarseFrame;
use gen_nerf_geometry::{Aabb, Intrinsics, Mat3, Pose, Vec3};
use gen_nerf_scene::View;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything about one captured scene that is pose-independent, built
/// **once** and shared (via `Arc`) by every session viewing the scene
/// and every frame in flight: the pretrained model (inference is
/// `&self`/`Sync`), the encoded source-feature pyramids (the Step 0
/// cost [`prepare_sources`] pays), scene bounds/background, and an
/// optional precomputed occupancy grid handle for samplers that want
/// the per-scene sparsity baseline.
///
/// Sessions that share a `SceneState` (by `Arc` identity) are eligible
/// for cross-session admission batching: their frames can ride the
/// same fused GEMM chunks.
pub struct SceneState {
    /// The pretrained generalizable model.
    pub model: GenNerfModel,
    /// Render-ready source views (camera + image + encoded features).
    pub sources: Vec<SourceViewData>,
    /// Scene bounds every camera ray is clipped against.
    pub bounds: Aabb,
    /// Background color for rays that miss or never saturate.
    pub background: Vec3,
    /// Optional precomputed occupancy grid (the per-scene sparsity
    /// baseline of Sec. 2.4). The render pipeline itself never reads
    /// it — coarse-then-focus estimates occupancy at run time, which
    /// is the paper's whole point — but callers running grid-baseline
    /// comparisons against a served scene can stash the one-time build
    /// here instead of regenerating it per frame.
    pub occupancy: Option<OccupancyGrid>,
}

impl SceneState {
    /// Encodes `views` into render-ready sources and bundles the
    /// per-scene state — the one-time cost the server amortizes over
    /// every subsequent frame of every session.
    pub fn prepare(model: GenNerfModel, views: &[View], bounds: Aabb, background: Vec3) -> Self {
        Self {
            model,
            sources: prepare_sources(views),
            bounds,
            background,
            occupancy: None,
        }
    }

    /// Attaches a precomputed occupancy grid handle.
    pub fn with_occupancy(mut self, grid: OccupancyGrid) -> Self {
        self.occupancy = Some(grid);
        self
    }
}

/// Identifies a session created by
/// [`RenderServer::create_session`](crate::RenderServer::create_session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// The raw id value (stable for the lifetime of the server).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Output resolution of one frame request, as a divisor of the
/// session's base intrinsics — the knob a serving deadline trades
/// against. The coarse cache is keyed per tier, so alternating tiers
/// never mixes coarse passes of different ray grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResolutionTier {
    /// The session's native resolution.
    #[default]
    Full,
    /// Both dimensions halved.
    Half,
    /// Both dimensions quartered.
    Quarter,
}

impl ResolutionTier {
    /// The per-axis divisor.
    pub fn divisor(self) -> u32 {
        match self {
            ResolutionTier::Full => 1,
            ResolutionTier::Half => 2,
            ResolutionTier::Quarter => 4,
        }
    }

    /// Scales `base` intrinsics down to this tier (focal length and
    /// principal point shrink with the pixel grid; dimensions floor at
    /// one pixel).
    pub fn apply(self, base: Intrinsics) -> Intrinsics {
        let d = self.divisor();
        let s = d as f32;
        Intrinsics {
            fx: base.fx / s,
            fy: base.fy / s,
            cx: base.cx / s,
            cy: base.cy / s,
            width: (base.width / d).max(1),
            height: (base.height / d).max(1),
        }
    }
}

/// How urgently a frame is needed. The scheduler admits
/// `Interactive` frames ahead of `BestEffort` ones when both are
/// queued (submission order is kept within a class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DeadlineClass {
    /// A head-pose frame someone is waiting on.
    #[default]
    Interactive,
    /// Prefetch/preview work that may yield to interactive frames.
    BestEffort,
}

/// The temporal-coherence policy of one session: when a requested pose
/// is within `max_translation` (world units) **and** `max_rotation`
/// (radians) of the pose whose coarse pass is cached, coarse-then-focus
/// Step ① is reused and only the focus pass runs.
///
/// The cached pose is the *anchor*: it is only replaced when a request
/// falls outside the deltas (a miss re-probes and re-anchors), so
/// drift along a walkthrough is bounded by the deltas themselves
/// rather than accumulating step by step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceConfig {
    /// Master switch; `false` (the default) means every frame re-runs
    /// the coarse pass and serving is bitwise-identical to direct
    /// rendering.
    pub enabled: bool,
    /// Maximum camera-center distance to the anchor pose.
    pub max_translation: f32,
    /// Maximum rotation angle (radians) to the anchor pose.
    pub max_rotation: f32,
}

impl CoherenceConfig {
    /// Cache off: every frame is exact. This is the default.
    pub fn exact() -> Self {
        Self {
            enabled: false,
            max_translation: 0.0,
            max_rotation: 0.0,
        }
    }

    /// Cache on with the given pose deltas.
    pub fn within(max_translation: f32, max_rotation: f32) -> Self {
        Self {
            enabled: true,
            max_translation,
            max_rotation,
        }
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self::exact()
    }
}

/// The rotation angle (radians) between two rotation matrices, from
/// `cos θ = (trace(R₁ᵀ R₂) − 1) / 2`.
fn rotation_angle(a: &Mat3, b: &Mat3) -> f32 {
    // trace(R₁ᵀ R₂) is the Frobenius inner product ⟨R₁, R₂⟩.
    let trace = a.row(0).dot(b.row(0)) + a.row(1).dot(b.row(1)) + a.row(2).dot(b.row(2));
    ((trace - 1.0) / 2.0).clamp(-1.0, 1.0).acos()
}

/// Whether `pose` is close enough to `anchor` for the cached coarse
/// pass of `anchor` to stand in for a fresh probing.
pub fn poses_coherent(anchor: &Pose, pose: &Pose, cfg: &CoherenceConfig) -> bool {
    cfg.enabled
        && (anchor.origin - pose.origin).length() <= cfg.max_translation
        && rotation_angle(&anchor.rotation, &pose.rotation) <= cfg.max_rotation
}

/// Per-session render configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Base (tier `Full`) camera intrinsics of this session's frames.
    pub intrinsics: Intrinsics,
    /// Sampling strategy. Only `CoarseThenFocus` has a coarse pass the
    /// coherence cache can reuse; other strategies always render
    /// exactly.
    pub strategy: SamplingStrategy,
    /// Temporal-coherence policy (default: [`CoherenceConfig::exact`]).
    pub coherence: CoherenceConfig,
}

impl SessionConfig {
    /// A session rendering `strategy` at `intrinsics`, cache off.
    pub fn new(intrinsics: Intrinsics, strategy: SamplingStrategy) -> Self {
        Self {
            intrinsics,
            strategy,
            coherence: CoherenceConfig::exact(),
        }
    }

    /// Sets the temporal-coherence policy.
    pub fn with_coherence(mut self, coherence: CoherenceConfig) -> Self {
        self.coherence = coherence;
        self
    }
}

/// Coarse-cache counters of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frames served from the cached coarse pass.
    pub hits: u64,
    /// Coarse-then-focus frames that re-probed (and re-anchored).
    pub misses: u64,
    /// Frames the cache did not apply to (coherence disabled or a
    /// strategy without a coarse pass).
    pub bypasses: u64,
}

impl CacheStats {
    /// Hit fraction among the frames the cache applied to.
    pub fn hit_rate(&self) -> f64 {
        let eligible = self.hits + self.misses;
        if eligible == 0 {
            0.0
        } else {
            self.hits as f64 / eligible as f64
        }
    }
}

/// The cached coarse pass of one session: the anchor pose/tier it was
/// probed at, and the exported Step ① data (shared `Arc` so a render
/// job can hold it without cloning the weights).
pub(crate) struct CacheEntry {
    pub pose: Pose,
    pub tier: ResolutionTier,
    pub coarse: Arc<CoarseFrame>,
}

/// One live session: scene handle, configuration, coarse cache and
/// counters.
pub(crate) struct SessionState {
    pub scene: Arc<SceneState>,
    pub cfg: SessionConfig,
    pub cache: Mutex<Option<CacheEntry>>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub bypasses: AtomicU64,
}

impl SessionState {
    pub fn new(scene: Arc<SceneState>, cfg: SessionConfig) -> Self {
        Self {
            scene,
            cfg,
            cache: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_divides_intrinsics() {
        let base = Intrinsics::from_fov(64, 48, 0.6);
        let half = ResolutionTier::Half.apply(base);
        assert_eq!((half.width, half.height), (32, 24));
        assert!((half.fx - base.fx / 2.0).abs() < 1e-6);
        assert!((half.cy - base.cy / 2.0).abs() < 1e-6);
        let q = ResolutionTier::Quarter.apply(Intrinsics::from_fov(2, 2, 0.6));
        assert_eq!((q.width, q.height), (1, 1), "floors at one pixel");
    }

    #[test]
    fn coherence_translation_and_rotation_bounds() {
        let cfg = CoherenceConfig::within(0.1, 0.05);
        let anchor = Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        assert!(poses_coherent(&anchor, &anchor, &cfg), "identical pose");
        let near = Pose {
            origin: anchor.origin + Vec3::new(0.05, 0.0, 0.0),
            ..anchor
        };
        assert!(poses_coherent(&anchor, &near, &cfg));
        let far = Pose {
            origin: anchor.origin + Vec3::new(0.5, 0.0, 0.0),
            ..anchor
        };
        assert!(!poses_coherent(&anchor, &far, &cfg));
        // A rotation beyond the bound, translation unchanged.
        let twisted = Pose {
            rotation: Mat3::rotation_y(0.2) * anchor.rotation,
            ..anchor
        };
        assert!(!poses_coherent(&anchor, &twisted, &cfg));
        let slightly = Pose {
            rotation: Mat3::rotation_y(0.01) * anchor.rotation,
            ..anchor
        };
        assert!(poses_coherent(&anchor, &slightly, &cfg));
    }

    #[test]
    fn exact_mode_never_coherent() {
        let cfg = CoherenceConfig::exact();
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        assert!(!poses_coherent(&pose, &pose, &cfg));
    }

    #[test]
    fn rotation_angle_matches_construction() {
        for angle in [0.0f32, 0.1, 0.7, 1.5] {
            let a = Mat3::IDENTITY;
            let b = Mat3::rotation_z(angle);
            assert!(
                (rotation_angle(&a, &b) - angle).abs() < 1e-3,
                "angle {angle}"
            );
        }
    }

    #[test]
    fn cache_stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            bypasses: 10,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
