//! Sessions: per-scene cached state, per-session render configuration
//! and the temporal-coherence policy.

use gen_nerf::config::SamplingStrategy;
use gen_nerf::features::{prepare_sources, SourceViewData};
use gen_nerf::model::GenNerfModel;
use gen_nerf::occupancy::OccupancyGrid;
use gen_nerf::pipeline::CoarseFrame;
use gen_nerf_geometry::{Aabb, Intrinsics, Mat3, Pose, Vec3};
use gen_nerf_scene::View;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The server-wide session table, shared between the front end (which
/// inserts/removes) and every shard scheduler (which resolves queued
/// frames against it).
pub(crate) type SessionMap = Arc<Mutex<HashMap<u64, Arc<SessionState>>>>;

/// Everything about one captured scene that is pose-independent, built
/// **once** and shared (via `Arc`) by every session viewing the scene
/// and every frame in flight: the pretrained model (inference is
/// `&self`/`Sync`), the encoded source-feature pyramids (the Step 0
/// cost [`prepare_sources`] pays), scene bounds/background, and an
/// optional precomputed occupancy grid handle for samplers that want
/// the per-scene sparsity baseline.
///
/// Sessions that share a `SceneState` (by `Arc` identity) are eligible
/// for cross-session admission batching: their frames can ride the
/// same fused GEMM chunks.
pub struct SceneState {
    /// The pretrained generalizable model.
    pub model: GenNerfModel,
    /// Render-ready source views (camera + image + encoded features).
    pub sources: Vec<SourceViewData>,
    /// Scene bounds every camera ray is clipped against.
    pub bounds: Aabb,
    /// Background color for rays that miss or never saturate.
    pub background: Vec3,
    /// Optional precomputed occupancy grid (the per-scene sparsity
    /// baseline of Sec. 2.4). The render pipeline itself never reads
    /// it — coarse-then-focus estimates occupancy at run time, which
    /// is the paper's whole point — but callers running grid-baseline
    /// comparisons against a served scene can stash the one-time build
    /// here instead of regenerating it per frame.
    pub occupancy: Option<OccupancyGrid>,
}

impl SceneState {
    /// Encodes `views` into render-ready sources and bundles the
    /// per-scene state — the one-time cost the server amortizes over
    /// every subsequent frame of every session.
    pub fn prepare(model: GenNerfModel, views: &[View], bounds: Aabb, background: Vec3) -> Self {
        Self {
            model,
            sources: prepare_sources(views),
            bounds,
            background,
            occupancy: None,
        }
    }

    /// Attaches a precomputed occupancy grid handle.
    pub fn with_occupancy(mut self, grid: OccupancyGrid) -> Self {
        self.occupancy = Some(grid);
        self
    }
}

/// Identifies a session created by
/// [`RenderServer::create_session`](crate::RenderServer::create_session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// The raw id value (stable for the lifetime of the server).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Output resolution of one frame request, as a divisor of the
/// session's base intrinsics — the knob a serving deadline trades
/// against. The coarse cache is keyed per tier, so alternating tiers
/// never mixes coarse passes of different ray grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResolutionTier {
    /// The session's native resolution.
    #[default]
    Full,
    /// Both dimensions halved.
    Half,
    /// Both dimensions quartered.
    Quarter,
}

impl ResolutionTier {
    /// The per-axis divisor.
    pub fn divisor(self) -> u32 {
        match self {
            ResolutionTier::Full => 1,
            ResolutionTier::Half => 2,
            ResolutionTier::Quarter => 4,
        }
    }

    /// Scales `base` intrinsics down to this tier (focal length and
    /// principal point shrink with the pixel grid; dimensions floor at
    /// one pixel).
    pub fn apply(self, base: Intrinsics) -> Intrinsics {
        let d = self.divisor();
        let s = d as f32;
        Intrinsics {
            fx: base.fx / s,
            fy: base.fy / s,
            cx: base.cx / s,
            cy: base.cy / s,
            width: (base.width / d).max(1),
            height: (base.height / d).max(1),
        }
    }
}

/// How urgently a frame is needed. The scheduler admits
/// `Interactive` frames ahead of `BestEffort` ones when both are
/// queued (submission order is kept within a class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DeadlineClass {
    /// A head-pose frame someone is waiting on.
    #[default]
    Interactive,
    /// Prefetch/preview work that may yield to interactive frames.
    BestEffort,
}

/// The temporal-coherence policy of one session: when a requested pose
/// is within `max_translation` (world units) **and** `max_rotation`
/// (radians) of a pose whose coarse pass is cached, coarse-then-focus
/// Step ① is reused and only the focus pass runs.
///
/// Cached poses are *anchors*: a hit never re-probes, so drift along a
/// walkthrough is bounded by the deltas themselves rather than
/// accumulating step by step. A session retains **multiple** anchors
/// (a revisited pose hits again without re-probing), LRU-ordered and
/// capped by the session's byte budget
/// ([`SessionConfig::with_cache_budget`]); a miss re-probes and pushes
/// a fresh anchor, evicting the oldest anchors past the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceConfig {
    /// Master switch; `false` (the default) means every frame re-runs
    /// the coarse pass and serving is bitwise-identical to direct
    /// rendering.
    pub enabled: bool,
    /// Maximum camera-center distance to the anchor pose.
    pub max_translation: f32,
    /// Maximum rotation angle (radians) to the anchor pose.
    pub max_rotation: f32,
}

impl CoherenceConfig {
    /// Cache off: every frame is exact. This is the default.
    pub fn exact() -> Self {
        Self {
            enabled: false,
            max_translation: 0.0,
            max_rotation: 0.0,
        }
    }

    /// Cache on with the given pose deltas.
    pub fn within(max_translation: f32, max_rotation: f32) -> Self {
        Self {
            enabled: true,
            max_translation,
            max_rotation,
        }
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self::exact()
    }
}

/// The rotation angle (radians) between two rotation matrices, from
/// `cos θ = (trace(R₁ᵀ R₂) − 1) / 2`.
fn rotation_angle(a: &Mat3, b: &Mat3) -> f32 {
    // trace(R₁ᵀ R₂) is the Frobenius inner product ⟨R₁, R₂⟩.
    let trace = a.row(0).dot(b.row(0)) + a.row(1).dot(b.row(1)) + a.row(2).dot(b.row(2));
    ((trace - 1.0) / 2.0).clamp(-1.0, 1.0).acos()
}

/// Whether `pose` is close enough to `anchor` for the cached coarse
/// pass of `anchor` to stand in for a fresh probing.
pub fn poses_coherent(anchor: &Pose, pose: &Pose, cfg: &CoherenceConfig) -> bool {
    cfg.enabled
        && (anchor.origin - pose.origin).length() <= cfg.max_translation
        && rotation_angle(&anchor.rotation, &pose.rotation) <= cfg.max_rotation
}

/// Default per-session coarse-cache byte budget (8 MiB) — generous for
/// interactive resolutions while still bounding a long walkthrough's
/// anchor set.
pub const DEFAULT_CACHE_BUDGET_BYTES: usize = 8 << 20;

/// Per-session render configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Base (tier `Full`) camera intrinsics of this session's frames.
    pub intrinsics: Intrinsics,
    /// Sampling strategy. Only `CoarseThenFocus` has a coarse pass the
    /// coherence cache can reuse; other strategies always render
    /// exactly.
    pub strategy: SamplingStrategy,
    /// Temporal-coherence policy (default: [`CoherenceConfig::exact`]).
    pub coherence: CoherenceConfig,
    /// Byte cap on the session's retained coarse anchors (measured via
    /// `CoarseFrame::approx_bytes`); the oldest anchors are evicted
    /// past it. Default: [`DEFAULT_CACHE_BUDGET_BYTES`].
    pub cache_budget_bytes: usize,
}

impl SessionConfig {
    /// A session rendering `strategy` at `intrinsics`, cache off.
    pub fn new(intrinsics: Intrinsics, strategy: SamplingStrategy) -> Self {
        Self {
            intrinsics,
            strategy,
            coherence: CoherenceConfig::exact(),
            cache_budget_bytes: DEFAULT_CACHE_BUDGET_BYTES,
        }
    }

    /// Sets the temporal-coherence policy.
    pub fn with_coherence(mut self, coherence: CoherenceConfig) -> Self {
        self.coherence = coherence;
        self
    }

    /// Sets the coarse-cache byte budget (`0` retains no anchors —
    /// every coarse-then-focus frame re-probes).
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget_bytes = bytes;
        self
    }
}

/// Coarse-cache counters of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frames served from a cached coarse pass.
    pub hits: u64,
    /// Coarse-then-focus frames that re-probed (and anchored afresh).
    pub misses: u64,
    /// Frames the cache did not apply to (coherence disabled or a
    /// strategy without a coarse pass).
    pub bypasses: u64,
    /// Anchors evicted to keep the session under its byte budget.
    pub evictions: u64,
    /// Anchors rejected at import because their payload digest or ray
    /// count no longer matched (each is discarded and the frame
    /// re-probes as a miss).
    pub integrity_rejects: u64,
}

impl CacheStats {
    /// Derives instance-level cache counters from a telemetry
    /// snapshot, folding `serve_cache_events_total{outcome}` over
    /// every label set matching `subset` — the registry view of the
    /// per-session counters, summed across the sessions of the
    /// matching server/shards.
    pub fn from_snapshot(snap: &gen_nerf_telemetry::Snapshot, subset: &[(&str, &str)]) -> Self {
        let outcome = |o: &str| {
            let mut s: Vec<(&str, &str)> = subset.to_vec();
            s.push(("outcome", o));
            snap.counter_with("serve_cache_events_total", &s)
        };
        Self {
            hits: outcome("hit"),
            misses: outcome("miss"),
            bypasses: outcome("bypass"),
            evictions: outcome("eviction"),
            integrity_rejects: outcome("integrity_reject"),
        }
    }

    /// Hit fraction among the frames the cache applied to.
    pub fn hit_rate(&self) -> f64 {
        let eligible = self.hits + self.misses;
        if eligible == 0 {
            0.0
        } else {
            self.hits as f64 / eligible as f64
        }
    }
}

/// One cached coarse pass: the anchor pose/tier it was probed at, and
/// the exported Step ① data (shared `Arc` so a render job can hold it
/// without cloning the weights).
pub(crate) struct CacheEntry {
    pub pose: Pose,
    pub tier: ResolutionTier,
    pub coarse: Arc<CoarseFrame>,
}

/// Heap cost one entry charges against the session budget.
fn entry_bytes(entry: &CacheEntry) -> usize {
    coarse_entry_cost(&entry.coarse)
}

/// Heap cost a coarse frame would charge if anchored — what the memory
/// governor reserves *before* the insert, so the process-wide budget
/// is never exceeded even transiently.
pub(crate) fn coarse_entry_cost(coarse: &CoarseFrame) -> usize {
    coarse.approx_bytes() + std::mem::size_of::<CacheEntry>()
}

/// A session's retained coarse anchors: LRU-ordered (front = most
/// recently used), byte-budgeted via `CoarseFrame::approx_bytes`.
#[derive(Default)]
pub(crate) struct CoarseCache {
    /// Anchors, most recently used first.
    entries: VecDeque<CacheEntry>,
    /// Σ `entry_bytes` over `entries`.
    bytes: usize,
    /// Anchors discarded at lookup because their payload digest or
    /// ray count failed validation.
    rejected: u64,
}

impl CoarseCache {
    /// Finds an anchor coherent with `pose` at `tier`; a hit is
    /// promoted to most-recently-used so budget pressure evicts stale
    /// anchors first.
    ///
    /// An import is never trusted implicitly: a candidate whose ray
    /// count differs from `expected_rays` (the tier's pixel grid) or
    /// whose payload digest no longer matches its seal
    /// ([`CoarseFrame::integrity_ok`]) is discarded on the spot —
    /// counted in [`CacheStats::integrity_rejects`] — and the search
    /// continues, so the frame re-probes (a miss) instead of shading
    /// from a stale or corrupted coarse pass.
    pub fn lookup(
        &mut self,
        tier: ResolutionTier,
        pose: &Pose,
        cfg: &CoherenceConfig,
        expected_rays: usize,
    ) -> Option<Arc<CoarseFrame>> {
        loop {
            let idx = self
                .entries
                .iter()
                .position(|e| e.tier == tier && poses_coherent(&e.pose, pose, cfg))?;
            let entry = &self.entries[idx];
            if entry.coarse.n_rays() == expected_rays && entry.coarse.integrity_ok() {
                let entry = self.entries.remove(idx).expect("position is in range");
                let coarse = Arc::clone(&entry.coarse);
                self.entries.push_front(entry);
                return Some(coarse);
            }
            let bad = self.entries.remove(idx).expect("position is in range");
            self.bytes -= entry_bytes(&bad);
            self.rejected += 1;
        }
    }

    /// Anchors discarded by import validation so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Fault-injection hook for the corruption chaos harness: poisons
    /// the payload of every retained anchor (each behind a fresh `Arc`
    /// so in-flight renders holding the old one are untouched) without
    /// resealing, so the next lookup rejects them. Returns how many
    /// anchors were poisoned — zero means the injection was a no-op.
    pub fn corrupt_for_chaos(&mut self, seed: u64) -> u64 {
        let mut poisoned = 0;
        for entry in &mut self.entries {
            let mut frame = (*entry.coarse).clone();
            frame.corrupt_for_chaos(seed.wrapping_add(poisoned));
            entry.coarse = Arc::new(frame);
            poisoned += 1;
        }
        poisoned
    }

    /// Anchors `entry` as most-recently-used and evicts from the LRU
    /// tail until the cache fits `budget_bytes`. Returns the number of
    /// evicted anchors.
    ///
    /// An entry that **alone** exceeds the budget is refused outright
    /// (counted as one eviction): inserting it and then evicting from
    /// the tail would throw away every retained anchor — and then the
    /// oversized entry itself — turning one over-large frame into a
    /// cache wipe plus an evict loop that converges on an empty cache.
    pub fn insert(&mut self, entry: CacheEntry, budget_bytes: usize) -> u64 {
        if entry_bytes(&entry) > budget_bytes {
            return 1;
        }
        self.bytes += entry_bytes(&entry);
        self.entries.push_front(entry);
        let mut evicted = 0u64;
        while self.bytes > budget_bytes {
            let old = self.entries.pop_back().expect("bytes imply entries");
            self.bytes -= entry_bytes(&old);
            evicted += 1;
        }
        evicted
    }

    /// Evicts the LRU-tail anchor, returning the bytes it freed —
    /// `None` when the cache is empty. This is the memory governor's
    /// pressure-eviction primitive: process-wide pressure reclaims the
    /// coldest anchor of the fattest session, one anchor at a time.
    pub fn evict_tail(&mut self) -> Option<usize> {
        let old = self.entries.pop_back()?;
        let freed = entry_bytes(&old);
        self.bytes -= freed;
        Some(freed)
    }

    /// Retained anchors (test introspection).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Bytes currently charged against the session budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// One live session: scene handle, configuration, coarse cache and
/// counters.
pub(crate) struct SessionState {
    pub scene: Arc<SceneState>,
    pub cfg: SessionConfig,
    /// Index of the shard serving this session's scene.
    pub shard: usize,
    /// The scene's circuit breaker — shared (by `Arc`) with every
    /// other session viewing the same `SceneState`, so one session's
    /// failures protect the fleet from the sick scene, not just that
    /// session.
    pub breaker: Arc<crate::supervisor::CircuitBreaker>,
    pub cache: Mutex<CoarseCache>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub bypasses: AtomicU64,
    pub evictions: AtomicU64,
    /// Frames of this session currently owned by the serve tier:
    /// incremented at admission, decremented when the queued frame is
    /// dropped (resolved, failed, shed after queueing, or requeued and
    /// later settled). `remove_session` waits for this to reach zero
    /// before dropping the state, so teardown never races handle
    /// resolution.
    pub pending: Arc<AtomicU64>,
}

/// RAII claim on [`SessionState::pending`]: held by a queued frame for
/// its whole life in the serve tier, released (decrement) wherever the
/// frame is dropped — including panics unwinding through the shard
/// loop, which is exactly the case teardown must survive.
pub(crate) struct PendingGuard(Arc<AtomicU64>);

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl SessionState {
    pub fn new(
        scene: Arc<SceneState>,
        cfg: SessionConfig,
        shard: usize,
        breaker: Arc<crate::supervisor::CircuitBreaker>,
    ) -> Self {
        Self {
            scene,
            cfg,
            shard,
            breaker,
            cache: Mutex::new(CoarseCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pending: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Claims a pending-frame slot; the returned guard releases it on
    /// drop.
    pub fn begin_frame(&self) -> PendingGuard {
        self.pending.fetch_add(1, Ordering::Relaxed);
        PendingGuard(Arc::clone(&self.pending))
    }

    /// Frames of this session currently owned by the serve tier.
    pub fn pending_frames(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            integrity_rejects: self
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .rejected(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_divides_intrinsics() {
        let base = Intrinsics::from_fov(64, 48, 0.6);
        let half = ResolutionTier::Half.apply(base);
        assert_eq!((half.width, half.height), (32, 24));
        assert!((half.fx - base.fx / 2.0).abs() < 1e-6);
        assert!((half.cy - base.cy / 2.0).abs() < 1e-6);
        let q = ResolutionTier::Quarter.apply(Intrinsics::from_fov(2, 2, 0.6));
        assert_eq!((q.width, q.height), (1, 1), "floors at one pixel");
    }

    #[test]
    fn coherence_translation_and_rotation_bounds() {
        let cfg = CoherenceConfig::within(0.1, 0.05);
        let anchor = Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        assert!(poses_coherent(&anchor, &anchor, &cfg), "identical pose");
        let near = Pose {
            origin: anchor.origin + Vec3::new(0.05, 0.0, 0.0),
            ..anchor
        };
        assert!(poses_coherent(&anchor, &near, &cfg));
        let far = Pose {
            origin: anchor.origin + Vec3::new(0.5, 0.0, 0.0),
            ..anchor
        };
        assert!(!poses_coherent(&anchor, &far, &cfg));
        // A rotation beyond the bound, translation unchanged.
        let twisted = Pose {
            rotation: Mat3::rotation_y(0.2) * anchor.rotation,
            ..anchor
        };
        assert!(!poses_coherent(&anchor, &twisted, &cfg));
        let slightly = Pose {
            rotation: Mat3::rotation_y(0.01) * anchor.rotation,
            ..anchor
        };
        assert!(poses_coherent(&anchor, &slightly, &cfg));
    }

    #[test]
    fn exact_mode_never_coherent() {
        let cfg = CoherenceConfig::exact();
        let pose = Pose::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y);
        assert!(!poses_coherent(&pose, &pose, &cfg));
    }

    #[test]
    fn rotation_angle_matches_construction() {
        for angle in [0.0f32, 0.1, 0.7, 1.5] {
            let a = Mat3::IDENTITY;
            let b = Mat3::rotation_z(angle);
            assert!(
                (rotation_angle(&a, &b) - angle).abs() < 1e-3,
                "angle {angle}"
            );
        }
    }

    #[test]
    fn cache_stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            bypasses: 10,
            evictions: 2,
            integrity_rejects: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn coarse_cache_budget_evicts_lru_tail() {
        use gen_nerf::pipeline::CoarseFrame;
        // Build entries through the public render path is overkill
        // here; a synthetic CoarseFrame via serde-free construction is
        // not possible, so exercise the cache with real exports from a
        // tiny render.
        let ds = gen_nerf_scene::Dataset::build(
            gen_nerf_scene::DatasetKind::DeepVoxels,
            "cube",
            0.05,
            3,
            1,
            8,
            3,
        );
        let model = gen_nerf::model::GenNerfModel::new(gen_nerf::config::ModelConfig::fast());
        let sources = gen_nerf::features::prepare_sources(&ds.source_views);
        let renderer = gen_nerf::pipeline::Renderer::new(
            &model,
            &sources,
            SamplingStrategy::coarse_then_focus(4, 4),
            ds.scene.bounds,
            ds.scene.background,
        );
        let export = |k: usize| -> (Pose, Arc<CoarseFrame>) {
            let pose = Pose::look_at(Vec3::new(3.0 + k as f32, 0.5, 3.0), Vec3::ZERO, Vec3::Y);
            let cam = gen_nerf_geometry::Camera::new(Intrinsics::from_fov(8, 8, 0.6), pose);
            let mut images = [gen_nerf_scene::Image::new(0, 0)];
            let mut stats = [gen_nerf::pipeline::RenderStats::default()];
            let fresh = renderer.render_frames_cached(
                std::slice::from_ref(&cam),
                &[None],
                &mut images,
                &mut stats,
            );
            (pose, Arc::new(fresh.into_iter().next().unwrap().unwrap()))
        };
        let (pose0, coarse0) = export(0);
        let entry_cost = coarse0.approx_bytes() + std::mem::size_of::<CacheEntry>();
        let budget = entry_cost * 2; // room for two anchors
        let mut cache = CoarseCache::default();
        let mk = |pose: Pose, coarse: &Arc<CoarseFrame>| CacheEntry {
            pose,
            tier: ResolutionTier::Full,
            coarse: Arc::clone(coarse),
        };
        assert_eq!(cache.insert(mk(pose0, &coarse0), budget), 0);
        let (pose1, coarse1) = export(1);
        assert_eq!(cache.insert(mk(pose1, &coarse1), budget), 0);
        assert_eq!(cache.len(), 2);
        // A hit on the older anchor promotes it.
        let cfg = CoherenceConfig::within(0.01, 0.01);
        let rays = coarse0.n_rays();
        assert!(cache
            .lookup(ResolutionTier::Full, &pose0, &cfg, rays)
            .is_some());
        // Tier mismatch and incoherent poses miss.
        assert!(cache
            .lookup(ResolutionTier::Half, &pose0, &cfg, rays)
            .is_none());
        let (pose2, coarse2) = export(2);
        assert!(cache
            .lookup(ResolutionTier::Full, &pose2, &cfg, rays)
            .is_none());
        // Third insert blows the budget: the LRU tail (pose1, demoted
        // by pose0's promotion) is evicted.
        assert_eq!(cache.insert(mk(pose2, &coarse2), budget), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= budget);
        assert!(cache
            .lookup(ResolutionTier::Full, &pose1, &cfg, rays)
            .is_none());
        assert!(cache
            .lookup(ResolutionTier::Full, &pose0, &cfg, rays)
            .is_some());
        // A zero budget retains nothing — even the fresh insert is
        // evicted and counted.
        let mut empty = CoarseCache::default();
        assert_eq!(empty.insert(mk(pose0, &coarse0), 0), 1);
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.bytes(), 0);

        // An entry that alone exceeds the budget is refused without
        // touching the retained anchors: no cache wipe, no evict loop.
        let mut keep = CoarseCache::default();
        assert_eq!(keep.insert(mk(pose0, &coarse0), budget), 0);
        assert_eq!(keep.insert(mk(pose1, &coarse1), budget), 0);
        let bytes_before = keep.bytes();
        // Shrink the budget seen by this insert below any entry's cost
        // — as a tier change to a much larger frame would relative to
        // the session budget.
        assert_eq!(keep.insert(mk(pose2, &coarse2), 1), 1);
        assert_eq!(keep.len(), 2, "retained anchors survived");
        assert_eq!(keep.bytes(), bytes_before);
        assert!(keep
            .lookup(ResolutionTier::Full, &pose0, &cfg, rays)
            .is_some());
        assert!(keep
            .lookup(ResolutionTier::Full, &pose1, &cfg, rays)
            .is_some());
        assert!(keep
            .lookup(ResolutionTier::Full, &pose2, &cfg, rays)
            .is_none());
    }

    #[test]
    fn eviction_count_is_monotone_across_anchor_churn() {
        // The per-session eviction counter only ever accumulates: churn
        // through a one-anchor budget and through refused oversized
        // inserts, checking the running total never decreases and ends
        // at the exact number of discarded anchors.
        let ds = gen_nerf_scene::Dataset::build(
            gen_nerf_scene::DatasetKind::DeepVoxels,
            "cube",
            0.05,
            3,
            1,
            8,
            3,
        );
        let model = gen_nerf::model::GenNerfModel::new(gen_nerf::config::ModelConfig::fast());
        let sources = gen_nerf::features::prepare_sources(&ds.source_views);
        let renderer = gen_nerf::pipeline::Renderer::new(
            &model,
            &sources,
            SamplingStrategy::coarse_then_focus(4, 4),
            ds.scene.bounds,
            ds.scene.background,
        );
        let pose = Pose::look_at(Vec3::new(3.0, 0.5, 3.0), Vec3::ZERO, Vec3::Y);
        let cam = gen_nerf_geometry::Camera::new(Intrinsics::from_fov(8, 8, 0.6), pose);
        let mut images = [gen_nerf_scene::Image::new(0, 0)];
        let mut stats = [gen_nerf::pipeline::RenderStats::default()];
        let fresh = renderer.render_frames_cached(
            std::slice::from_ref(&cam),
            &[None],
            &mut images,
            &mut stats,
        );
        let coarse = Arc::new(fresh.into_iter().next().unwrap().unwrap());
        let entry_cost = coarse.approx_bytes() + std::mem::size_of::<CacheEntry>();
        let mk = || CacheEntry {
            pose,
            tier: ResolutionTier::Full,
            coarse: Arc::clone(&coarse),
        };
        let mut cache = CoarseCache::default();
        let mut total = 0u64;
        let mut last = 0u64;
        for round in 0..6 {
            // Alternate: a fitting insert into a one-anchor budget
            // (evicts the previous anchor from round 1 on), then a
            // refused oversized insert (counts one, changes nothing).
            total += cache.insert(mk(), entry_cost);
            assert!(total >= last, "counter regressed at round {round}");
            last = total;
            total += cache.insert(mk(), entry_cost - 1);
            assert!(total >= last, "counter regressed at round {round}");
            last = total;
            assert_eq!(cache.len(), 1, "one-anchor budget holds one anchor");
        }
        // 6 fitting inserts (5 evict a predecessor) + 6 refusals.
        assert_eq!(total, 5 + 6);
    }
}
