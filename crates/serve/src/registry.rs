//! The scene registry: maps scene identity to the shard that owns it.
//!
//! Sharding is **per scene**: all sessions viewing one
//! [`SceneState`](crate::SceneState) (by `Arc` identity) route to one
//! shard, which owns their queue, their coherence caches' scheduling,
//! and a private slice of the server's thread budget. Scheduling work
//! therefore never serializes across scenes — and because cross-scene
//! frames were never batchable anyway (admission batching requires a
//! shared scene), splitting them loses nothing.
//!
//! Shards are spun up lazily, one per newly registered scene, up to
//! [`ServerConfig::max_shards`](crate::ServerConfig::max_shards);
//! further scenes share shards round-robin (a shard can serve several
//! scenes — frames of different scenes simply never co-batch).

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use crate::session::SceneState;

/// Identifies one shard of a [`RenderServer`](crate::RenderServer)
/// (dense indices, assigned in scene-registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardId(pub(crate) usize);

impl ShardId {
    /// The raw shard index (stable for the lifetime of the server).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Scene → shard assignment. Keys are `Arc` pointer identities, backed
/// by a `Weak` so a recycled allocation address of a dropped scene is
/// never mistaken for the scene that used to live there.
pub(crate) struct SceneRegistry {
    max_shards: usize,
    /// Scene pointer → (liveness witness, shard index).
    by_scene: HashMap<usize, (Weak<SceneState>, usize)>,
    /// Shards spawned so far (≤ `max_shards`).
    spawned: usize,
    /// Next shard for scenes past `max_shards` (round-robin).
    next_shared: usize,
}

/// What [`SceneRegistry::assign`] resolved: an existing shard or an
/// instruction to spawn the shard at the returned index first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Assignment {
    Existing(usize),
    SpawnNew(usize),
}

impl Assignment {
    pub(crate) fn index(self) -> usize {
        match self {
            Assignment::Existing(i) | Assignment::SpawnNew(i) => i,
        }
    }
}

impl SceneRegistry {
    pub(crate) fn new(max_shards: usize) -> Self {
        Self {
            max_shards: max_shards.max(1),
            by_scene: HashMap::new(),
            spawned: 0,
            next_shared: 0,
        }
    }

    /// Resolves the shard owning `scene`, assigning one if the scene
    /// is new: a fresh shard while fewer than `max_shards` exist,
    /// round-robin over existing shards after that.
    pub(crate) fn assign(&mut self, scene: &Arc<SceneState>) -> Assignment {
        let key = Arc::as_ptr(scene) as usize;
        if let Some((witness, shard)) = self.by_scene.get(&key) {
            // The address may have been recycled by a new scene after
            // the old one was dropped; only a live witness pinning the
            // *same* allocation proves it is the same scene.
            if witness
                .upgrade()
                .is_some_and(|live| Arc::ptr_eq(&live, scene))
            {
                return Assignment::Existing(*shard);
            }
        }
        let assignment = if self.spawned < self.max_shards {
            let idx = self.spawned;
            self.spawned += 1;
            Assignment::SpawnNew(idx)
        } else {
            let idx = self.next_shared;
            self.next_shared = (self.next_shared + 1) % self.max_shards;
            Assignment::Existing(idx)
        };
        self.by_scene
            .insert(key, (Arc::downgrade(scene), assignment.index()));
        assignment
    }

    /// Shards spawned so far.
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.spawned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_nerf::config::ModelConfig;
    use gen_nerf::model::GenNerfModel;
    use gen_nerf_geometry::{Aabb, Vec3};

    fn scene() -> Arc<SceneState> {
        Arc::new(SceneState::prepare(
            GenNerfModel::new(ModelConfig::fast()),
            &[],
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Vec3::ZERO,
        ))
    }

    #[test]
    fn one_shard_per_scene_up_to_cap() {
        let mut reg = SceneRegistry::new(2);
        let (a, b, c) = (scene(), scene(), scene());
        assert_eq!(reg.assign(&a), Assignment::SpawnNew(0));
        assert_eq!(reg.assign(&b), Assignment::SpawnNew(1));
        // Registered scenes stick to their shard.
        assert_eq!(reg.assign(&a), Assignment::Existing(0));
        // Past the cap: shared round-robin, no new spawn.
        assert_eq!(reg.assign(&c), Assignment::Existing(0));
        assert_eq!(reg.shard_count(), 2);
        // Still sticky after sharing.
        assert_eq!(reg.assign(&c), Assignment::Existing(0));
    }

    #[test]
    fn recycled_scene_address_is_not_resurrected() {
        let mut reg = SceneRegistry::new(4);
        let a = scene();
        let key = Arc::as_ptr(&a) as usize;
        assert_eq!(reg.assign(&a), Assignment::SpawnNew(0));
        drop(a);
        // Forge a scene at the same address (simulating allocator
        // reuse): the dead witness must force a fresh assignment.
        let b = scene();
        reg.by_scene
            .insert(Arc::as_ptr(&b) as usize, reg.by_scene[&key].clone());
        let fresh = reg.assign(&b);
        assert_eq!(fresh, Assignment::SpawnNew(1));
    }
}
