//! The render server front end: session registry, scene→shard
//! routing, and submission-time admission control.
//!
//! Scheduling itself lives in [`shard`](crate::shard): every scene's
//! sessions route to one shard, which owns their bounded queue, fair
//! dequeue, and fused batch execution on its own slice of the thread
//! budget. The front end stays thin — resolve the session, apply the
//! shed-or-degrade admission policy against the shard's queue depth,
//! and hand the frame (or an immediate shed error) back through a
//! [`FrameHandle`].

use crate::admission::{admission_decision_supervised, AdmissionDecision, AdmissionStats};
use crate::governor::{GovernorConfig, GovernorStats, MemoryGovernor};
use crate::health::{DrainOutcome, DrainReport, HealthConfig, ShardHealthStats};
use crate::registry::{Assignment, SceneRegistry, ShardId};
use crate::session::{
    CacheStats, DeadlineClass, ResolutionTier, SceneState, SessionConfig, SessionId, SessionMap,
    SessionState,
};
use crate::shard::{force_drain, QueuedFrame, Shard, ShardStats};
use crate::supervisor::{
    BreakerAdmit, BreakerConfig, CircuitBreaker, RetryPolicy, Supervisor, SupervisorConfig,
    SupervisorStats,
};
use gen_nerf::pipeline::RenderStats;
use gen_nerf_geometry::Pose;
use gen_nerf_parallel::partition_threads;
use gen_nerf_scene::Image;
use gen_nerf_telemetry::{AdmissionVerdict, EventKind, Snapshot, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Server-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Render-worker thread budget, partitioned across shards
    /// (every shard keeps at least one worker). Defaults to
    /// [`gen_nerf_parallel::num_threads`].
    pub threads: usize,
    /// Admission window: at most this many queued frames are coalesced
    /// into one fused multi-frame render (per shard).
    pub max_batch: usize,
    /// Shard count ceiling. The first `max_shards` registered scenes
    /// get a shard each; further scenes share shards round-robin.
    pub max_shards: usize,
    /// Bounded-queue admission policy applied per shard.
    pub admission: crate::admission::AdmissionConfig,
    /// Per-class wall-clock frame budgets enforced by the watchdog.
    pub supervision: SupervisorConfig,
    /// Re-render policy for transiently failed frames.
    pub retry: RetryPolicy,
    /// Per-scene circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Shard self-healing: heartbeat budget, sweep cadence, restart
    /// backoff/give-up, poison-streak escalation.
    pub health: HealthConfig,
    /// Process-wide memory budget over session caches and worker
    /// arenas.
    pub governor: GovernorConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: gen_nerf_parallel::num_threads(),
            max_batch: 8,
            max_shards: 8,
            admission: crate::admission::AdmissionConfig::default(),
            supervision: SupervisorConfig::default(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            health: HealthConfig::default(),
            governor: GovernorConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Sets the shard count ceiling (at least one).
    pub fn with_max_shards(mut self, max_shards: usize) -> Self {
        self.max_shards = max_shards.max(1);
        self
    }

    /// Sets the per-shard admission policy.
    pub fn with_admission(mut self, admission: crate::admission::AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the per-class frame deadline budgets.
    pub fn with_supervision(mut self, supervision: SupervisorConfig) -> Self {
        self.supervision = supervision;
        self
    }

    /// Sets the transient-failure retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-scene circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the shard self-healing policy.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Sets the process-wide memory governor policy.
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = governor;
        self
    }
}

/// Injected failure for resilience testing: makes the shard's render
/// path stall or panic mid-frame, exactly where a real defect would.
/// The fault-injection regression pins that a panicking frame resolves
/// to an error (never hangs) and the shard keeps serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the render closure (fails the frame's batch) on
    /// **every** attempt — a persistent defect that exhausts the retry
    /// budget.
    Panic,
    /// Panic on the first render attempt only — a transient defect a
    /// retry recovers from (the retried frame is bitwise identical to
    /// a never-faulted render; the regression suite pins it).
    PanicOnce,
    /// Sleep inside the render closure (holds the shard busy so tests
    /// can build queue depth deterministically). The sleep polls the
    /// batch's cancel token, so a stall longer than the frame's
    /// deadline budget is reclaimed by the watchdog instead of parking
    /// the shard worker.
    Stall(Duration),
    /// Corrupt one GEMM output of the first render attempt (a
    /// supra-tolerance perturbation armed via
    /// `gen_nerf_nn::kernels::integrity::arm_corruption`, seeded by
    /// the payload). With `GEN_NERF_INTEGRITY` enabled the ABFT
    /// checksum detects it, the batch fails over to solo retries, and
    /// the retried frame is bitwise a never-faulted render.
    CorruptGemm(u64),
    /// Poison one composited pixel (NaN) of the first render attempt,
    /// before the pipeline's composite-boundary sentinel — proving
    /// corrupt pixels are caught at the publish boundary, not served.
    CorruptPixels(u64),
    /// Poison the session's retained coarse anchors before the cache
    /// lookup. The import digest check rejects the poisoned anchors as
    /// counted misses, so the frame re-probes instead of shading from
    /// corrupt Step ① data; the frame itself still resolves `Ok`.
    CorruptAnchor(u64),
    /// Kill the shard's scheduler thread when this frame is popped:
    /// the loop hands the frame back to the queue and exits, exactly
    /// like an uncaught scheduler defect. The health sweep detects the
    /// dead worker and restarts it; the frame re-renders under the new
    /// incarnation, bitwise identical to a never-killed render.
    KillShard,
    /// Wedge the shard's scheduler thread for the given duration when
    /// this frame is popped: an uncancellable sleep that starves the
    /// queue while frames wait, exactly the no-heartbeat-with-work
    /// signature the sweep condemns as `Wedged`.
    WedgeShard(Duration),
}

impl Fault {
    /// Whether this fault fires on render attempt `attempt` (0 is the
    /// first) — a pure function, so replaying a fault schedule is
    /// deterministic.
    pub(crate) fn fires(self, attempt: u32) -> bool {
        match self {
            Fault::Panic | Fault::Stall(_) => true,
            Fault::PanicOnce
            | Fault::CorruptGemm(_)
            | Fault::CorruptPixels(_)
            | Fault::CorruptAnchor(_) => attempt == 0,
            // Intercepted (and cleared) by the shard loop before any
            // render attempt exists.
            Fault::KillShard | Fault::WedgeShard(_) => false,
        }
    }

    /// Whether this fault targets the shard's scheduler thread rather
    /// than the frame's render (shard-level faults are intercepted at
    /// pop, never batched with other frames).
    pub(crate) fn is_shard_level(self) -> bool {
        matches!(self, Fault::KillShard | Fault::WedgeShard(_))
    }
}

/// One frame request: a head pose plus serving knobs.
#[derive(Debug, Default)]
pub struct FrameRequest {
    /// Camera pose to render from.
    pub pose: Pose,
    /// Output resolution tier (divisor of the session intrinsics).
    pub tier: ResolutionTier,
    /// Scheduling class.
    pub deadline: DeadlineClass,
    /// Optional recycled frame buffer; the server renders into it
    /// (reusing its allocation) instead of allocating a fresh image.
    pub reuse: Option<Image>,
    /// Fault injection (tests only); `None` in production.
    pub fault: Option<Fault>,
}

impl FrameRequest {
    /// An interactive full-resolution request for `pose`.
    pub fn new(pose: Pose) -> Self {
        Self {
            pose,
            ..Self::default()
        }
    }

    /// Selects the resolution tier.
    pub fn with_tier(mut self, tier: ResolutionTier) -> Self {
        self.tier = tier;
        self
    }

    /// Selects the deadline class.
    pub fn with_deadline(mut self, deadline: DeadlineClass) -> Self {
        self.deadline = deadline;
        self
    }

    /// Supplies a frame buffer to render into (allocation recycling
    /// for steady-state serving loops).
    pub fn with_buffer(mut self, image: Image) -> Self {
        self.reuse = Some(image);
        self
    }

    /// Injects a fault into this frame's render (resilience tests).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// How the coarse cache treated one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Coarse pass reused from the session's anchor pose.
    Hit,
    /// Coarse pass re-probed (and the anchor replaced).
    Miss,
    /// Cache not applicable (coherence disabled or no coarse pass in
    /// the strategy).
    Bypass,
}

/// Serving-side measurements of one frame.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Submission to job start (queueing + admission).
    pub queue_wait: Duration,
    /// Job start to completion (shared by every frame in the batch).
    pub render_time: Duration,
    /// Submission to completion.
    pub latency: Duration,
    /// Coarse-cache outcome.
    pub cache: CacheOutcome,
    /// Frames co-scheduled in the same fused render job.
    pub batched_frames: usize,
    /// Shard that served the frame.
    pub shard: usize,
    /// Whether admission control lowered the resolution tier below
    /// the request (overload degradation).
    pub degraded: bool,
    /// Tier the frame was actually rendered at.
    pub tier: ResolutionTier,
}

/// A completed frame.
#[derive(Debug)]
pub struct FrameResult {
    /// The rendered image (the recycled buffer when one was supplied).
    pub image: Image,
    /// Render-side instrumentation (cache hits skip Step ① work, so
    /// `coarse_points` is zero for them).
    pub stats: RenderStats,
    /// Serving-side measurements.
    pub serve: ServeStats,
}

/// Why a frame did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the frame: the shard queue was at
    /// capacity (BestEffort) or the Interactive hard bound.
    Shed {
        /// The refused frame's scheduling class.
        class: DeadlineClass,
    },
    /// The frame failed while rendering (a panic in the render path,
    /// with the retry budget exhausted) or its session was removed
    /// with the frame still queued.
    Failed(String),
    /// The frame exceeded its [`DeadlineClass`] wall-clock budget and
    /// the watchdog resolved it (cancelling its render if one was in
    /// flight).
    TimedOut {
        /// The overdue frame's scheduling class.
        class: DeadlineClass,
    },
    /// The scene's circuit breaker is open: recent frames failed at a
    /// rate that tripped it, and the cooldown/probing has not closed
    /// it yet. Submissions shed instantly instead of burning render
    /// budget on a sick scene.
    CircuitOpen,
    /// The server is draining ([`RenderServer::drain`] was called):
    /// admission is closed, and frames still queued when the drain
    /// deadline expired were force-failed with this error.
    Draining,
    /// The frame's shard exhausted its restart budget and was declared
    /// down: its queued frames failed with this error and further
    /// submissions for its scenes shed instantly.
    ShardDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed { class } => write!(f, "frame shed under load ({class:?})"),
            ServeError::Failed(msg) => write!(f, "render failed: {msg}"),
            ServeError::TimedOut { class } => {
                write!(f, "frame exceeded its deadline budget ({class:?})")
            }
            ServeError::CircuitOpen => write!(f, "scene circuit breaker open"),
            ServeError::Draining => write!(f, "server draining"),
            ServeError::ShardDown => {
                write!(f, "shard down: restart budget exhausted")
            }
        }
    }
}

/// A slot's interior: the outcome (until the caller consumes it) and a
/// sticky `resolved` latch. The latch is what makes resolution
/// first-write-wins *across* consumption: once any writer resolved the
/// slot, every later [`fulfill`] is a no-op — even after a waiter took
/// the outcome out — so a render finishing after its watchdog timeout
/// can never resurrect a consumed handle.
#[derive(Default)]
struct SlotState {
    outcome: Option<Result<FrameResult, ServeError>>,
    resolved: bool,
}

pub(crate) struct Slot {
    result: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Self {
        Self {
            result: Mutex::new(SlotState::default()),
            ready: Condvar::new(),
        }
    }

    /// Whether the frame has resolved (by render, error, shed or
    /// timeout) — shards use this to skip frames the watchdog already
    /// answered for.
    pub(crate) fn is_resolved(&self) -> bool {
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resolved
    }
}

/// The caller's side of one submitted frame: poll it, or block on it.
pub struct FrameHandle {
    slot: Arc<Slot>,
}

impl FrameHandle {
    /// Blocks until the frame resolves; returns the shed/failure error
    /// instead of panicking. This is the overload-aware variant a load
    /// generator uses — shed frames resolve immediately.
    pub fn wait_result(self) -> Result<FrameResult, ServeError> {
        let mut guard = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.outcome.take() {
                return outcome;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until the frame resolves or `timeout` elapses: `Some`
    /// with the outcome, `None` on timeout (the handle stays usable —
    /// wait again, poll, or keep it; the server still owns the frame
    /// and its watchdog deadline). This is the bounded wait serving
    /// loops and tests use instead of hand-rolled spin loops.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<FrameResult, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.outcome.take() {
                return Some(outcome);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            guard = self
                .slot
                .ready
                .wait_timeout(guard, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Blocks until the frame completes.
    ///
    /// # Panics
    ///
    /// Panics if the frame was shed by admission control, the server
    /// failed while rendering it (a render panic), or it shut down
    /// before reaching it. Use [`FrameHandle::wait_result`] when shed
    /// frames are expected.
    pub fn wait(self) -> FrameResult {
        self.wait_result()
            .unwrap_or_else(|e| panic!("render server failed: {e}"))
    }

    /// Takes the result if the frame has resolved (non-blocking).
    ///
    /// # Panics
    ///
    /// Panics if the frame was shed or the server failed while
    /// rendering it.
    pub fn poll(&self) -> Option<FrameResult> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .outcome
            .take()
            .map(|outcome| outcome.unwrap_or_else(|e| panic!("render server failed: {e}")))
    }

    /// Whether the frame has resolved (without consuming the result).
    pub fn is_ready(&self) -> bool {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .outcome
            .is_some()
    }
}

/// Resolves `slot` with `outcome` — **first write wins**. Returns
/// whether this call was the resolving one; a `false` means another
/// writer (usually the watchdog's timeout) got there first and the
/// outcome was discarded. Supervised serving relies on this being a
/// race-free latch: exactly one of {render result, render error, shed,
/// timeout} reaches the caller.
pub(crate) fn fulfill(slot: &Slot, outcome: Result<FrameResult, ServeError>) -> bool {
    let mut guard = slot.result.lock().unwrap_or_else(|e| e.into_inner());
    if guard.resolved {
        return false;
    }
    guard.resolved = true;
    guard.outcome = Some(outcome);
    drop(guard);
    slot.ready.notify_all();
    true
}

pub(crate) fn fulfill_error(slot: &Slot, msg: &str) -> bool {
    fulfill(slot, Err(ServeError::Failed(msg.to_string())))
}

/// Scene→shard assignment plus the spawned shards, guarded together
/// so lazily spawning a shard and recording its scene is atomic.
struct Topology {
    registry: SceneRegistry,
    shards: Vec<Shard>,
}

/// The multi-session, scene-sharded render server. See the crate docs
/// for the architecture; in short: [`RenderServer::create_session`]
/// routes a scene to a shard (spawning it on first sight),
/// [`RenderServer::submit`] applies admission control against that
/// shard's bounded queue and returns a [`FrameHandle`]; the shard
/// thread fair-dequeues, coalesces compatible frames into fused
/// multi-frame renders on its own persistent worker pool, and fulfills
/// the handles.
///
/// Dropping the server closes every shard queue, drains every frame
/// already admitted, and joins the shard threads.
pub struct RenderServer {
    cfg: ServerConfig,
    /// Shared with the supervisor's health-sweep hook (which holds
    /// only a `Weak`, so the server still owns the topology's
    /// lifetime).
    topology: Arc<Mutex<Topology>>,
    sessions: SessionMap,
    next_session: AtomicU64,
    /// Per-scene circuit breakers, keyed like the registry (Arc
    /// pointer + Weak liveness witness). Sessions sharing a scene
    /// share its breaker: scene health is a property of the scene, not
    /// of any one viewer.
    breakers: Mutex<HashMap<usize, (Weak<SceneState>, Arc<CircuitBreaker>)>>,
    supervisor: Arc<Supervisor>,
    /// The process-wide memory governor shared by every shard.
    governor: Arc<MemoryGovernor>,
    /// Latched by [`RenderServer::drain`]: admission closed for good.
    draining: AtomicBool,
    /// Process-unique instance id: every metric this server registers
    /// carries `instance = <id>` so concurrent servers (unit tests!)
    /// never fold each other's counters into their stats views.
    instance: u64,
}

impl RenderServer {
    /// Builds the server front end. Shards (and their worker pools)
    /// spawn lazily as scenes are registered.
    pub fn new(cfg: ServerConfig) -> Self {
        Self::with_clock(cfg, gen_nerf_telemetry::Clock::real())
    }

    /// Builds the server with an explicit [`Clock`] behind the
    /// watchdog's deadline math — pass a
    /// [`Clock::virtual_clock`](gen_nerf_telemetry::Clock::virtual_clock)
    /// to drive timeouts deterministically under test.
    ///
    /// [`Clock`]: gen_nerf_telemetry::Clock
    pub fn with_clock(cfg: ServerConfig, clock: gen_nerf_telemetry::Clock) -> Self {
        let instance = gen_nerf_telemetry::next_instance_id();
        let topology = Arc::new(Mutex::new(Topology {
            registry: SceneRegistry::new(cfg.max_shards),
            shards: Vec::new(),
        }));
        let sweep_clock = clock.clone();
        let supervisor = Arc::new(Supervisor::spawn(instance, clock));
        // The health sweep rides the watchdog thread. It holds only a
        // Weak topology reference: once the server drops its Arc, the
        // sweep degrades to a no-op instead of keeping shards alive.
        let sweep_topology = Arc::downgrade(&topology);
        supervisor.set_sweep(
            cfg.health.sweep_interval,
            Box::new(move || {
                let Some(topology) = sweep_topology.upgrade() else {
                    return;
                };
                let now = sweep_clock.now();
                let mut topology = topology.lock().unwrap_or_else(|e| e.into_inner());
                for shard in &mut topology.shards {
                    shard.sweep(now);
                }
            }),
        );
        Self {
            cfg,
            topology,
            sessions: Arc::new(Mutex::new(HashMap::new())),
            next_session: AtomicU64::new(1),
            breakers: Mutex::new(HashMap::new()),
            supervisor,
            governor: Arc::new(MemoryGovernor::new(&cfg.governor)),
            draining: AtomicBool::new(false),
            instance,
        }
    }

    /// The circuit breaker owning `scene`'s health, created on first
    /// sight (same Weak-witnessed pointer keying as the registry, so a
    /// recycled allocation never inherits a dead scene's trip
    /// history).
    fn breaker_for(&self, scene: &Arc<SceneState>) -> Arc<CircuitBreaker> {
        let key = Arc::as_ptr(scene) as usize;
        let mut breakers = self.breakers.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((witness, breaker)) = breakers.get(&key) {
            if witness
                .upgrade()
                .is_some_and(|live| Arc::ptr_eq(&live, scene))
            {
                return Arc::clone(breaker);
            }
        }
        let breaker = Arc::new(CircuitBreaker::new(self.cfg.breaker));
        breakers.insert(key, (Arc::downgrade(scene), Arc::clone(&breaker)));
        breaker
    }

    /// Registers a session viewing `scene`, routed to the scene's
    /// shard (spawned now if this is the scene's first session).
    /// Sessions sharing a scene (same `Arc`) and sampling strategy
    /// batch together on that shard.
    pub fn create_session(&self, scene: Arc<SceneState>, cfg: SessionConfig) -> SessionId {
        let shard = {
            let mut topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
            let assignment = topology.registry.assign(&scene);
            if let Assignment::SpawnNew(idx) = assignment {
                debug_assert_eq!(idx, topology.shards.len());
                let pool_threads = partition_threads(self.cfg.threads, self.cfg.max_shards)[idx];
                topology.shards.push(Shard::spawn(
                    self.instance,
                    idx,
                    pool_threads,
                    self.cfg.max_batch,
                    Arc::clone(&self.sessions),
                    Arc::clone(&self.supervisor),
                    self.cfg.retry,
                    self.cfg.health,
                    Arc::clone(&self.governor),
                ));
            }
            assignment.index()
        };
        let breaker = self.breaker_for(&scene);
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SessionState::new(scene, cfg, shard, breaker));
        // Make the session's cache evictable under global memory
        // pressure.
        self.governor.register(&state);
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, state);
        SessionId(id)
    }

    /// Enqueues a frame request through admission control; returns
    /// immediately with a handle. Overloaded shards shed BestEffort
    /// frames (the handle resolves at once with [`ServeError::Shed`])
    /// and degrade Interactive frames to the cached-coarse tier before
    /// shedding them at the hard bound. A scene whose circuit breaker
    /// is open sheds instantly with [`ServeError::CircuitOpen`].
    /// Admitted frames are watched against their class's wall-clock
    /// budget: the handle always resolves, at worst with
    /// [`ServeError::TimedOut`].
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn submit(&self, session: SessionId, req: FrameRequest) -> FrameHandle {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session.0)
            .cloned();
        let state = state.expect("unknown session");
        let slot = Arc::new(Slot::new());
        let handle = FrameHandle {
            slot: Arc::clone(&slot),
        };
        let (ctl, shared) = {
            let topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
            let shard = &topology.shards[state.shard];
            (Arc::clone(&shard.ctl), Arc::clone(&shard.shared))
        };

        let now = self.supervisor.clock().now();
        let frame_id = gen_nerf_telemetry::next_frame_id();
        shared.submitted.inc();
        shared.ring.record(
            frame_id,
            EventKind::Submit,
            class_code(req.deadline),
            session.0,
        );
        let depth_now = shared.depth.get().max(0) as u64;
        // Lifecycle gates come before queue admission: a draining
        // server, a down shard, and global memory pressure are all
        // terminal verdicts no queue state can override.
        if self.draining.load(Ordering::SeqCst) {
            shared.shed_draining.inc();
            shared.ring.record(
                frame_id,
                EventKind::Admit,
                AdmissionVerdict::Shed as u64,
                depth_now,
            );
            fulfill(&slot, Err(ServeError::Draining));
            return handle;
        }
        if ctl.down.load(Ordering::Relaxed) {
            shared.shed_shard_down.inc();
            shared.ring.record(
                frame_id,
                EventKind::Admit,
                AdmissionVerdict::Shed as u64,
                depth_now,
            );
            fulfill(&slot, Err(ServeError::ShardDown));
            return handle;
        }
        if req.deadline == DeadlineClass::BestEffort && self.governor.under_pressure() {
            // BestEffort sheds first under memory pressure; anchors of
            // interactive traffic keep their budget.
            self.governor.note_pressure_shed();
            shared.shed_memory.inc();
            shared.ring.record(
                frame_id,
                EventKind::Admit,
                AdmissionVerdict::Shed as u64,
                depth_now,
            );
            fulfill(
                &slot,
                Err(ServeError::Shed {
                    class: req.deadline,
                }),
            );
            return handle;
        }
        let breaker_admit = state.breaker.admit(now);
        let probe = matches!(breaker_admit, BreakerAdmit::Probe);

        // Claim a queue slot, then let the policy veto it. The gauge
        // counts admitted-not-yet-scheduled frames; shed frames give
        // their claim back immediately.
        let depth = shared.depth.inc().max(0) as usize;
        let mut tier = req.tier;
        let mut degraded = false;
        let admit = |verdict: AdmissionVerdict| {
            shared
                .ring
                .record(frame_id, EventKind::Admit, verdict as u64, depth as u64);
        };
        match admission_decision_supervised(&self.cfg.admission, req.deadline, depth, breaker_admit)
        {
            AdmissionDecision::Admit => admit(AdmissionVerdict::Admit),
            AdmissionDecision::Degrade => {
                // The cached-coarse tier: quarter resolution, where a
                // session's cached coarse passes are cheapest to
                // refresh. Never upgrade a request that was already
                // coarser than the degrade target.
                if tier.divisor() < ResolutionTier::Quarter.divisor() {
                    tier = ResolutionTier::Quarter;
                }
                degraded = true;
                shared.degraded.inc();
                admit(AdmissionVerdict::Degrade);
            }
            AdmissionDecision::Break => {
                shared.depth.dec();
                shared.shed_circuit.inc();
                // A terminal verdict: the frame never reaches a shard,
                // so the Admit event closes its trace.
                admit(AdmissionVerdict::Break);
                fulfill(&slot, Err(ServeError::CircuitOpen));
                return handle;
            }
            AdmissionDecision::Shed => {
                shared.depth.dec();
                if probe {
                    // The breaker admitted a probe the queue refused:
                    // give the quota slot back so the next submission
                    // can probe instead.
                    state.breaker.abort_probe();
                }
                match req.deadline {
                    DeadlineClass::BestEffort => shared.shed_best_effort.inc(),
                    DeadlineClass::Interactive => shared.shed_interactive.inc(),
                };
                admit(AdmissionVerdict::Shed);
                fulfill(
                    &slot,
                    Err(ServeError::Shed {
                        class: req.deadline,
                    }),
                );
                return handle;
            }
        }
        shared.admitted.inc();
        let watch = self.supervisor.watch(
            &slot,
            req.deadline,
            now,
            &self.cfg.supervision,
            frame_id,
            &shared.ring,
        );
        let frame = QueuedFrame {
            frame: frame_id,
            session: session.0,
            pose: req.pose,
            tier,
            deadline: req.deadline,
            degraded,
            reuse: req.reuse,
            fault: req.fault,
            slot,
            submitted: now,
            deadline_at: now + self.cfg.supervision.budget(req.deadline),
            watch,
            probe,
            breaker: Arc::clone(&state.breaker),
            pending: state.begin_frame(),
        };
        let class = frame.deadline;
        let tenant = frame.session;
        {
            let mut qs = ctl.queue.lock().unwrap_or_else(|e| e.into_inner());
            if qs.closed {
                // Shutdown raced the submission: give everything back
                // and fail the handle instead of stranding the frame
                // in a queue no worker will ever serve.
                drop(qs);
                shared.depth.dec();
                if probe {
                    frame.breaker.abort_probe();
                }
                self.supervisor.resolve(watch);
                crate::shard::fail_frame_with(
                    &frame,
                    &shared,
                    ServeError::Failed("server shutting down".to_string()),
                );
                return handle;
            }
            qs.q.push(class, tenant, frame);
        }
        ctl.ready.notify_one();
        handle
    }

    /// Ends a session: drops its cached coarse pass, its scene handle
    /// (the `SceneState` is freed once the last session sharing it
    /// ends) and its counters, and rejects future submissions for the
    /// id. Frames of the session already queued fail ("session
    /// removed"); removal then **waits for every in-flight frame of
    /// the session to settle** before releasing the session's cache
    /// bytes back to the memory governor — the handle a caller still
    /// holds always resolves, and the governor's books never go
    /// negative on a racing insert.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server (or was
    /// already removed).
    pub fn remove_session(&self, session: SessionId) {
        let removed = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session.0);
        // Panic outside the lock so a misuse stays contained to the
        // misusing thread instead of poisoning the shards' map.
        let state = removed.expect("unknown session");
        // Drain-then-drop: every submitted frame holds a pending guard
        // until its handle resolves *and* the shard is done touching
        // the session (cache inserts included). The bound is a safety
        // net only — frames resolve at worst at their watchdog
        // deadline, well inside it.
        let deadline = Instant::now() + Duration::from_secs(120);
        while state.pending_frames() > 0 {
            if Instant::now() >= deadline {
                debug_assert!(false, "session frames never settled");
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Quiesced: empty the cache under its lock and give the bytes
        // back in one step, so a concurrent governor eviction can
        // never double-count them.
        let freed = {
            let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
            let mut freed = 0usize;
            while let Some(bytes) = cache.evict_tail() {
                freed += bytes;
            }
            freed
        };
        if freed > 0 {
            self.governor.discharge(freed as u64);
        }
    }

    /// Stops admission for good and waits for every shard to finish
    /// its queued and in-flight work, up to `deadline` per call (the
    /// budget is shared across shards, measured from entry). Frames
    /// still unfinished when the budget expires are force-failed with
    /// [`ServeError::Draining`], so **every** outstanding handle has
    /// resolved by the time this returns. Draining is terminal:
    /// submissions after (or during) a drain resolve immediately with
    /// [`ServeError::Draining`].
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        self.draining.store(true, Ordering::SeqCst);
        let hard_deadline = Instant::now() + deadline;
        // Snapshot the shard handles, then poll without the topology
        // lock: the health sweep (watchdog thread) takes that lock on
        // its own cadence, and a drain must not starve it.
        let shards: Vec<_> = {
            let topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
            topology
                .shards
                .iter()
                .map(|s| (Arc::clone(&s.ctl), Arc::clone(&s.shared)))
                .collect()
        };
        let mut outcomes = Vec::with_capacity(shards.len());
        for (index, (ctl, shared)) in shards.into_iter().enumerate() {
            let started = Instant::now();
            // Phase 1: let the shard finish naturally.
            let mut drained = loop {
                let idle = ctl.queued() == 0 && ctl.inflight.load(Ordering::SeqCst) == 0;
                if idle {
                    break true;
                }
                if Instant::now() >= hard_deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            let mut forced = 0u64;
            if !drained {
                // Phase 2: deadline blown. Fail everything still
                // queued, cancel the in-flight batch, and give the
                // worker a grace period to unwind (its frames resolve
                // through the retry/fail path).
                forced = force_drain(&ctl, &shared, &self.supervisor);
                if let Some(cancel) = ctl
                    .current_cancel
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                {
                    cancel.cancel();
                }
                let grace = Instant::now()
                    + self
                        .cfg
                        .supervision
                        .interactive_budget
                        .max(self.cfg.supervision.best_effort_budget)
                    + Duration::from_secs(5);
                while ctl.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < grace {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // A condemned/wedged incarnation may have requeued its
                // frame during the grace wait; sweep those stragglers
                // too.
                forced += force_drain(&ctl, &shared, &self.supervisor);
                drained = ctl.inflight.load(Ordering::SeqCst) == 0;
            }
            shared
                .ring
                .record(0, EventKind::Drain, index as u64, forced);
            outcomes.push(DrainOutcome {
                shard: index,
                drained,
                forced,
                waited: started.elapsed(),
            });
        }
        DrainReport { outcomes }
    }

    /// Lifecycle counters and current health verdict of every spawned
    /// shard, in shard order.
    pub fn shard_health(&self) -> Vec<ShardHealthStats> {
        let now = self.supervisor.clock().now();
        self.topology
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shards
            .iter()
            .map(|s| s.health_stats(now))
            .collect()
    }

    /// Counters of the process-wide memory governor (budget, usage,
    /// peak, evictions, refusals, pressure sheds).
    pub fn governor_stats(&self) -> GovernorStats {
        self.governor.stats()
    }

    /// Coarse-cache counters of a session.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn cache_stats(&self, session: SessionId) -> CacheStats {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session.0)
            .cloned();
        state.expect("unknown session").cache_stats()
    }

    /// Shards spawned so far (≤ `max_shards`; one per registered
    /// scene until the ceiling).
    pub fn shard_count(&self) -> usize {
        self.topology
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shards
            .len()
    }

    /// The shard serving `session`'s scene.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn shard_of(&self, session: SessionId) -> ShardId {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session.0)
            .cloned();
        ShardId(state.expect("unknown session").shard)
    }

    /// A snapshot of one shard's queue depth and counters.
    ///
    /// # Panics
    ///
    /// Panics if `shard` has not been spawned.
    pub fn shard_stats(&self, shard: ShardId) -> ShardStats {
        self.topology
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shards
            .get(shard.0)
            .expect("shard exists")
            .stats()
    }

    /// Admission counters summed over every shard — derived by folding
    /// the telemetry snapshot over this server's `instance` label, so
    /// the aggregate can never drift from the per-shard registry
    /// counters it is a view of.
    pub fn admission_stats(&self) -> AdmissionStats {
        let inst = self.instance.to_string();
        AdmissionStats::from_snapshot(&gen_nerf_telemetry::snapshot(), &[("instance", &inst)])
    }

    /// This server's process-unique telemetry instance id: every
    /// metric it registers carries `instance = <id>`.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// A typed snapshot of the process-global metrics registry.
    /// Includes every instrumented layer (nn kernel dispatch/ABFT,
    /// core render stages, serve counters of *all* server instances);
    /// filter serve metrics to this server with
    /// `[("instance", &server.instance().to_string())]`.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        gen_nerf_telemetry::snapshot()
    }

    /// Drains every shard's frame-lifecycle trace ring, concatenated
    /// in shard order. Call at a quiet point (after the handles you
    /// care about resolved) for complete traces.
    pub fn drain_traces(&self) -> Vec<TraceEvent> {
        let topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = Vec::new();
        for shard in &topology.shards {
            events.extend(shard.shared.ring.drain());
        }
        events
    }

    /// Trace events overwritten before any drain saw them, summed over
    /// every shard ring (zero at test scale; nonzero means traces are
    /// incomplete and the rings need draining more often).
    pub fn trace_drops(&self) -> u64 {
        let topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
        topology
            .shards
            .iter()
            .map(|s| s.shared.ring.dropped())
            .sum()
    }

    /// The smallest per-shard trace ring capacity, in events. A
    /// worst-case placement sends every frame to one shard, so a
    /// workload whose event volume stays under this bound is
    /// guaranteed complete traces; beyond it, truncation (with
    /// counted drops) is expected.
    pub fn trace_capacity(&self) -> usize {
        self.topology
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shards
            .iter()
            .map(|s| s.shared.ring.capacity())
            .min()
            .unwrap_or(0)
    }

    /// Snapshots of every spawned shard, in shard-index order.
    pub fn shard_stats_all(&self) -> Vec<ShardStats> {
        self.topology
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shards
            .iter()
            .map(Shard::stats)
            .collect()
    }

    /// Watchdog counters: frames watched, per-class timeouts, frames
    /// currently under watch.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.supervisor.stats()
    }

    /// The circuit breaker guarding `session`'s scene — shared by
    /// every session viewing that scene. Introspection for tests and
    /// load harnesses (state, trip and shed counts).
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn scene_breaker(&self, session: SessionId) -> Arc<CircuitBreaker> {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session.0)
            .cloned();
        Arc::clone(&state.expect("unknown session").breaker)
    }
}

/// Trace payload code of a deadline class (`Submit.a`).
fn class_code(class: DeadlineClass) -> u64 {
    match class {
        DeadlineClass::Interactive => 0,
        DeadlineClass::BestEffort => 1,
    }
}

impl Drop for RenderServer {
    fn drop(&mut self) {
        // Closing every shard queue lets the shards drain what's
        // admitted and exit their receive loops; `Shard::shutdown`
        // joins each thread.
        let mut topology = self.topology.lock().unwrap_or_else(|e| e.into_inner());
        for shard in &mut topology.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::session::CoherenceConfig;
    use gen_nerf::config::{ModelConfig, SamplingStrategy};
    use gen_nerf::model::GenNerfModel;
    use gen_nerf_geometry::Vec3;
    use gen_nerf_scene::{Dataset, DatasetKind};

    fn scene() -> (Dataset, Arc<SceneState>) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let model = GenNerfModel::new(ModelConfig::fast());
        let scene = Arc::new(SceneState::prepare(
            model,
            &ds.source_views,
            ds.scene.bounds,
            ds.scene.background,
        ));
        (ds, scene)
    }

    fn ctf() -> SamplingStrategy {
        SamplingStrategy::coarse_then_focus(6, 6)
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let frame = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(frame.image.pixel_count() as u64, frame.stats.rays);
        assert_eq!(frame.serve.cache, CacheOutcome::Bypass);
        assert!(frame.serve.latency >= frame.serve.render_time);
        assert!(frame.serve.batched_frames >= 1);
        assert!(!frame.serve.degraded);
        assert_eq!(frame.serve.shard, 0);
        assert_eq!(server.shard_count(), 1);
    }

    #[test]
    fn poll_and_wait_timeout_round_trip() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let handle = server.submit(session, FrameRequest::new(cam.pose));
        // poll() is non-blocking; wait_timeout() is the bounded wait
        // that replaces hand-rolled poll loops.
        let result = match handle.poll() {
            Some(r) => r,
            None => handle
                .wait_timeout(Duration::from_secs(10))
                .expect("frame resolves well within 10 s")
                .expect("render succeeds"),
        };
        assert!(result.image.pixel_count() > 0);
    }

    #[test]
    fn wait_timeout_expires_and_leaves_the_handle_usable() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        // The stall keeps the frame unresolved past the first bounded
        // wait (well under the 10 s Interactive budget, so the
        // watchdog never fires).
        let handle = server.submit(
            session,
            FrameRequest::new(cam.pose).with_fault(Fault::Stall(Duration::from_millis(300))),
        );
        assert!(
            handle.wait_timeout(Duration::from_millis(1)).is_none(),
            "stalled frame resolved implausibly fast"
        );
        let result = handle
            .wait_timeout(Duration::from_secs(10))
            .expect("stall ends well within 10 s")
            .expect("stalled (not faulted) render succeeds");
        assert!(result.image.pixel_count() > 0);
    }

    #[test]
    fn repeated_pose_hits_cache() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        let first = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let second = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(first.serve.cache, CacheOutcome::Miss);
        assert_eq!(second.serve.cache, CacheOutcome::Hit);
        // Identical pose ⇒ identical pixels, while Step ① was skipped.
        assert_eq!(first.image.as_slice(), second.image.as_slice());
        assert!(first.stats.coarse_points > 0);
        assert_eq!(second.stats.coarse_points, 0);
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn revisited_pose_hits_a_retained_anchor() {
        // Multi-anchor retention: A, far-B, A again — the second A
        // must hit A's retained anchor (the single-anchor cache of old
        // would have re-probed).
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let far = ds
            .eval_views
            .get(1)
            .map(|v| v.camera.pose)
            .unwrap_or_else(|| {
                gen_nerf_geometry::Pose::look_at(Vec3::new(-3.0, 1.0, -3.0), Vec3::ZERO, Vec3::Y)
            });
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        let a1 = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let b = server.submit(session, FrameRequest::new(far)).wait();
        let a2 = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(a1.serve.cache, CacheOutcome::Miss);
        assert_eq!(b.serve.cache, CacheOutcome::Miss);
        assert_eq!(a2.serve.cache, CacheOutcome::Hit, "revisit did not hit");
        assert_eq!(a1.image.as_slice(), a2.image.as_slice());
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
    }

    #[test]
    fn cache_budget_caps_anchors_and_counts_evictions() {
        // A one-byte budget evicts every fresh anchor immediately:
        // identical repeated poses keep missing, and the eviction
        // counter records each discarded anchor.
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02))
                .with_cache_budget(1),
        );
        let first = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let second = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(first.serve.cache, CacheOutcome::Miss);
        assert_eq!(
            second.serve.cache,
            CacheOutcome::Miss,
            "anchor survived a 1-byte budget"
        );
        // Budget off the cache path entirely: pixels still exact.
        assert_eq!(first.image.as_slice(), second.image.as_slice());
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn tier_change_is_a_cache_miss() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        server.submit(session, FrameRequest::new(cam.pose)).wait();
        let half = server
            .submit(
                session,
                FrameRequest::new(cam.pose).with_tier(ResolutionTier::Half),
            )
            .wait();
        assert_eq!(half.serve.cache, CacheOutcome::Miss);
        assert_eq!(
            half.image.width(),
            cam.intrinsics.width / 2,
            "tier halves the frame"
        );
    }

    #[test]
    fn recycled_buffer_is_used() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let direct = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let recycled = server
            .submit(
                session,
                FrameRequest::new(cam.pose).with_buffer(direct.image),
            )
            .wait();
        assert_eq!(
            recycled.image.pixel_count() as u64,
            recycled.stats.rays,
            "recycled buffer reshaped to the frame"
        );
    }

    #[test]
    fn drop_drains_submitted_frames() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let handles: Vec<FrameHandle> = (0..3)
            .map(|_| server.submit(session, FrameRequest::new(cam.pose)))
            .collect();
        drop(server);
        for h in handles {
            let r = h.wait();
            assert!(r.image.pixel_count() > 0);
        }
    }

    #[test]
    fn remove_session_frees_scene_and_rejects_later_submits() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(cam.intrinsics, ctf()),
        );
        // Drain the session's work, then end it.
        server.submit(session, FrameRequest::new(cam.pose)).wait();
        server.remove_session(session);
        // The shard may still hold transient clones for a moment
        // after fulfilling the frame; once it quiesces, the test's Arc
        // must be the last one standing (the registry only keeps a
        // Weak witness).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while Arc::strong_count(&scene) > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "scene handle not released: {} refs",
                Arc::strong_count(&scene)
            );
            std::thread::yield_now();
        }
        let rejected = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.submit(session, FrameRequest::new(cam.pose))
        }));
        assert!(rejected.is_err(), "submit to removed session succeeded");
    }

    #[test]
    #[should_panic(expected = "unknown session")]
    fn unknown_session_rejected() {
        let (_, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let _real = server.create_session(
            scene,
            SessionConfig::new(
                gen_nerf_geometry::Intrinsics::from_fov(8, 8, 0.6),
                SamplingStrategy::Uniform { n: 4 },
            ),
        );
        let bogus = SessionId(999);
        let _ = server.submit(bogus, FrameRequest::new(Pose::IDENTITY));
    }

    #[test]
    fn sessions_on_different_strategies_do_not_batch_incorrectly() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let a = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(cam.intrinsics, SamplingStrategy::Uniform { n: 6 }),
        );
        let b = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let ha = server.submit(a, FrameRequest::new(cam.pose));
        let hb = server.submit(b, FrameRequest::new(cam.pose));
        let ra = ha.wait();
        let rb = hb.wait();
        // Different strategies do different amounts of coarse work.
        assert_eq!(ra.stats.coarse_points, 0);
        assert!(rb.stats.coarse_points > 0);
        let _ = Vec3::ZERO;
    }

    #[test]
    fn scenes_get_their_own_shards_up_to_the_cap() {
        let (ds, scene_a) = scene();
        let (_, scene_b) = scene();
        let (_, scene_c) = scene();
        let cam = ds.eval_views[0].camera;
        let server = RenderServer::new(ServerConfig::default().with_max_shards(2));
        let a = server.create_session(scene_a, SessionConfig::new(cam.intrinsics, ctf()));
        assert_eq!(server.shard_count(), 1);
        let b = server.create_session(scene_b, SessionConfig::new(cam.intrinsics, ctf()));
        assert_eq!(server.shard_count(), 2);
        // A third scene shares an existing shard (round-robin).
        let c = server.create_session(scene_c, SessionConfig::new(cam.intrinsics, ctf()));
        assert_eq!(server.shard_count(), 2);
        assert_eq!(server.shard_of(a).index(), 0);
        assert_eq!(server.shard_of(b).index(), 1);
        assert_eq!(server.shard_of(c).index(), 0);
        // Frames route to their scene's shard and still render.
        let rb = server.submit(b, FrameRequest::new(cam.pose)).wait();
        assert_eq!(rb.serve.shard, 1);
        let stats = server.shard_stats(server.shard_of(b));
        assert_eq!(stats.rendered_frames, 1);
        assert_eq!(stats.admission.admitted, 1);
    }

    #[test]
    fn shed_best_effort_resolves_immediately() {
        // Zero-capacity queue: every BestEffort submission sheds at
        // admission without ever reaching the shard.
        let (ds, scene) = scene();
        let cam = ds.eval_views[0].camera;
        let server = RenderServer::new(
            ServerConfig::default()
                .with_admission(AdmissionConfig::with_capacity(1).with_interactive_capacity(1)),
        );
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        // Occupy the shard with a stalled frame, wait until the shard
        // has pulled it out of the queue (depth back to zero), then
        // park one more frame in the queue: depth now holds at the
        // capacity watermark for the stall's duration.
        let stall = server.submit(
            session,
            FrameRequest::new(cam.pose).with_fault(Fault::Stall(Duration::from_millis(500))),
        );
        let shard = server.shard_of(session);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.shard_stats(shard).queued > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "stall never scheduled"
            );
            std::thread::yield_now();
        }
        let parked = server.submit(session, FrameRequest::new(cam.pose));
        let be = server.submit(
            session,
            FrameRequest::new(cam.pose).with_deadline(DeadlineClass::BestEffort),
        );
        let shed = be.wait_result();
        match shed {
            Err(ServeError::Shed { class }) => assert_eq!(class, DeadlineClass::BestEffort),
            other => panic!("expected shed, got {other:?}"),
        }
        assert!(stall.wait_result().is_ok());
        assert!(parked.wait_result().is_ok());
        let adm = server.admission_stats();
        assert_eq!(adm.shed_best_effort, 1);
        assert_eq!(adm.shed_interactive, 0);
    }
}
