//! The render server: MPSC submission queue, deadline-ordered
//! admission batching, and the scheduler thread driving fused
//! multi-frame renders on a persistent worker pool.

use crate::session::{
    CacheEntry, CacheStats, DeadlineClass, ResolutionTier, SceneState, SessionConfig, SessionId,
    SessionState,
};
use gen_nerf::config::SamplingStrategy;
use gen_nerf::pipeline::{CoarseFrame, RenderStats, Renderer};
use gen_nerf_geometry::{Camera, Pose};
use gen_nerf_parallel::Pool;
use gen_nerf_scene::Image;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Persistent render workers (the fused chunk fan-out width).
    /// Defaults to [`gen_nerf_parallel::num_threads`].
    pub threads: usize,
    /// Admission window: at most this many queued frames are coalesced
    /// into one fused multi-frame render.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: gen_nerf_parallel::num_threads(),
            max_batch: 8,
        }
    }
}

/// One frame request: a head pose plus serving knobs.
#[derive(Debug, Default)]
pub struct FrameRequest {
    /// Camera pose to render from.
    pub pose: Pose,
    /// Output resolution tier (divisor of the session intrinsics).
    pub tier: ResolutionTier,
    /// Scheduling class.
    pub deadline: DeadlineClass,
    /// Optional recycled frame buffer; the server renders into it
    /// (reusing its allocation) instead of allocating a fresh image.
    pub reuse: Option<Image>,
}

impl FrameRequest {
    /// An interactive full-resolution request for `pose`.
    pub fn new(pose: Pose) -> Self {
        Self {
            pose,
            ..Self::default()
        }
    }

    /// Selects the resolution tier.
    pub fn with_tier(mut self, tier: ResolutionTier) -> Self {
        self.tier = tier;
        self
    }

    /// Selects the deadline class.
    pub fn with_deadline(mut self, deadline: DeadlineClass) -> Self {
        self.deadline = deadline;
        self
    }

    /// Supplies a frame buffer to render into (allocation recycling
    /// for steady-state serving loops).
    pub fn with_buffer(mut self, image: Image) -> Self {
        self.reuse = Some(image);
        self
    }
}

/// How the coarse cache treated one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Coarse pass reused from the session's anchor pose.
    Hit,
    /// Coarse pass re-probed (and the anchor replaced).
    Miss,
    /// Cache not applicable (coherence disabled or no coarse pass in
    /// the strategy).
    Bypass,
}

/// Serving-side measurements of one frame.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Submission to job start (queueing + admission).
    pub queue_wait: Duration,
    /// Job start to completion (shared by every frame in the batch).
    pub render_time: Duration,
    /// Submission to completion.
    pub latency: Duration,
    /// Coarse-cache outcome.
    pub cache: CacheOutcome,
    /// Frames co-scheduled in the same fused render job.
    pub batched_frames: usize,
}

/// A completed frame.
#[derive(Debug)]
pub struct FrameResult {
    /// The rendered image (the recycled buffer when one was supplied).
    pub image: Image,
    /// Render-side instrumentation (cache hits skip Step ① work, so
    /// `coarse_points` is zero for them).
    pub stats: RenderStats,
    /// Serving-side measurements.
    pub serve: ServeStats,
}

struct Slot {
    result: Mutex<Option<Result<FrameResult, String>>>,
    ready: Condvar,
}

/// The caller's side of one submitted frame: poll it, or block on it.
pub struct FrameHandle {
    slot: Arc<Slot>,
}

impl FrameHandle {
    /// Blocks until the frame completes.
    ///
    /// # Panics
    ///
    /// Panics if the server failed while rendering this frame (a
    /// render panic) or shut down before reaching it.
    pub fn wait(self) -> FrameResult {
        let mut guard = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.take() {
                return outcome.unwrap_or_else(|e| panic!("render server failed: {e}"));
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Takes the result if the frame has completed (non-blocking).
    ///
    /// # Panics
    ///
    /// Panics if the server failed while rendering this frame.
    pub fn poll(&self) -> Option<FrameResult> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .map(|outcome| outcome.unwrap_or_else(|e| panic!("render server failed: {e}")))
    }

    /// Whether the frame has completed (without consuming the result).
    pub fn is_ready(&self) -> bool {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

struct QueuedFrame {
    session: u64,
    pose: Pose,
    tier: ResolutionTier,
    deadline: DeadlineClass,
    reuse: Option<Image>,
    slot: Arc<Slot>,
    submitted: Instant,
    /// Submission sequence, the tiebreak that keeps ordering stable
    /// within a deadline class.
    seq: u64,
}

type SessionMap = Arc<Mutex<HashMap<u64, Arc<SessionState>>>>;

/// The multi-session render server. See the crate docs for the
/// architecture; in short: [`RenderServer::submit`] enqueues onto an
/// MPSC channel and returns a [`FrameHandle`]; a scheduler thread
/// drains the queue, coalesces compatible frames into fused
/// multi-frame renders on a persistent worker pool, and fulfills the
/// handles.
///
/// Dropping the server closes the queue, drains every frame already
/// submitted, and joins the scheduler.
pub struct RenderServer {
    tx: Option<Sender<QueuedFrame>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    sessions: SessionMap,
    next_session: AtomicU64,
    next_seq: AtomicU64,
}

impl RenderServer {
    /// Starts the scheduler thread and its render worker pool.
    pub fn new(cfg: ServerConfig) -> Self {
        let sessions: SessionMap = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = mpsc::channel::<QueuedFrame>();
        let scheduler_sessions = Arc::clone(&sessions);
        let scheduler = std::thread::Builder::new()
            .name("gen-nerf-serve".to_string())
            .spawn(move || scheduler_loop(rx, scheduler_sessions, cfg))
            .expect("spawn scheduler thread");
        Self {
            tx: Some(tx),
            scheduler: Some(scheduler),
            sessions,
            next_session: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Registers a session viewing `scene`. Sessions sharing a scene
    /// (same `Arc`) and sampling strategy batch together.
    pub fn create_session(&self, scene: Arc<SceneState>, cfg: SessionConfig) -> SessionId {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::new(SessionState::new(scene, cfg)));
        SessionId(id)
    }

    /// Enqueues a frame request; returns immediately with a handle.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn submit(&self, session: SessionId, req: FrameRequest) -> FrameHandle {
        let known = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&session.0);
        assert!(known, "unknown session {session:?}");
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let frame = QueuedFrame {
            session: session.0,
            pose: req.pose,
            tier: req.tier,
            deadline: req.deadline,
            reuse: req.reuse,
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        self.tx
            .as_ref()
            .expect("server running")
            .send(frame)
            .expect("scheduler alive");
        FrameHandle { slot }
    }

    /// Ends a session: drops its cached coarse pass, its scene handle
    /// (the `SceneState` is freed once the last session sharing it
    /// ends) and its counters, and rejects future submissions for the
    /// id. Frames of the session already queued are failed (their
    /// handles report the error) — end a session only after draining
    /// its in-flight frames.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server (or was
    /// already removed).
    pub fn remove_session(&self, session: SessionId) {
        let removed = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session.0);
        // Panic outside the lock so a misuse stays contained to the
        // misusing thread instead of poisoning the scheduler's map.
        removed.expect("unknown session");
    }

    /// Coarse-cache counters of a session.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this server.
    pub fn cache_stats(&self, session: SessionId) -> CacheStats {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session.0)
            .cloned();
        state.expect("unknown session").cache_stats()
    }
}

impl Drop for RenderServer {
    fn drop(&mut self) {
        // Closing the channel lets the scheduler drain what's queued
        // and exit its receive loop.
        drop(self.tx.take());
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

/// The event loop: block for one frame, opportunistically drain the
/// queue up to the admission window, order by deadline class (stable
/// within a class), carve off the largest compatible run, render it as
/// one fused job, repeat. Exits when the queue closes *and* every
/// admitted frame is served.
fn scheduler_loop(rx: Receiver<QueuedFrame>, sessions: SessionMap, cfg: ServerConfig) {
    let pool = Pool::new(cfg.threads.max(1));
    let max_batch = cfg.max_batch.max(1);
    let mut pending: VecDeque<QueuedFrame> = VecDeque::new();
    let mut open = true;
    while open || !pending.is_empty() {
        if pending.is_empty() {
            match rx.recv() {
                Ok(frame) => pending.push_back(frame),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        while open && pending.len() < max_batch {
            match rx.try_recv() {
                Ok(frame) => pending.push_back(frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        // Interactive ahead of best-effort; submission order within a
        // class (sort is stable on (class, seq)).
        pending
            .make_contiguous()
            .sort_by_key(|f| (f.deadline, f.seq));

        // Resolve sessions and carve the head-compatible run.
        let resolve = |id: u64| -> Option<Arc<SessionState>> {
            sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&id)
                .cloned()
        };
        let head = pending.pop_front().expect("non-empty pending");
        let Some(head_state) = resolve(head.session) else {
            fulfill_error(&head, "session disappeared");
            continue;
        };
        // A cache-enabled session's frames must see each other's cache
        // updates in order, so at most one of them rides per batch —
        // this is what makes a batch behave exactly like the same
        // frames served one at a time in admission order (and makes
        // "identical repeated pose ⇒ hit" a guarantee, not a race).
        let cache_applies = |state: &SessionState| {
            state.cfg.coherence.enabled
                && matches!(state.cfg.strategy, SamplingStrategy::CoarseThenFocus { .. })
        };
        let mut sessions_in_group: Vec<u64> = vec![head.session];
        let mut group: Vec<(QueuedFrame, Arc<SessionState>)> = vec![(head, head_state)];
        let mut rest: VecDeque<QueuedFrame> = VecDeque::new();
        while let Some(frame) = pending.pop_front() {
            if group.len() >= max_batch {
                rest.push_back(frame);
                continue;
            }
            let Some(state) = resolve(frame.session) else {
                fulfill_error(&frame, "session disappeared");
                continue;
            };
            let (_, head_state) = &group[0];
            let compatible = Arc::ptr_eq(&state.scene, &head_state.scene)
                && state.cfg.strategy == head_state.cfg.strategy
                && !(cache_applies(&state) && sessions_in_group.contains(&frame.session));
            if compatible {
                sessions_in_group.push(frame.session);
                group.push((frame, state));
            } else {
                rest.push_back(frame);
            }
        }
        pending = rest;
        execute_group(&pool, group);
    }
}

/// Renders one admission batch as a single fused multi-frame job and
/// fulfills its handles. A panic anywhere in the render fails every
/// frame of the batch (reported through the handles) instead of
/// killing the scheduler.
fn execute_group(pool: &Pool, mut group: Vec<(QueuedFrame, Arc<SessionState>)>) {
    // Take the recycled buffers out of the requests up front: they are
    // moved (not cloned) into the render and returned in the results.
    let buffers: Vec<Option<Image>> = group
        .iter_mut()
        .map(|(frame, _)| frame.reuse.take())
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        render_group(pool, &group, buffers)
    }));
    match outcome {
        Ok(results) => {
            for ((frame, _), result) in group.into_iter().zip(results) {
                fulfill(&frame.slot, Ok(result));
            }
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            for (frame, _) in group {
                fulfill_error(&frame, &msg);
            }
        }
    }
}

/// The render half of [`execute_group`]: cache lookups, one fused
/// multi-frame render, cache updates. `group` frames share one scene
/// and strategy (admission guarantees it).
fn render_group(
    pool: &Pool,
    group: &[(QueuedFrame, Arc<SessionState>)],
    buffers: Vec<Option<Image>>,
) -> Vec<FrameResult> {
    let started = Instant::now();
    let n = group.len();
    let scene = &group[0].1.scene;
    let strategy = group[0].1.cfg.strategy;
    let is_ctf = matches!(strategy, SamplingStrategy::CoarseThenFocus { .. });

    // Cache lookups resolve against each session's anchor *before* the
    // job, so a batch behaves exactly like the same frames served one
    // at a time in admission order.
    let mut cameras: Vec<Camera> = Vec::with_capacity(n);
    let mut cached_arcs: Vec<Option<Arc<CoarseFrame>>> = Vec::with_capacity(n);
    let mut outcomes: Vec<CacheOutcome> = Vec::with_capacity(n);
    for (frame, state) in group {
        cameras.push(Camera::new(
            frame.tier.apply(state.cfg.intrinsics),
            frame.pose,
        ));
        if !is_ctf || !state.cfg.coherence.enabled {
            state.bypasses.fetch_add(1, Ordering::Relaxed);
            cached_arcs.push(None);
            outcomes.push(CacheOutcome::Bypass);
            continue;
        }
        let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
        match cache.lookup(frame.tier, &frame.pose, &state.cfg.coherence) {
            Some(coarse) => {
                state.hits.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(Some(coarse));
                outcomes.push(CacheOutcome::Hit);
            }
            None => {
                state.misses.fetch_add(1, Ordering::Relaxed);
                cached_arcs.push(None);
                outcomes.push(CacheOutcome::Miss);
            }
        }
    }

    let renderer = Renderer::new(
        &scene.model,
        &scene.sources,
        strategy,
        scene.bounds,
        scene.background,
    )
    .with_threads(pool.threads())
    .with_pool(pool);

    let mut images: Vec<Image> = buffers
        .into_iter()
        .map(|buf| buf.unwrap_or_else(|| Image::new(0, 0)))
        .collect();
    let mut stats = vec![RenderStats::default(); n];
    let cached_refs: Vec<Option<&CoarseFrame>> = cached_arcs.iter().map(|c| c.as_deref()).collect();
    let exports = renderer.render_frames_cached(&cameras, &cached_refs, &mut images, &mut stats);
    let finished = Instant::now();

    // Anchor fresh coarse passes, in admission order; the LRU tail is
    // evicted past the session's byte budget and counted.
    for (((frame, state), export), outcome) in group.iter().zip(exports).zip(&outcomes) {
        if let Some(coarse) = export {
            if *outcome == CacheOutcome::Miss {
                let evicted = state
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(
                        CacheEntry {
                            pose: frame.pose,
                            tier: frame.tier,
                            coarse: Arc::new(coarse),
                        },
                        state.cfg.cache_budget_bytes,
                    );
                if evicted > 0 {
                    state.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
    }

    images
        .into_iter()
        .zip(stats)
        .zip(outcomes)
        .zip(group)
        .map(|(((image, stats), cache), (frame, _))| FrameResult {
            image,
            stats,
            serve: ServeStats {
                queue_wait: started.saturating_duration_since(frame.submitted),
                render_time: finished.saturating_duration_since(started),
                latency: finished.saturating_duration_since(frame.submitted),
                cache,
                batched_frames: n,
            },
        })
        .collect()
}

fn fulfill(slot: &Slot, outcome: Result<FrameResult, String>) {
    *slot.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
    slot.ready.notify_all();
}

fn fulfill_error(frame: &QueuedFrame, msg: &str) {
    fulfill(&frame.slot, Err(msg.to_string()));
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "render panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CoherenceConfig;
    use gen_nerf::config::ModelConfig;
    use gen_nerf::model::GenNerfModel;
    use gen_nerf_geometry::Vec3;
    use gen_nerf_scene::{Dataset, DatasetKind};

    fn scene() -> (Dataset, Arc<SceneState>) {
        let ds = Dataset::build(DatasetKind::DeepVoxels, "cube", 0.04, 4, 1, 24, 5);
        let model = GenNerfModel::new(ModelConfig::fast());
        let scene = Arc::new(SceneState::prepare(
            model,
            &ds.source_views,
            ds.scene.bounds,
            ds.scene.background,
        ));
        (ds, scene)
    }

    fn ctf() -> SamplingStrategy {
        SamplingStrategy::coarse_then_focus(6, 6)
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let frame = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(frame.image.pixel_count() as u64, frame.stats.rays);
        assert_eq!(frame.serve.cache, CacheOutcome::Bypass);
        assert!(frame.serve.latency >= frame.serve.render_time);
        assert!(frame.serve.batched_frames >= 1);
    }

    #[test]
    fn poll_eventually_ready() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let handle = server.submit(session, FrameRequest::new(cam.pose));
        let mut spins = 0u64;
        let result = loop {
            if let Some(r) = handle.poll() {
                break r;
            }
            spins += 1;
            std::thread::yield_now();
        };
        let _ = spins;
        assert!(result.image.pixel_count() > 0);
    }

    #[test]
    fn repeated_pose_hits_cache() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        let first = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let second = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(first.serve.cache, CacheOutcome::Miss);
        assert_eq!(second.serve.cache, CacheOutcome::Hit);
        // Identical pose ⇒ identical pixels, while Step ① was skipped.
        assert_eq!(first.image.as_slice(), second.image.as_slice());
        assert!(first.stats.coarse_points > 0);
        assert_eq!(second.stats.coarse_points, 0);
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn revisited_pose_hits_a_retained_anchor() {
        // Multi-anchor retention: A, far-B, A again — the second A
        // must hit A's retained anchor (the single-anchor cache of old
        // would have re-probed).
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let far = ds
            .eval_views
            .get(1)
            .map(|v| v.camera.pose)
            .unwrap_or_else(|| {
                gen_nerf_geometry::Pose::look_at(Vec3::new(-3.0, 1.0, -3.0), Vec3::ZERO, Vec3::Y)
            });
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        let a1 = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let b = server.submit(session, FrameRequest::new(far)).wait();
        let a2 = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(a1.serve.cache, CacheOutcome::Miss);
        assert_eq!(b.serve.cache, CacheOutcome::Miss);
        assert_eq!(a2.serve.cache, CacheOutcome::Hit, "revisit did not hit");
        assert_eq!(a1.image.as_slice(), a2.image.as_slice());
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
    }

    #[test]
    fn cache_budget_caps_anchors_and_counts_evictions() {
        // A one-byte budget evicts every fresh anchor immediately:
        // identical repeated poses keep missing, and the eviction
        // counter records each discarded anchor.
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02))
                .with_cache_budget(1),
        );
        let first = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let second = server.submit(session, FrameRequest::new(cam.pose)).wait();
        assert_eq!(first.serve.cache, CacheOutcome::Miss);
        assert_eq!(
            second.serve.cache,
            CacheOutcome::Miss,
            "anchor survived a 1-byte budget"
        );
        // Budget off the cache path entirely: pixels still exact.
        assert_eq!(first.image.as_slice(), second.image.as_slice());
        let stats = server.cache_stats(session);
        assert_eq!((stats.hits, stats.misses), (0, 2));
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn tier_change_is_a_cache_miss() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            scene,
            SessionConfig::new(cam.intrinsics, ctf())
                .with_coherence(CoherenceConfig::within(0.05, 0.02)),
        );
        server.submit(session, FrameRequest::new(cam.pose)).wait();
        let half = server
            .submit(
                session,
                FrameRequest::new(cam.pose).with_tier(ResolutionTier::Half),
            )
            .wait();
        assert_eq!(half.serve.cache, CacheOutcome::Miss);
        assert_eq!(
            half.image.width(),
            cam.intrinsics.width / 2,
            "tier halves the frame"
        );
    }

    #[test]
    fn recycled_buffer_is_used() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let direct = server.submit(session, FrameRequest::new(cam.pose)).wait();
        let recycled = server
            .submit(
                session,
                FrameRequest::new(cam.pose).with_buffer(direct.image),
            )
            .wait();
        assert_eq!(
            recycled.image.pixel_count() as u64,
            recycled.stats.rays,
            "recycled buffer reshaped to the frame"
        );
    }

    #[test]
    fn drop_drains_submitted_frames() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let handles: Vec<FrameHandle> = (0..3)
            .map(|_| server.submit(session, FrameRequest::new(cam.pose)))
            .collect();
        drop(server);
        for h in handles {
            let r = h.wait();
            assert!(r.image.pixel_count() > 0);
        }
    }

    #[test]
    fn remove_session_frees_scene_and_rejects_later_submits() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let session = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(cam.intrinsics, ctf()),
        );
        // Drain the session's work, then end it.
        server.submit(session, FrameRequest::new(cam.pose)).wait();
        server.remove_session(session);
        // The scheduler may still hold transient clones for a moment
        // after fulfilling the frame; once it quiesces, the test's Arc
        // must be the last one standing.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while Arc::strong_count(&scene) > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "scene handle not released: {} refs",
                Arc::strong_count(&scene)
            );
            std::thread::yield_now();
        }
        let rejected = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.submit(session, FrameRequest::new(cam.pose))
        }));
        assert!(rejected.is_err(), "submit to removed session succeeded");
    }

    #[test]
    #[should_panic(expected = "unknown session")]
    fn unknown_session_rejected() {
        let (_, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let _real = server.create_session(
            scene,
            SessionConfig::new(
                gen_nerf_geometry::Intrinsics::from_fov(8, 8, 0.6),
                SamplingStrategy::Uniform { n: 4 },
            ),
        );
        let bogus = SessionId(999);
        let _ = server.submit(bogus, FrameRequest::new(Pose::IDENTITY));
    }

    #[test]
    fn sessions_on_different_strategies_do_not_batch_incorrectly() {
        let (ds, scene) = scene();
        let server = RenderServer::new(ServerConfig::default());
        let cam = ds.eval_views[0].camera;
        let a = server.create_session(
            Arc::clone(&scene),
            SessionConfig::new(cam.intrinsics, SamplingStrategy::Uniform { n: 6 }),
        );
        let b = server.create_session(scene, SessionConfig::new(cam.intrinsics, ctf()));
        let ha = server.submit(a, FrameRequest::new(cam.pose));
        let hb = server.submit(b, FrameRequest::new(cam.pose));
        let ra = ha.wait();
        let rb = hb.wait();
        // Different strategies do different amounts of coarse work.
        assert_eq!(ra.stats.coarse_points, 0);
        assert!(rb.stats.coarse_points > 0);
        let _ = Vec3::ZERO;
    }
}
